//! Cross-crate integration tests: dataset generation → model → inference
//! engine → accelerator simulation, exercised together the way the bench
//! harness and a downstream user would.

use tgnn::prelude::*;
use tgnn_core::complexity::{mac_reduction, mem_reduction, per_embedding_ops};
use tgnn_data::delta_t::memory_delta_t;
use tgnn_hwsim::baseline::{BaselinePlatform, BaselineSimulator};
use tgnn_hwsim::DdrModel;

fn small_graph(seed: u64) -> TemporalGraph {
    generate(&wikipedia_like(0.003, seed))
}

fn small_config(graph: &TemporalGraph, variant: OptimizationVariant) -> ModelConfig {
    ModelConfig {
        memory_dim: 16,
        time_dim: 16,
        embedding_dim: 16,
        lut_bins: 32,
        ..ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
    }
    .with_variant(variant)
}

fn build(graph: &TemporalGraph, variant: OptimizationVariant, seed: u64) -> TgnModel {
    let cfg = small_config(graph, variant);
    let mut rng = TensorRng::new(seed);
    let mut model = TgnModel::new(cfg, &mut rng);
    if model.config.time_encoder == TimeEncoderKind::Lut {
        model.calibrate_lut(&memory_delta_t(graph.events(), graph.num_nodes()));
    }
    model
}

#[test]
fn full_ladder_runs_the_same_stream_and_orders_by_complexity() {
    let graph = small_graph(1);
    let events = &graph.events()[..600.min(graph.num_events())];
    let mut per_variant_macs = Vec::new();
    for variant in OptimizationVariant::ladder() {
        let model = build(&graph, variant, 3);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let report = engine.run_stream(events, &graph, 100);
        assert!(
            report.num_embeddings > 0,
            "{variant:?} produced no embeddings"
        );
        assert!(
            engine.commit_log().is_clean(),
            "{variant:?} violated chronological commits"
        );
        per_variant_macs.push(report.ops.total().macs);
    }
    // Baseline > +SAT > +LUT >= NP(L) > NP(M) > NP(S) in executed MACs.
    for w in per_variant_macs.windows(2) {
        assert!(
            w[0] >= w[1],
            "MACs must be non-increasing along the ladder: {per_variant_macs:?}"
        );
    }
    assert!(
        per_variant_macs[0] > per_variant_macs[5],
        "NP(S) must be cheaper than the baseline"
    );
}

#[test]
fn accelerator_simulation_and_reference_engine_agree_functionally() {
    let graph = small_graph(2);
    let model = build(&graph, OptimizationVariant::NpMedium, 5);

    let mut reference = InferenceEngine::new(model.clone(), graph.num_nodes());
    let mut sim = AcceleratorSim::new(
        model,
        graph.num_nodes(),
        FpgaDevice::alveo_u200(),
        DesignConfig::u200(),
    );

    let events = &graph.events()[..400.min(graph.num_events())];
    let ref_report = reference.run_stream(events, &graph, 100);
    let sim_report = sim.simulate_stream(events, &graph, 100);

    assert_eq!(ref_report.num_events, sim_report.num_events);
    assert_eq!(ref_report.num_embeddings, sim_report.num_embeddings);
    // The simulator's wrapped engine and the standalone engine must end in
    // the same memory state.
    for v in 0..graph.num_nodes() as u32 {
        assert_eq!(
            reference.memory().memory_of(v),
            sim.engine().memory().memory_of(v),
            "memory diverged at vertex {v}"
        );
    }
    // Simulated accelerator time must be positive and far below one second
    // per batch at this scale.
    assert!(sim_report.total_time > 0.0);
    assert!(sim_report.mean_latency() < 1.0);
}

#[test]
fn headline_reduction_and_speedup_shapes_hold() {
    // 84% computation / 67% memory-access reduction claims (Table II) and
    // the FPGA-vs-CPU/GPU latency ordering (Fig. 5), checked as shapes.
    let baseline = per_embedding_ops(&ModelConfig::paper_default(0, 172));
    let np_small = per_embedding_ops(
        &ModelConfig::paper_default(0, 172).with_variant(OptimizationVariant::NpSmall),
    );
    assert!(mac_reduction(&baseline, &np_small) > 0.7);
    assert!(mem_reduction(&baseline, &np_small) > 0.4);

    let paper_cfg = ModelConfig::paper_default(0, 172).with_variant(OptimizationVariant::NpMedium);
    let perf = PerformanceModel::new(
        DesignConfig::u200(),
        paper_cfg.clone(),
        DdrModel::new_gbps(FpgaDevice::alveo_u200().ddr_bandwidth_gbps),
    );
    let fpga_latency = perf.predict(1000).latency;
    let cpu = BaselineSimulator::new(
        BaselinePlatform::CpuMultiThread,
        ModelConfig::paper_default(0, 172),
    );
    let gpu = BaselineSimulator::new(BaselinePlatform::Gpu, ModelConfig::paper_default(0, 172));
    assert!(
        cpu.estimate(1000).latency / fpga_latency > 2.0,
        "FPGA should beat the CPU baseline clearly"
    );
    assert!(
        gpu.estimate(1000).latency / fpga_latency > 1.0,
        "FPGA should not lose to the GPU baseline"
    );
}

#[test]
fn performance_model_tracks_simulation_within_reasonable_error() {
    // Fig. 6: the analytical model predicts the simulated performance with
    // bounded error (the paper reports 9.9–12.8%; we allow a looser band
    // because the simulator uses measured per-batch workloads).
    let graph = small_graph(3);
    let cfg = small_config(&graph, OptimizationVariant::NpMedium);
    let model = build(&graph, OptimizationVariant::NpMedium, 7);

    let device = FpgaDevice::alveo_u200();
    let design = DesignConfig::u200();
    let perf = PerformanceModel::new(
        design.clone(),
        cfg,
        DdrModel::new_gbps(device.ddr_bandwidth_gbps),
    );
    let mut sim = AcceleratorSim::new(model, graph.num_nodes(), device, design);

    let batch_size = 200;
    let take = graph.num_events().min(1_000);
    let report = sim.simulate_stream(&graph.events()[..take], &graph, batch_size);
    let predicted = perf.predict(batch_size).latency;
    let actual = report.mean_latency();
    let ratio = predicted / actual;
    assert!(
        (0.1..10.0).contains(&ratio),
        "prediction {predicted} and simulation {actual} diverge by more than an order of magnitude"
    );
}
