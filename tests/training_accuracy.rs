//! Integration tests of the training / distillation pipeline across crates —
//! the accuracy side of Table II, at test scale.

use tgnn::prelude::*;
use tgnn_core::distillation::{distill, DistillationConfig};
use tgnn_core::training::{TrainConfig, Trainer};
use tgnn_core::LinkDecoder;

fn tiny_graph(seed: u64) -> TemporalGraph {
    generate(&tgnn_data::tiny(seed))
}

fn quick_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 50,
        learning_rate: 5e-3,
        decoder_hidden: 16,
        seed: 11,
    }
}

#[test]
fn teacher_training_improves_over_random_initialisation() {
    let graph = tiny_graph(101);
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
    let trainer = Trainer::new(quick_train_config());

    let mut rng = TensorRng::new(1);
    let untrained = tgnn_core::training::TrainedModel {
        model: TgnModel::new(cfg.clone(), &mut rng),
        decoder: LinkDecoder::new(cfg.embedding_dim, 16, &mut rng),
        history: Vec::new(),
    };
    let untrained_ap = trainer.evaluate(&untrained, &graph, 50).average_precision;

    let trained = trainer.train(&cfg, &graph);
    let trained_ap = trainer.evaluate(&trained, &graph, 50).average_precision;

    assert!(
        trained_ap > 0.5,
        "trained AP {trained_ap} should beat a random ranking"
    );
    assert!(
        trained_ap >= untrained_ap - 0.05,
        "training must not collapse accuracy ({untrained_ap} -> {trained_ap})"
    );
    // Loss decreased across epochs.
    let history = &trained.history;
    assert!(history.last().unwrap().mean_loss <= history.first().unwrap().mean_loss);
}

#[test]
fn distilled_students_stay_close_to_the_teacher_across_the_ladder() {
    let graph = tiny_graph(202);
    let teacher_cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
    let kd = DistillationConfig {
        temperature: 1.0,
        kd_weight: 0.5,
        train: quick_train_config(),
    };
    let trainer = Trainer::new(kd.train.clone());
    let teacher = trainer.train(&teacher_cfg, &graph);
    let teacher_ap = trainer.evaluate(&teacher, &graph, 50).average_precision;

    for variant in [
        OptimizationVariant::Sat,
        OptimizationVariant::SatLut,
        OptimizationVariant::NpSmall,
    ] {
        let student_cfg = teacher_cfg.clone().with_variant(variant);
        let (student, stats) = distill(&teacher, &student_cfg, &graph, &kd);
        let student_ap = trainer.evaluate(&student, &graph, 50).average_precision;
        assert!(
            student_ap > teacher_ap - 0.2,
            "{variant:?}: student AP {student_ap} too far below teacher {teacher_ap}"
        );
        assert!(stats.kd_loss.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn apan_baseline_is_less_accurate_than_the_trained_teacher() {
    // Fig. 7's qualitative claim: the memory-based TGN models sit above the
    // asynchronous APAN baseline in accuracy.
    let graph = tiny_graph(303);
    let teacher_cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        ..quick_train_config()
    });
    let teacher = trainer.train(&teacher_cfg, &graph);
    let teacher_ap = trainer.evaluate(&teacher, &graph, 50).average_precision;

    let mut rng = TensorRng::new(9);
    let mut apan = tgnn_core::apan::ApanModel::new(
        tgnn_core::apan::ApanConfig::from_model_config(&teacher_cfg),
        graph.num_nodes(),
        &mut rng,
    );
    let apan_ap = apan.evaluate_stream(graph.test_events(), &graph, &mut rng);

    assert!(
        teacher_ap + 0.05 >= apan_ap,
        "untrained APAN ({apan_ap}) should not decisively beat the trained TGN teacher ({teacher_ap})"
    );
}
