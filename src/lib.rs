//! Facade crate for the TGNN model-architecture co-design reproduction
//! (IPDPS 2022: "Model-Architecture Co-Design for High Performance Temporal
//! GNN Inference on FPGA").
//!
//! Re-exports the workspace crates under one roof so the examples and
//! downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense linear algebra kernels.
//! * [`graph`] — temporal graph substrate (events, neighbor tables,
//!   samplers, batching).
//! * [`data`] — synthetic Wikipedia/Reddit/GDELT-like dataset generators.
//! * [`nn`] — neural-network kernels (GRU, attentions, time encoders) with
//!   training support.
//! * [`quant`] — symmetric int8 quantization: `QTensor`, activation-range
//!   calibration, quantized linear layers on the packed int8 GEMM.
//! * [`core`] — the TGN-attn model, Algorithm-1 inference engine, training
//!   and knowledge distillation, plus the int8 quantized execution path.
//! * [`hwsim`] — the FPGA accelerator simulator, analytical performance
//!   model, and CPU/GPU baseline cost models.
//! * [`serve`] — the sharded multi-queue streaming pipeline for continuous
//!   inference (`StreamServer`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology and results.

pub use tgnn_core as core;
pub use tgnn_data as data;
pub use tgnn_graph as graph;
pub use tgnn_hwsim as hwsim;
pub use tgnn_nn as nn;
pub use tgnn_quant as quant;
pub use tgnn_serve as serve;
pub use tgnn_tensor as tensor;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use tgnn_core::{
        quantize_model, AttentionKind, ExecMode, InferenceEngine, ModelConfig, OptimizationVariant,
        QuantizedTgn, TgnModel, TimeEncoderKind,
    };
    pub use tgnn_data::{gdelt_like, generate, reddit_like, tiny, wikipedia_like};
    pub use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};
    pub use tgnn_hwsim::{AcceleratorSim, DesignConfig, FpgaDevice, PerformanceModel};
    pub use tgnn_serve::{ServeConfig, StreamServer};
    pub use tgnn_tensor::{Matrix, TensorRng};
}
