//! Synthetic temporal interaction datasets.
//!
//! The paper evaluates on three JODIE-style dynamic graphs — Wikipedia,
//! Reddit (bipartite user↔item interaction graphs with 172-dimensional edge
//! features) and GDELT (event graph with 200-dimensional node embeddings from
//! SeDyT).  Those traces are not redistributable here, so this crate
//! generates synthetic datasets calibrated to the published statistics that
//! actually matter for every experiment in the paper:
//!
//! * graph scale (number of nodes and interaction events),
//! * feature dimensionality (`|v_i|`, `|e_ij|` in Table II),
//! * the bipartite, heavy-tailed interaction structure (a small set of hot
//!   items receives most interactions and users repeatedly return to items
//!   they interacted with before — this is what makes "most recent
//!   neighbors" informative), and
//! * the power-law distribution of the time-encoder input Δt (Fig. 1),
//!   which is what the equal-frequency LUT binning exploits.
//!
//! See DESIGN.md ("What we cannot use directly") for the substitution
//! rationale.

pub mod delta_t;
pub mod generator;
pub mod presets;

pub use generator::{generate, DatasetConfig};
pub use presets::{gdelt_like, reddit_like, tiny, wikipedia_like};

/// Seconds per day, used to express trace durations the way the paper's
/// plots do (Δt in days, real-time windows in minutes).
pub const SECONDS_PER_DAY: f64 = 86_400.0;
