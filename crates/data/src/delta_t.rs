//! Time-encoder input (Δt) analysis — Figure 1 of the paper.
//!
//! The time encoder receives Δt = (current event time) − (timestamp of the
//! node's previous interaction / of each sampled temporal neighbor).  Fig. 1
//! shows its empirical distribution follows a power law: most Δt are close to
//! zero with a long tail out to tens of days.  The LUT time encoder exploits
//! this by using equal-frequency (not equal-width) bins.
//!
//! This module extracts the Δt samples from a trace and builds both the
//! Fig. 1 histogram and the equal-frequency LUT bin edges.

use crate::SECONDS_PER_DAY;
use tgnn_graph::{InteractionEvent, Timestamp};
use tgnn_tensor::stats::{equal_frequency_edges, Histogram};
use tgnn_tensor::Float;

/// Collects the Δt sample observed by the memory updater: for every event and
/// each of its two endpoints, the time since that endpoint's previous
/// interaction (skipping a node's first appearance, which has no previous
/// interaction).
pub fn memory_delta_t(events: &[InteractionEvent], num_nodes: usize) -> Vec<Float> {
    let mut last_seen: Vec<Option<Timestamp>> = vec![None; num_nodes];
    let mut deltas = Vec::with_capacity(events.len() * 2);
    for e in events {
        for v in e.endpoints() {
            if let Some(prev) = last_seen[v as usize] {
                deltas.push((e.timestamp - prev) as Float);
            }
            last_seen[v as usize] = Some(e.timestamp);
        }
    }
    deltas
}

/// Collects the Δt sample observed by the attention aggregator: for each
/// event endpoint, the differences between the event time and the timestamps
/// of its up-to-`k` most recent prior interactions.
pub fn attention_delta_t(events: &[InteractionEvent], num_nodes: usize, k: usize) -> Vec<Float> {
    let mut recent: Vec<Vec<Timestamp>> = vec![Vec::new(); num_nodes];
    let mut deltas = Vec::new();
    for e in events {
        for v in e.endpoints() {
            let hist = &recent[v as usize];
            for &t in hist.iter().rev().take(k) {
                deltas.push((e.timestamp - t) as Float);
            }
        }
        for v in e.endpoints() {
            recent[v as usize].push(e.timestamp);
        }
    }
    deltas
}

/// Builds the Fig. 1 histogram: Δt frequency in day-resolution bins over
/// `[0, max_days]`.
pub fn fig1_histogram(deltas: &[Float], max_days: Float, bins: usize) -> Histogram {
    let mut h = Histogram::new(0.0, max_days * SECONDS_PER_DAY as Float, bins);
    h.add_all(deltas);
    h
}

/// Computes the LUT time-encoder bin edges (equal-frequency quantiles of the
/// Δt distribution), as in Section III-C.
pub fn lut_bin_edges(deltas: &[Float], bins: usize) -> Vec<Float> {
    equal_frequency_edges(deltas, bins)
}

/// Fraction of Δt mass that falls below `threshold` — used to assert the
/// power-law shape ("most inputs are close to 0").
pub fn mass_below(deltas: &[Float], threshold: Float) -> Float {
    if deltas.is_empty() {
        return 0.0;
    }
    deltas.iter().filter(|&&d| d < threshold).count() as Float / deltas.len() as Float
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::presets::tiny;

    #[test]
    fn memory_delta_skips_first_appearance() {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 10.0),
            InteractionEvent::new(0, 2, 1, 25.0),
            InteractionEvent::new(1, 2, 2, 40.0),
        ];
        let d = memory_delta_t(&events, 3);
        // Event 0: both nodes first appearance -> no deltas.
        // Event 1: node 0 seen at 10 -> 15; node 2 first appearance.
        // Event 2: node 1 seen at 10 -> 30; node 2 seen at 25 -> 15.
        assert_eq!(d, vec![15.0, 30.0, 15.0]);
    }

    #[test]
    fn attention_delta_counts_up_to_k_neighbors() {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 1.0),
            InteractionEvent::new(0, 1, 1, 2.0),
            InteractionEvent::new(0, 1, 2, 4.0),
        ];
        // Event 2 at t=4: node 0 has prior interactions at 1,2 -> Δt {3,2};
        // node 1 likewise.  Event 1 at t=2: Δt {1} per endpoint.
        let d = attention_delta_t(&events, 2, 10);
        assert_eq!(d.len(), 2 + 4);
        let d1 = attention_delta_t(&events, 2, 1);
        // With k=1 only the most recent neighbor counts.
        assert_eq!(d1, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn synthetic_trace_delta_t_is_heavy_tailed() {
        let g = generate(&tiny(3));
        let deltas = memory_delta_t(g.events(), g.num_nodes());
        assert!(!deltas.is_empty());
        let mean = deltas.iter().sum::<Float>() / deltas.len() as Float;
        // Most of the mass sits below the mean — the defining feature of the
        // right-skewed distribution in Fig. 1.
        assert!(
            mass_below(&deltas, mean) > 0.6,
            "Δt distribution not right-skewed"
        );
    }

    #[test]
    fn fig1_histogram_has_requested_bins_and_captures_mass() {
        let g = generate(&tiny(3));
        let deltas = memory_delta_t(g.events(), g.num_nodes());
        let h = fig1_histogram(&deltas, 2.0, 25);
        assert_eq!(h.bins(), 25);
        assert!(h.total() as usize + h.outliers() as usize == deltas.len());
        // First bins should dominate.
        let counts = h.counts();
        let first_quarter: u64 = counts[..6].iter().sum();
        assert!(first_quarter > h.total() / 2);
    }

    #[test]
    fn lut_edges_are_monotone_and_cover_data() {
        let g = generate(&tiny(9));
        let deltas = memory_delta_t(g.events(), g.num_nodes());
        let edges = lut_bin_edges(&deltas, 128);
        assert!(edges.len() >= 2);
        assert!(edges.windows(2).all(|w| w[1] > w[0]));
        let min = deltas.iter().cloned().fold(Float::INFINITY, Float::min);
        let max = deltas.iter().cloned().fold(Float::NEG_INFINITY, Float::max);
        assert!(edges[0] <= min + 1e-3);
        assert!(*edges.last().unwrap() >= max - 1e-3);
    }
}
