//! Dataset presets calibrated to the paper's three evaluation datasets.
//!
//! | Preset | Mirrors | Nodes | Events | Node feat | Edge feat |
//! |---|---|---|---|---|---|
//! | [`wikipedia_like`] | Wikipedia (JODIE) | ≈9.2k | 157k | 0 | 172 |
//! | [`reddit_like`] | Reddit (JODIE) | ≈11k | 672k | 0 | 172 |
//! | [`gdelt_like`] | GDELT (SeDyT embeddings) | ≈8.8k | 200k | 200 | 0 |
//!
//! Every preset accepts a `scale` in `(0, 1]` so unit tests and CI can run on
//! a proportionally smaller trace while the benchmark binaries use
//! `scale = 1.0`.

use crate::generator::DatasetConfig;

fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}

/// Configuration mirroring the Wikipedia interaction dataset: ~8.2k users
/// editing ~1k pages over a month, 157k interactions, 172-dim edge features.
pub fn wikipedia_like(scale: f64, seed: u64) -> DatasetConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    DatasetConfig {
        name: format!("wikipedia-synthetic-x{scale:.3}"),
        num_users: scaled(8_227, scale, 20),
        num_items: scaled(1_000, scale, 10),
        num_events: scaled(157_474, scale, 500),
        node_feature_dim: 0,
        edge_feature_dim: 172,
        duration_days: 30.0,
        user_activity_alpha: 1.1,
        item_popularity_alpha: 0.9,
        revisit_probability: 0.75,
        revisit_window: 6,
        seed,
    }
}

/// Configuration mirroring the Reddit interaction dataset: ~10k users posting
/// in ~1k subreddits, 672k interactions, 172-dim edge features.
pub fn reddit_like(scale: f64, seed: u64) -> DatasetConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    DatasetConfig {
        name: format!("reddit-synthetic-x{scale:.3}"),
        num_users: scaled(10_000, scale, 20),
        num_items: scaled(984, scale, 10),
        num_events: scaled(672_447, scale, 500),
        node_feature_dim: 0,
        edge_feature_dim: 172,
        duration_days: 30.0,
        user_activity_alpha: 1.0,
        item_popularity_alpha: 0.8,
        revisit_probability: 0.8,
        revisit_window: 8,
        seed,
    }
}

/// Configuration mirroring the GDELT event dataset as used in the paper:
/// entity interaction events with 200-dimensional pre-trained node embeddings
/// (from SeDyT) and no edge features.
pub fn gdelt_like(scale: f64, seed: u64) -> DatasetConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    DatasetConfig {
        name: format!("gdelt-synthetic-x{scale:.3}"),
        num_users: scaled(6_000, scale, 20),
        num_items: scaled(2_800, scale, 10),
        num_events: scaled(200_000, scale, 500),
        node_feature_dim: 200,
        edge_feature_dim: 0,
        duration_days: 30.0,
        user_activity_alpha: 1.3,
        item_popularity_alpha: 1.0,
        revisit_probability: 0.55,
        revisit_window: 10,
        seed,
    }
}

/// A tiny dataset for unit and integration tests: a few hundred events over a
/// couple of days, small feature dimensions, fast to train on.
pub fn tiny(seed: u64) -> DatasetConfig {
    DatasetConfig {
        name: "tiny-synthetic".into(),
        num_users: 40,
        num_items: 20,
        num_events: 800,
        node_feature_dim: 0,
        edge_feature_dim: 8,
        duration_days: 2.0,
        user_activity_alpha: 1.1,
        item_popularity_alpha: 0.9,
        revisit_probability: 0.7,
        revisit_window: 4,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn presets_validate() {
        assert!(wikipedia_like(1.0, 0).validate().is_ok());
        assert!(reddit_like(1.0, 0).validate().is_ok());
        assert!(gdelt_like(1.0, 0).validate().is_ok());
        assert!(tiny(0).validate().is_ok());
    }

    #[test]
    fn scaling_reduces_size_proportionally() {
        let full = wikipedia_like(1.0, 0);
        let small = wikipedia_like(0.01, 0);
        assert!(small.num_events < full.num_events / 50);
        assert!(small.num_users < full.num_users / 50);
        // Feature dimensions are structural, never scaled.
        assert_eq!(small.edge_feature_dim, 172);
    }

    #[test]
    fn feature_dims_match_table_ii() {
        // Table II input dimensions: Wikipedia/Reddit |v|=0, |e|=172; GDELT |v|=200, |e|=0.
        let w = wikipedia_like(1.0, 0);
        assert_eq!((w.node_feature_dim, w.edge_feature_dim), (0, 172));
        let r = reddit_like(1.0, 0);
        assert_eq!((r.node_feature_dim, r.edge_feature_dim), (0, 172));
        let g = gdelt_like(1.0, 0);
        assert_eq!((g.node_feature_dim, g.edge_feature_dim), (200, 0));
    }

    #[test]
    fn tiny_preset_generates_quickly_and_correctly() {
        let g = generate(&tiny(5));
        assert_eq!(g.num_events(), 800);
        assert_eq!(g.num_nodes(), 60);
        assert_eq!(g.edge_feature_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = wikipedia_like(0.0, 1);
    }
}
