//! Bipartite temporal-interaction generator.

use crate::SECONDS_PER_DAY;
use serde::{Deserialize, Serialize};
use tgnn_graph::{InteractionEvent, TemporalGraph};
use tgnn_tensor::{Float, Matrix, TensorRng};

/// Configuration of a synthetic dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Dataset name (propagated to [`TemporalGraph::name`]).
    pub name: String,
    /// Number of "user" vertices (the active side of the bipartite graph).
    pub num_users: usize,
    /// Number of "item" vertices (pages / subreddits / entities).
    pub num_items: usize,
    /// Number of interaction events to generate.
    pub num_events: usize,
    /// Dimensionality of static node features (0 for Wikipedia/Reddit-style
    /// datasets, 200 for GDELT-style).
    pub node_feature_dim: usize,
    /// Dimensionality of edge features (172 for Wikipedia/Reddit-style, 0 for
    /// GDELT-style).
    pub edge_feature_dim: usize,
    /// Total trace duration in days (the paper's traces span roughly a
    /// month; Fig. 1 plots Δt up to 25 days).
    pub duration_days: f64,
    /// Pareto shape of per-user activity (smaller = heavier tail = a few
    /// users generate most events).
    pub user_activity_alpha: Float,
    /// Pareto shape of item popularity.
    pub item_popularity_alpha: Float,
    /// Probability that a user's next interaction revisits one of its recent
    /// items instead of sampling a fresh one; this produces the recurrent
    /// neighbourhoods that make recency-based attention meaningful.
    pub revisit_probability: Float,
    /// How many recent items a user remembers for revisits.
    pub revisit_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// Total number of vertices (users + items).
    pub fn num_nodes(&self) -> usize {
        self.num_users + self.num_items
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_users == 0 || self.num_items == 0 {
            return Err("need at least one user and one item".into());
        }
        if self.num_events == 0 {
            return Err("need at least one event".into());
        }
        if self.duration_days <= 0.0 {
            return Err("duration must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.revisit_probability) {
            return Err("revisit probability must be in [0, 1]".into());
        }
        if self.revisit_window == 0 {
            return Err("revisit window must be positive".into());
        }
        Ok(())
    }
}

/// Generates a [`TemporalGraph`] from the configuration.
///
/// The process is a marked point process: each user draws an activity rate
/// from a Pareto distribution and emits interactions whose inter-arrival
/// times are exponential with that rate.  The union over users produces a
/// heavy-tailed distribution of per-node Δt (time since the node's previous
/// interaction), reproducing the power-law shape of Fig. 1.  The interaction
/// target is either a revisit of a recently-touched item or a fresh item
/// drawn from a Pareto popularity distribution.
///
/// # Panics
/// Panics if the configuration is invalid.
pub fn generate(config: &DatasetConfig) -> TemporalGraph {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid DatasetConfig: {e}"));

    let mut rng = TensorRng::new(config.seed);
    let mut feat_rng = rng.fork("features");
    let mut proc_rng = rng.fork("process");

    let duration = config.duration_days * SECONDS_PER_DAY;

    // Per-user activity weights and per-item popularity weights (Pareto).
    let user_weights: Vec<Float> = (0..config.num_users)
        .map(|_| proc_rng.pareto(1.0, config.user_activity_alpha))
        .collect();
    let item_weights: Vec<Float> = (0..config.num_items)
        .map(|_| proc_rng.pareto(1.0, config.item_popularity_alpha))
        .collect();

    // Event timestamps: a homogeneous-in-aggregate process over the duration,
    // sorted.  Each event is then attributed to a user by activity weight.
    let mut timestamps: Vec<f64> = (0..config.num_events)
        .map(|_| proc_rng.uniform(0.0, 1.0) as f64 * duration)
        .collect();
    timestamps.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut recent_items: Vec<Vec<u32>> = vec![Vec::new(); config.num_users];
    let mut events = Vec::with_capacity(config.num_events);

    for (i, &t) in timestamps.iter().enumerate() {
        let user = proc_rng.weighted_index(&user_weights);
        let item =
            if !recent_items[user].is_empty() && proc_rng.bernoulli(config.revisit_probability) {
                let w = recent_items[user].len();
                recent_items[user][proc_rng.index(w)]
            } else {
                proc_rng.weighted_index(&item_weights) as u32
            };
        let recent = &mut recent_items[user];
        if recent.len() >= config.revisit_window {
            recent.remove(0);
        }
        recent.push(item);

        // Node ids: users first, then items.
        let src = user as u32;
        let dst = config.num_users as u32 + item;
        events.push(InteractionEvent::new(src, dst, i as u32, t));
    }

    let num_nodes = config.num_nodes();
    let node_features = if config.node_feature_dim > 0 {
        feat_rng.normal_matrix(num_nodes, config.node_feature_dim, 0.3)
    } else {
        Matrix::zeros(num_nodes, 0)
    };
    let edge_features = if config.edge_feature_dim > 0 {
        feat_rng.normal_matrix(config.num_events, config.edge_feature_dim, 0.3)
    } else {
        Matrix::zeros(config.num_events, 0)
    };

    TemporalGraph::new(
        config.name.clone(),
        num_nodes,
        node_features,
        edge_features,
        events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_graph::chronology::is_chronological;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            name: "unit-test".into(),
            num_users: 50,
            num_items: 30,
            num_events: 2_000,
            node_feature_dim: 0,
            edge_feature_dim: 16,
            duration_days: 10.0,
            user_activity_alpha: 1.2,
            item_popularity_alpha: 1.1,
            revisit_probability: 0.6,
            revisit_window: 5,
            seed: 77,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let g = generate(&small_config());
        assert_eq!(g.num_nodes(), 80);
        assert_eq!(g.num_events(), 2_000);
        assert_eq!(g.edge_feature_dim(), 16);
        assert_eq!(g.node_feature_dim(), 0);
        assert!(is_chronological(g.events()));
        let (start, end) = g.time_span().unwrap();
        assert!(start >= 0.0 && end <= 10.0 * SECONDS_PER_DAY);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.edge_features().as_slice(), b.edge_features().as_slice());
    }

    #[test]
    fn different_seed_changes_trace() {
        let mut cfg = small_config();
        cfg.seed = 78;
        let a = generate(&small_config());
        let b = generate(&cfg);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn bipartite_structure() {
        let cfg = small_config();
        let g = generate(&cfg);
        for e in g.events() {
            assert!((e.src as usize) < cfg.num_users, "src must be a user");
            assert!((e.dst as usize) >= cfg.num_users, "dst must be an item");
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let cfg = small_config();
        let g = generate(&cfg);
        let mut item_counts = vec![0usize; cfg.num_items];
        for e in g.events() {
            item_counts[e.dst as usize - cfg.num_users] += 1;
        }
        item_counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = item_counts.iter().take(cfg.num_items / 10).sum();
        // A heavy-tailed popularity distribution concentrates a large share
        // of events on the top 10% of items.
        assert!(
            top_decile as f64 > 0.2 * cfg.num_events as f64,
            "top-decile items received only {top_decile} events"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = small_config();
        cfg.num_users = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = small_config();
        cfg.revisit_probability = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = small_config();
        cfg.duration_days = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = small_config();
        cfg.revisit_window = 0;
        assert!(cfg.validate().is_err());
        assert!(small_config().validate().is_ok());
    }
}
