//! Temporal attention aggregators.
//!
//! Two aggregators with the same input/output contract so the model can swap
//! them:
//!
//! * [`VanillaAttention`] — the Transformer-style temporal attention of TGN
//!   (Eq. 11–15): queries from the target vertex, keys/values from its
//!   temporal neighbors, scaled dot-product scores.
//! * [`SimplifiedAttention`] — the paper's light-weight attention (Eq. 16):
//!   the attention logits are `a + W_t·Δt`, a function of the neighbor time
//!   deltas only.  Because no key/query projections are needed, the score is
//!   known *before* any neighbor feature is fetched, which enables the top-k
//!   temporal-neighbor pruning of Section III-B and the prefetching the
//!   hardware relies on.
//!
//! Both operate on one target vertex at a time: the caller supplies the
//! target's query-side input row and a `n × d_n` matrix of neighbor-side
//! inputs (already concatenated `[f'_j || e_ij || Φ(Δt_j)]`, exactly the
//! layout the Embedding Unit streams from the Data Loader).

use crate::linear::Linear;
use crate::param::Param;
use serde::{Deserialize, Serialize};
use tgnn_tensor::gemm::{matvec, matvec_into};
use tgnn_tensor::ops::{softmax, top_k_indices, weighted_row_sum};
use tgnn_tensor::{Float, Matrix, TensorRng, Workspace};

/// Output of an attention forward pass, including what is needed for
/// backward and for the pruning/complexity analysis.
#[derive(Clone, Debug)]
pub struct PrunedAttentionOutput {
    /// Aggregated output vector `h_i`.
    pub output: Vec<Float>,
    /// Attention weights over the *selected* neighbors (sums to 1).
    pub weights: Vec<Float>,
    /// Indices (into the caller's neighbor list) that were actually used.
    pub selected: Vec<usize>,
    /// Pre-softmax logits over all candidate neighbors (used by the
    /// knowledge-distillation loss, Eq. 17).
    pub logits: Vec<Float>,
}

/// Transformer-style temporal attention (Eq. 11–15).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VanillaAttention {
    /// Query projection `W_q, b_q` applied to `[f'_i || Φ(0)]`.
    pub w_q: Linear,
    /// Key projection `W_k, b_k` applied to `[f'_j || e_ij || Φ(Δt)]`.
    pub w_k: Linear,
    /// Value projection `W_v, b_v` applied to the same neighbor input.
    pub w_v: Linear,
    query_in_dim: usize,
    neighbor_in_dim: usize,
    head_dim: usize,
    value_dim: usize,
}

/// Cache for [`VanillaAttention::backward`].
#[derive(Clone, Debug)]
pub struct VanillaCache {
    query_input: Matrix,
    neighbor_input: Matrix,
    q: Vec<Float>,
    k: Matrix,
    v: Matrix,
    weights: Vec<Float>,
}

impl VanillaAttention {
    /// Creates the aggregator.
    ///
    /// * `query_in_dim` — dimensionality of the target-side input
    ///   `[f'_i || Φ(0)]`.
    /// * `neighbor_in_dim` — dimensionality of the neighbor-side input
    ///   `[f'_j || e_ij || Φ(Δt)]`.
    /// * `head_dim` — dimensionality of queries/keys.
    /// * `value_dim` — dimensionality of values and of the output.
    pub fn new(
        name: &str,
        query_in_dim: usize,
        neighbor_in_dim: usize,
        head_dim: usize,
        value_dim: usize,
        rng: &mut TensorRng,
    ) -> Self {
        Self {
            w_q: Linear::new(&format!("{name}.w_q"), query_in_dim, head_dim, rng),
            w_k: Linear::new(&format!("{name}.w_k"), neighbor_in_dim, head_dim, rng),
            w_v: Linear::new(&format!("{name}.w_v"), neighbor_in_dim, value_dim, rng),
            query_in_dim,
            neighbor_in_dim,
            head_dim,
            value_dim,
        }
    }

    /// Output (value) dimensionality.
    pub fn value_dim(&self) -> usize {
        self.value_dim
    }

    /// Neighbor-side input dimensionality.
    pub fn neighbor_in_dim(&self) -> usize {
        self.neighbor_in_dim
    }

    /// Query-side input dimensionality.
    pub fn query_in_dim(&self) -> usize {
        self.query_in_dim
    }

    /// Forward pass for one target vertex.
    ///
    /// `query_input` is `1 × query_in_dim`; `neighbor_input` is
    /// `n × neighbor_in_dim`.  With `n = 0` the output is the zero vector
    /// (a vertex with no temporal neighbors contributes only through its
    /// memory, handled by the caller).
    pub fn forward(&self, query_input: &Matrix, neighbor_input: &Matrix) -> PrunedAttentionOutput {
        self.forward_cached(query_input, neighbor_input).0
    }

    /// Forward pass that also returns the cache for [`Self::backward`].
    pub fn forward_cached(
        &self,
        query_input: &Matrix,
        neighbor_input: &Matrix,
    ) -> (PrunedAttentionOutput, VanillaCache) {
        assert_eq!(
            query_input.rows(),
            1,
            "VanillaAttention: one query row per call"
        );
        assert_eq!(
            query_input.cols(),
            self.query_in_dim,
            "VanillaAttention: query dim mismatch"
        );
        let n = neighbor_input.rows();
        if n > 0 {
            assert_eq!(
                neighbor_input.cols(),
                self.neighbor_in_dim,
                "VanillaAttention: neighbor dim mismatch"
            );
        }

        let q = self.w_q.forward(query_input).row_to_vec(0);
        if n == 0 {
            let out = PrunedAttentionOutput {
                output: vec![0.0; self.value_dim],
                weights: Vec::new(),
                selected: Vec::new(),
                logits: Vec::new(),
            };
            let cache = VanillaCache {
                query_input: query_input.clone(),
                neighbor_input: neighbor_input.clone(),
                q,
                k: Matrix::zeros(0, self.head_dim),
                v: Matrix::zeros(0, self.value_dim),
                weights: Vec::new(),
            };
            return (out, cache);
        }

        let k = self.w_k.forward(neighbor_input);
        let v = self.w_v.forward(neighbor_input);
        let scale = 1.0 / (n as Float).sqrt();
        let logits: Vec<Float> = (0..n)
            .map(|j| tgnn_tensor::gemm::dot(&q, k.row(j)) * scale)
            .collect();
        let weights = softmax(&logits);
        let output = weighted_row_sum(&v, &weights);

        let out = PrunedAttentionOutput {
            output,
            weights: weights.clone(),
            selected: (0..n).collect(),
            logits,
        };
        let cache = VanillaCache {
            query_input: query_input.clone(),
            neighbor_input: neighbor_input.clone(),
            q,
            k,
            v,
            weights,
        };
        (out, cache)
    }

    /// Allocation-light inference forward pass: all projection matrices come
    /// from the workspace and run on the packed GEMM (bit-identical to
    /// [`Self::forward`]); only the returned output/weight/logit vectors are
    /// freshly allocated, since they leave the call.
    pub fn forward_ws(
        &self,
        query_input: &Matrix,
        neighbor_input: &Matrix,
        ws: &mut Workspace,
    ) -> PrunedAttentionOutput {
        assert_eq!(
            query_input.rows(),
            1,
            "VanillaAttention: one query row per call"
        );
        assert_eq!(
            query_input.cols(),
            self.query_in_dim,
            "VanillaAttention: query dim mismatch"
        );
        let n = neighbor_input.rows();
        if n == 0 {
            return PrunedAttentionOutput {
                output: vec![0.0; self.value_dim],
                weights: Vec::new(),
                selected: Vec::new(),
                logits: Vec::new(),
            };
        }
        assert_eq!(
            neighbor_input.cols(),
            self.neighbor_in_dim,
            "VanillaAttention: neighbor dim mismatch"
        );
        let q = self.w_q.forward_ws(query_input, ws);
        let k = self.w_k.forward_ws(neighbor_input, ws);
        let v = self.w_v.forward_ws(neighbor_input, ws);
        let scale = 1.0 / (n as Float).sqrt();
        let logits: Vec<Float> = (0..n)
            .map(|j| tgnn_tensor::gemm::dot(q.row(0), k.row(j)) * scale)
            .collect();
        let weights = softmax(&logits);
        let output = weighted_row_sum(&v, &weights);
        ws.recycle_matrix(q);
        ws.recycle_matrix(k);
        ws.recycle_matrix(v);
        PrunedAttentionOutput {
            output,
            weights,
            selected: (0..n).collect(),
            logits,
        }
    }

    /// Backward pass for one target vertex.  Accumulates all weight
    /// gradients and returns `(grad_query_input, grad_neighbor_input)`.
    pub fn backward(&mut self, cache: &VanillaCache, grad_output: &[Float]) -> (Matrix, Matrix) {
        assert_eq!(
            grad_output.len(),
            self.value_dim,
            "VanillaAttention: grad dim mismatch"
        );
        let n = cache.neighbor_input.rows();
        if n == 0 {
            return (
                Matrix::zeros(1, self.query_in_dim),
                Matrix::zeros(0, self.neighbor_in_dim),
            );
        }
        let scale = 1.0 / (n as Float).sqrt();

        // output = Σ_j w_j v_j
        // dv_j = w_j * grad_output
        let mut grad_v = Matrix::zeros(n, self.value_dim);
        for j in 0..n {
            for (g, &go) in grad_v.row_mut(j).iter_mut().zip(grad_output) {
                *g = cache.weights[j] * go;
            }
        }
        // dw_j = grad_output · v_j
        let dw: Vec<Float> = (0..n)
            .map(|j| tgnn_tensor::gemm::dot(grad_output, cache.v.row(j)))
            .collect();
        // softmax backward: dlogit_j = w_j * (dw_j - Σ_k w_k dw_k)
        let dot_sum: Float = cache.weights.iter().zip(&dw).map(|(&w, &d)| w * d).sum();
        let dlogits: Vec<Float> = (0..n)
            .map(|j| cache.weights[j] * (dw[j] - dot_sum))
            .collect();

        // logit_j = scale * q·k_j
        let mut grad_q = vec![0.0; self.head_dim];
        let mut grad_k = Matrix::zeros(n, self.head_dim);
        for (j, &dlogit) in dlogits.iter().enumerate() {
            let dl = dlogit * scale;
            for (gq, &kj) in grad_q.iter_mut().zip(cache.k.row(j)) {
                *gq += dl * kj;
            }
            for (gk, &qi) in grad_k.row_mut(j).iter_mut().zip(&cache.q) {
                *gk = dl * qi;
            }
        }

        let grad_query_input = self.w_q.backward(
            &cache.query_input,
            &Matrix::from_vec(1, self.head_dim, grad_q),
        );
        let grad_from_k = self.w_k.backward(&cache.neighbor_input, &grad_k);
        let grad_from_v = self.w_v.backward(&cache.neighbor_input, &grad_v);
        let grad_neighbor_input = tgnn_tensor::ops::add(&grad_from_k, &grad_from_v);
        (grad_query_input, grad_neighbor_input)
    }

    /// Learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.w_q.params_mut());
        out.extend(self.w_k.params_mut());
        out.extend(self.w_v.params_mut());
        out
    }

    /// Immutable parameter access.
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        out.extend(self.w_q.params());
        out.extend(self.w_k.params());
        out.extend(self.w_v.params());
        out
    }

    /// MAC count for one target with `n` neighbors: query, key, value
    /// projections plus the score dot-products and the weighted sum.
    pub fn macs(&self, n: usize) -> u64 {
        let proj = self.w_q.macs(1) + self.w_k.macs(n) + self.w_v.macs(n);
        let scores = (n * self.head_dim) as u64;
        let aggregate = (n * self.value_dim) as u64;
        proj + scores + aggregate
    }
}

/// The paper's simplified temporal attention (Eq. 16) with optional top-k
/// neighbor pruning (Section III-B).
///
/// Logits are `a + W_t·Δt` where `Δt` is the vector of time differences to
/// the (timestamp-sorted) candidate neighbors, `a` is a learnable constant
/// vector shared across nodes, and `W_t` maps the node-specific Δt pattern to
/// per-slot offsets.  Values are still projected with `W_v` — but only for
/// the selected neighbors, which is where the linear reduction in computation
/// and memory accesses comes from.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimplifiedAttention {
    /// Constant attention logits `a` (1×slots).
    pub a: Param,
    /// Time-difference mixing matrix `W_t` (slots×slots).
    pub w_t: Param,
    /// Value projection shared with the vanilla aggregator's role.
    pub w_v: Linear,
    /// Number of candidate neighbor slots `n` (the fixed-length sorted list).
    slots: usize,
    neighbor_in_dim: usize,
    value_dim: usize,
    /// Normalisation applied to Δt before the linear map, keeping the logits
    /// in a trainable range regardless of the dataset's time unit.
    time_scale: Float,
}

/// Cache for [`SimplifiedAttention::backward`].
#[derive(Clone, Debug)]
pub struct SimplifiedCache {
    neighbor_input: Matrix,
    scaled_dt: Vec<Float>,
    selected: Vec<usize>,
    weights: Vec<Float>,
    v_selected: Matrix,
}

impl SimplifiedAttention {
    /// Creates the simplified aggregator.
    ///
    /// * `slots` — length of the fixed candidate neighbor list (10 in the
    ///   paper's baseline configuration).
    /// * `neighbor_in_dim` / `value_dim` — as in [`VanillaAttention`].
    /// * `time_scale` — divisor applied to Δt (e.g. one day in seconds) so
    ///   logits stay well-conditioned.
    pub fn new(
        name: &str,
        slots: usize,
        neighbor_in_dim: usize,
        value_dim: usize,
        time_scale: Float,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(slots > 0, "SimplifiedAttention: need at least one slot");
        assert!(
            time_scale > 0.0,
            "SimplifiedAttention: time scale must be positive"
        );
        Self {
            a: Param::new(format!("{name}.a"), rng.uniform_matrix(1, slots, -0.1, 0.1)),
            w_t: Param::new(format!("{name}.w_t"), rng.xavier_matrix(slots, slots)),
            w_v: Linear::new(&format!("{name}.w_v"), neighbor_in_dim, value_dim, rng),
            slots,
            neighbor_in_dim,
            value_dim,
            time_scale,
        }
    }

    /// Number of candidate slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Δt normalisation constant (seconds) applied before the logit map.
    pub fn time_scale(&self) -> Float {
        self.time_scale
    }

    /// Output dimensionality.
    pub fn value_dim(&self) -> usize {
        self.value_dim
    }

    /// Neighbor-side input dimensionality.
    pub fn neighbor_in_dim(&self) -> usize {
        self.neighbor_in_dim
    }

    /// Computes the attention logits for a Δt vector without touching any
    /// neighbor features.  `delta_t` must have at most `slots` entries
    /// (missing slots — vertices with fewer temporal neighbors — are treated
    /// as absent and receive a logit of `-inf` so they never get selected).
    pub fn logits(&self, delta_t: &[Float]) -> Vec<Float> {
        assert!(
            delta_t.len() <= self.slots,
            "SimplifiedAttention: too many neighbors"
        );
        let scaled: Vec<Float> = self.padded_scaled_dt(delta_t);
        let offsets = matvec(&self.w_t.value, &scaled);
        (0..self.slots)
            .map(|j| {
                if j < delta_t.len() {
                    self.a.value[(0, j)] + offsets[j]
                } else {
                    Float::NEG_INFINITY
                }
            })
            .collect()
    }

    fn padded_scaled_dt(&self, delta_t: &[Float]) -> Vec<Float> {
        let mut scaled = vec![0.0; self.slots];
        for (i, &dt) in delta_t.iter().enumerate() {
            scaled[i] = dt / self.time_scale;
        }
        scaled
    }

    /// Forward pass for one target vertex with pruning budget `budget`
    /// (the NP(L/M/S) parameter; pass `slots` for no pruning).
    pub fn forward(
        &self,
        delta_t: &[Float],
        neighbor_input: &Matrix,
        budget: usize,
    ) -> PrunedAttentionOutput {
        self.forward_cached(delta_t, neighbor_input, budget).0
    }

    /// Forward pass that also returns the backward cache.
    pub fn forward_cached(
        &self,
        delta_t: &[Float],
        neighbor_input: &Matrix,
        budget: usize,
    ) -> (PrunedAttentionOutput, SimplifiedCache) {
        assert_eq!(
            delta_t.len(),
            neighbor_input.rows(),
            "SimplifiedAttention: Δt / neighbor count mismatch"
        );
        if !delta_t.is_empty() {
            assert_eq!(
                neighbor_input.cols(),
                self.neighbor_in_dim,
                "SimplifiedAttention: neighbor dim mismatch"
            );
        }
        let logits = self.logits(delta_t);
        let present_logits: Vec<Float> = logits[..delta_t.len()].to_vec();

        // Top-k pruning on the logits of the present neighbors.
        let selected = top_k_indices(&present_logits, budget.min(delta_t.len()));
        if selected.is_empty() {
            let out = PrunedAttentionOutput {
                output: vec![0.0; self.value_dim],
                weights: Vec::new(),
                selected: Vec::new(),
                logits: present_logits,
            };
            let cache = SimplifiedCache {
                neighbor_input: neighbor_input.clone(),
                scaled_dt: self.padded_scaled_dt(delta_t),
                selected: Vec::new(),
                weights: Vec::new(),
                v_selected: Matrix::zeros(0, self.value_dim),
            };
            return (out, cache);
        }

        let selected_logits: Vec<Float> = selected.iter().map(|&j| present_logits[j]).collect();
        let weights = softmax(&selected_logits);

        // Only the selected neighbors' values are computed/fetched.
        let selected_input = neighbor_input.gather_rows(&selected);
        let v_selected = self.w_v.forward(&selected_input);
        let output = weighted_row_sum(&v_selected, &weights);

        let out = PrunedAttentionOutput {
            output,
            weights: weights.clone(),
            selected: selected.clone(),
            logits: present_logits,
        };
        let cache = SimplifiedCache {
            neighbor_input: neighbor_input.clone(),
            scaled_dt: self.padded_scaled_dt(delta_t),
            selected,
            weights,
            v_selected,
        };
        (out, cache)
    }

    /// Allocation-light inference forward pass mirroring
    /// [`Self::forward`] bit-for-bit: scratch (scaled Δt, logit offsets, the
    /// gathered selected-neighbor inputs and their value projections) lives
    /// in the workspace; only the returned vectors are freshly allocated.
    pub fn forward_ws(
        &self,
        delta_t: &[Float],
        neighbor_input: &Matrix,
        budget: usize,
        ws: &mut Workspace,
    ) -> PrunedAttentionOutput {
        assert_eq!(
            delta_t.len(),
            neighbor_input.rows(),
            "SimplifiedAttention: Δt / neighbor count mismatch"
        );
        assert!(
            delta_t.len() <= self.slots,
            "SimplifiedAttention: too many neighbors"
        );
        if !delta_t.is_empty() {
            assert_eq!(
                neighbor_input.cols(),
                self.neighbor_in_dim,
                "SimplifiedAttention: neighbor dim mismatch"
            );
        }
        // Logits `a + W_t·Δt` on workspace scratch.
        let mut scaled = ws.take(self.slots);
        for (slot, &dt) in scaled.iter_mut().zip(delta_t) {
            *slot = dt / self.time_scale;
        }
        let mut offsets = ws.take(self.slots);
        matvec_into(&self.w_t.value, &scaled, &mut offsets);
        let logits: Vec<Float> = (0..delta_t.len())
            .map(|j| self.a.value[(0, j)] + offsets[j])
            .collect();
        ws.recycle(offsets);
        ws.recycle(scaled);

        let selected = top_k_indices(&logits, budget.min(delta_t.len()));
        if selected.is_empty() {
            return PrunedAttentionOutput {
                output: vec![0.0; self.value_dim],
                weights: Vec::new(),
                selected: Vec::new(),
                logits,
            };
        }

        let selected_logits: Vec<Float> = selected.iter().map(|&j| logits[j]).collect();
        let weights = softmax(&selected_logits);

        // Only the selected neighbors' values are computed/fetched.
        let mut selected_input = ws.take_matrix(selected.len(), self.neighbor_in_dim);
        for (dst, &src) in selected.iter().enumerate() {
            selected_input
                .row_mut(dst)
                .copy_from_slice(neighbor_input.row(src));
        }
        let v_selected = self.w_v.forward_ws(&selected_input, ws);
        let output = weighted_row_sum(&v_selected, &weights);
        ws.recycle_matrix(v_selected);
        ws.recycle_matrix(selected_input);

        PrunedAttentionOutput {
            output,
            weights,
            selected,
            logits,
        }
    }

    /// Backward pass.  Accumulates gradients for `a`, `W_t`, `W_v` and
    /// returns the gradient with respect to the neighbor inputs (rows not
    /// selected by pruning receive zero gradient, mirroring the fact that
    /// they were never fetched).
    pub fn backward(&mut self, cache: &SimplifiedCache, grad_output: &[Float]) -> Matrix {
        assert_eq!(
            grad_output.len(),
            self.value_dim,
            "SimplifiedAttention: grad dim mismatch"
        );
        let total_neighbors = cache.neighbor_input.rows();
        let mut grad_neighbor_input = Matrix::zeros(total_neighbors, self.neighbor_in_dim);
        if cache.selected.is_empty() {
            return grad_neighbor_input;
        }
        let k = cache.selected.len();

        // output = Σ_j w_j v_j over selected neighbors.
        let mut grad_v = Matrix::zeros(k, self.value_dim);
        for j in 0..k {
            for (g, &go) in grad_v.row_mut(j).iter_mut().zip(grad_output) {
                *g = cache.weights[j] * go;
            }
        }
        let dw: Vec<Float> = (0..k)
            .map(|j| tgnn_tensor::gemm::dot(grad_output, cache.v_selected.row(j)))
            .collect();
        let dot_sum: Float = cache.weights.iter().zip(&dw).map(|(&w, &d)| w * d).sum();
        let dlogits_selected: Vec<Float> = (0..k)
            .map(|j| cache.weights[j] * (dw[j] - dot_sum))
            .collect();

        // Value projection backward (only selected rows).
        let selected_input = cache.neighbor_input.gather_rows(&cache.selected);
        let grad_selected_input = self.w_v.backward(&selected_input, &grad_v);
        for (pos, &orig) in cache.selected.iter().enumerate() {
            let src = grad_selected_input.row(pos).to_vec();
            let dst = grad_neighbor_input.row_mut(orig);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }

        // Logit backward: logit_j = a_j + Σ_m W_t[j, m] * scaled_dt_m.
        let mut d_a = Matrix::zeros(1, self.slots);
        let mut d_wt = Matrix::zeros(self.slots, self.slots);
        for (pos, &slot) in cache.selected.iter().enumerate() {
            let dl = dlogits_selected[pos];
            d_a[(0, slot)] += dl;
            for m in 0..self.slots {
                d_wt[(slot, m)] += dl * cache.scaled_dt[m];
            }
        }
        self.a.accumulate(&d_a);
        self.w_t.accumulate(&d_wt);

        grad_neighbor_input
    }

    /// Learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = vec![];
        out.push(&mut self.a);
        out.push(&mut self.w_t);
        out.extend(self.w_v.params_mut());
        out
    }

    /// Immutable parameter access.
    pub fn params(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = vec![&self.a, &self.w_t];
        out.extend(self.w_v.params());
        out
    }

    /// MAC count for one target aggregating `k` selected neighbors out of
    /// `slots` candidates: the tiny `W_t·Δt` product, the value projections
    /// of the selected neighbors, and the weighted sum.  Compare with
    /// [`VanillaAttention::macs`]: there is no query/key projection and no
    /// per-neighbor dot product, and the value work scales with `k`, not
    /// `slots`.
    pub fn macs(&self, k: usize) -> u64 {
        let logit = (self.slots * self.slots) as u64;
        let values = self.w_v.macs(k);
        let aggregate = (k * self.value_dim) as u64;
        logit + values + aggregate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use tgnn_tensor::approx_eq;

    fn setup_vanilla() -> (VanillaAttention, Matrix, Matrix, TensorRng) {
        let mut rng = TensorRng::new(10);
        let att = VanillaAttention::new("att", 6, 9, 5, 4, &mut rng);
        let q = rng.uniform_matrix(1, 6, -1.0, 1.0);
        let nbrs = rng.uniform_matrix(7, 9, -1.0, 1.0);
        (att, q, nbrs, rng)
    }

    #[test]
    fn vanilla_weights_sum_to_one_and_output_in_value_span() {
        let (att, q, nbrs, _) = setup_vanilla();
        let out = att.forward(&q, &nbrs);
        assert_eq!(out.output.len(), 4);
        assert_eq!(out.weights.len(), 7);
        assert!(approx_eq(out.weights.iter().sum::<Float>(), 1.0, 1e-5));
        assert_eq!(out.selected, (0..7).collect::<Vec<_>>());
        assert_eq!(out.logits.len(), 7);
    }

    #[test]
    fn vanilla_no_neighbors_returns_zero() {
        let (att, q, _, _) = setup_vanilla();
        let out = att.forward(&q, &Matrix::zeros(0, 9));
        assert_eq!(out.output, vec![0.0; 4]);
        assert!(out.weights.is_empty());
    }

    #[test]
    fn vanilla_single_neighbor_gets_full_weight() {
        let (att, q, nbrs, _) = setup_vanilla();
        let single = nbrs.gather_rows(&[2]);
        let out = att.forward(&q, &single);
        assert_eq!(out.weights.len(), 1);
        assert!(approx_eq(out.weights[0], 1.0, 1e-6));
        // Output equals that neighbor's value projection.
        let v = att.w_v.forward(&single);
        for (a, b) in out.output.iter().zip(v.row(0)) {
            assert!(approx_eq(*a, *b, 1e-5));
        }
    }

    #[test]
    fn vanilla_backward_matches_finite_differences() {
        let mut rng = TensorRng::new(20);
        let mut att = VanillaAttention::new("att", 4, 5, 3, 3, &mut rng);
        let q = rng.uniform_matrix(1, 4, -1.0, 1.0);
        let nbrs = rng.uniform_matrix(4, 5, -1.0, 1.0);

        let loss_fn = |a: &VanillaAttention, qi: &Matrix, ni: &Matrix| {
            a.forward(qi, ni).output.iter().sum::<Float>()
        };
        let (out, cache) = att.forward_cached(&q, &nbrs);
        let loss = out.output.iter().sum::<Float>();
        let (grad_q, grad_n) = att.backward(&cache, &[1.0, 1.0, 1.0]);

        check_gradients(
            &loss,
            &att.w_q.weight.grad,
            |i, j, eps| {
                let mut p = att.clone();
                p.w_q.weight.value[(i, j)] += eps;
                loss_fn(&p, &q, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &att.w_k.weight.grad,
            |i, j, eps| {
                let mut p = att.clone();
                p.w_k.weight.value[(i, j)] += eps;
                loss_fn(&p, &q, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &att.w_v.weight.grad,
            |i, j, eps| {
                let mut p = att.clone();
                p.w_v.weight.value[(i, j)] += eps;
                loss_fn(&p, &q, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &grad_q,
            |i, j, eps| {
                let mut p = q.clone();
                p[(i, j)] += eps;
                loss_fn(&att, &p, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &grad_n,
            |i, j, eps| {
                let mut p = nbrs.clone();
                p[(i, j)] += eps;
                loss_fn(&att, &q, &p)
            },
            3e-2,
        );
    }

    #[test]
    fn simplified_logits_ignore_features_and_respect_missing_slots() {
        let mut rng = TensorRng::new(30);
        let att = SimplifiedAttention::new("sat", 6, 8, 4, 1.0, &mut rng);
        let logits = att.logits(&[0.5, 1.0, 2.0]);
        assert_eq!(logits.len(), 6);
        assert!(logits[..3].iter().all(|l| l.is_finite()));
        assert!(logits[3..].iter().all(|l| l.is_infinite() && *l < 0.0));
    }

    #[test]
    fn simplified_pruning_selects_top_logits_and_weights_normalise() {
        let mut rng = TensorRng::new(31);
        let att = SimplifiedAttention::new("sat", 10, 8, 4, 1.0, &mut rng);
        let dts: Vec<Float> = (0..10).map(|i| i as Float * 0.3).collect();
        let nbrs = rng.uniform_matrix(10, 8, -1.0, 1.0);
        let out = att.forward(&dts, &nbrs, 4);
        assert_eq!(out.selected.len(), 4);
        assert!(approx_eq(out.weights.iter().sum::<Float>(), 1.0, 1e-5));
        // The selected logits are the top-4 of all logits.
        let mut sorted = out.logits.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[3];
        for &s in &out.selected {
            assert!(out.logits[s] >= threshold - 1e-6);
        }
    }

    #[test]
    fn simplified_full_budget_uses_all_neighbors() {
        let mut rng = TensorRng::new(32);
        let att = SimplifiedAttention::new("sat", 5, 6, 3, 1.0, &mut rng);
        let dts = vec![0.1, 0.2, 0.3];
        let nbrs = rng.uniform_matrix(3, 6, -1.0, 1.0);
        let out = att.forward(&dts, &nbrs, 5);
        assert_eq!(out.selected.len(), 3);
        let empty = att.forward(&[], &Matrix::zeros(0, 6), 5);
        assert_eq!(empty.output, vec![0.0; 3]);
    }

    #[test]
    fn simplified_macs_smaller_than_vanilla() {
        let mut rng = TensorRng::new(33);
        // Dimensions roughly matching the paper (100-dim memory, 172-dim
        // edge features, 100-dim time encoding, 10 neighbors).
        let neighbor_in = 100 + 172 + 100;
        let vanilla = VanillaAttention::new("v", 200, neighbor_in, 100, 100, &mut rng);
        let sat = SimplifiedAttention::new("s", 10, neighbor_in, 100, 86_400.0, &mut rng);
        let full = vanilla.macs(10);
        let simplified = sat.macs(10);
        let pruned = sat.macs(2);
        assert!(
            (simplified as f64) < 0.75 * full as f64,
            "SAT should cut computation substantially: {simplified} vs {full}"
        );
        assert!((pruned as f64) < 0.3 * full as f64);
    }

    #[test]
    fn simplified_backward_matches_finite_differences() {
        let mut rng = TensorRng::new(34);
        let mut att = SimplifiedAttention::new("sat", 4, 5, 3, 1.0, &mut rng);
        let dts = vec![0.2, 0.9, 1.7, 0.4];
        let nbrs = rng.uniform_matrix(4, 5, -1.0, 1.0);
        let budget = 3;

        let loss_fn = |a: &SimplifiedAttention, ni: &Matrix| {
            a.forward(&dts, ni, budget).output.iter().sum::<Float>()
        };
        let (out, cache) = att.forward_cached(&dts, &nbrs, budget);
        let loss = out.output.iter().sum::<Float>();
        let grad_n = att.backward(&cache, &[1.0, 1.0, 1.0]);

        check_gradients(
            &loss,
            &att.w_v.weight.grad,
            |i, j, eps| {
                let mut p = att.clone();
                p.w_v.weight.value[(i, j)] += eps;
                loss_fn(&p, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &att.a.grad,
            |i, j, eps| {
                let mut p = att.clone();
                p.a.value[(i, j)] += eps;
                loss_fn(&p, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &att.w_t.grad,
            |i, j, eps| {
                let mut p = att.clone();
                p.w_t.value[(i, j)] += eps;
                loss_fn(&p, &nbrs)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &grad_n,
            |i, j, eps| {
                let mut p = nbrs.clone();
                p[(i, j)] += eps;
                loss_fn(&att, &p)
            },
            3e-2,
        );
    }

    #[test]
    fn vanilla_forward_ws_is_bitwise_identical() {
        let (att, q, nbrs, _) = setup_vanilla();
        let mut ws = Workspace::new();
        let reference = att.forward(&q, &nbrs);
        let out = att.forward_ws(&q, &nbrs, &mut ws);
        assert_eq!(out.output, reference.output);
        assert_eq!(out.weights, reference.weights);
        assert_eq!(out.logits, reference.logits);
        assert_eq!(out.selected, reference.selected);
        // No neighbors: zero output, no allocs panic.
        let empty = att.forward_ws(&q, &Matrix::zeros(0, 9), &mut ws);
        assert_eq!(empty.output, vec![0.0; 4]);
    }

    #[test]
    fn simplified_forward_ws_is_bitwise_identical() {
        let mut rng = TensorRng::new(36);
        let att = SimplifiedAttention::new("sat", 6, 8, 4, 2.0, &mut rng);
        let mut ws = Workspace::new();
        for n in [0usize, 2, 5, 6] {
            let dts: Vec<Float> = (0..n).map(|i| 0.4 * (i as Float + 1.0)).collect();
            let nbrs = rng.uniform_matrix(n, 8, -1.0, 1.0);
            for budget in [1usize, 3, 6] {
                let reference = att.forward(&dts, &nbrs, budget);
                let out = att.forward_ws(&dts, &nbrs, budget, &mut ws);
                assert_eq!(out.output, reference.output, "n={n} budget={budget}");
                assert_eq!(out.weights, reference.weights);
                assert_eq!(out.logits, reference.logits);
                assert_eq!(out.selected, reference.selected);
            }
        }
    }

    #[test]
    fn pruned_neighbors_receive_zero_gradient() {
        let mut rng = TensorRng::new(35);
        let mut att = SimplifiedAttention::new("sat", 4, 5, 3, 1.0, &mut rng);
        let dts = vec![0.2, 0.9, 1.7, 0.4];
        let nbrs = rng.uniform_matrix(4, 5, -1.0, 1.0);
        let (_, cache) = att.forward_cached(&dts, &nbrs, 2);
        let grad_n = att.backward(&cache, &[1.0, 1.0, 1.0]);
        let selected = cache.selected.clone();
        for j in 0..4 {
            let row_norm: Float = grad_n.row(j).iter().map(|x| x.abs()).sum();
            if selected.contains(&j) {
                assert!(
                    row_norm > 0.0,
                    "selected neighbor {j} should receive gradient"
                );
            } else {
                assert_eq!(
                    row_norm, 0.0,
                    "pruned neighbor {j} must not receive gradient"
                );
            }
        }
    }
}
