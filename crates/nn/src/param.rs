//! Learnable parameter container.

use serde::{Deserialize, Serialize};
use tgnn_tensor::{Float, Matrix};

/// A learnable parameter: a value matrix and its accumulated gradient.
///
/// Layers accumulate into `grad` during `backward`; the optimizer consumes
/// and zeroes it.  Vectors (biases, the attention constant `a`, ω/φ of the
/// time encoder) are stored as 1×n matrices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Human-readable name used in diagnostics and parameter counting.
    pub name: String,
}

impl Param {
    /// Creates a parameter from an initial value with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self {
            value,
            grad,
            name: name.into(),
        }
    }

    /// Creates a zero-initialised parameter (used for biases).
    pub fn zeros(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        Self::new(name, Matrix::zeros(rows, cols))
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True if the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Accumulates a gradient contribution.
    ///
    /// # Panics
    /// Panics if the shape does not match.
    pub fn accumulate(&mut self, g: &Matrix) {
        assert_eq!(
            self.grad.shape(),
            g.shape(),
            "Param::accumulate: shape mismatch for {}",
            self.name
        );
        for (a, &b) in self.grad.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *a += b;
        }
    }

    /// L2 norm of the gradient — used for gradient clipping and diagnostics.
    pub fn grad_norm(&self) -> Float {
        self.grad.frobenius_norm()
    }
}

/// Counts the total number of scalars across a parameter collection.
pub fn count_parameters(params: &[&Param]) -> usize {
    params.iter().map(|p| p.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Matrix::full(2, 3, 1.5));
        assert_eq!(p.len(), 6);
        assert_eq!(p.grad, Matrix::zeros(2, 3));
        assert_eq!(p.name, "w");
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::zeros("b", 1, 3);
        p.accumulate(&Matrix::row_vector(&[1.0, 2.0, 3.0]));
        p.accumulate(&Matrix::row_vector(&[1.0, 1.0, 1.0]));
        assert_eq!(p.grad.row(0), &[2.0, 3.0, 4.0]);
        assert!((p.grad_norm() - (4.0f32 + 9.0 + 16.0).sqrt()).abs() < 1e-6);
        p.zero_grad();
        assert_eq!(p.grad, Matrix::zeros(1, 3));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn accumulate_rejects_wrong_shape() {
        let mut p = Param::zeros("b", 1, 3);
        p.accumulate(&Matrix::zeros(2, 3));
    }

    #[test]
    fn parameter_counting() {
        let a = Param::zeros("a", 4, 5);
        let b = Param::zeros("b", 1, 7);
        assert_eq!(count_parameters(&[&a, &b]), 27);
    }
}
