//! Affine (fully-connected) layer with explicit backward pass.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use tgnn_tensor::gemm::{matmul, matmul_packed_transb_into};
use tgnn_tensor::ops::add_row_broadcast;
use tgnn_tensor::{Matrix, TensorRng, Workspace};

/// `y = x · Wᵀ + b`, operating on batches where each row of `x` is one
/// sample.
///
/// Weights are stored as `out_dim × in_dim` (the natural layout for the
/// hardware's Multiply-Accumulate arrays, which stream one output row per
/// array pass).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    pub weight: Param,
    pub bias: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut TensorRng) -> Self {
        Self {
            weight: Param::new(format!("{name}.weight"), rng.xavier_matrix(out_dim, in_dim)),
            bias: Param::zeros(format!("{name}.bias"), 1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Creates a layer from explicit weights (used by tests and by the
    /// LUT-fusion pre-computation).
    pub fn from_parts(name: &str, weight: Matrix, bias: Vec<f32>) -> Self {
        let in_dim = weight.cols();
        let out_dim = weight.rows();
        assert_eq!(
            bias.len(),
            out_dim,
            "Linear::from_parts: bias length mismatch"
        );
        Self {
            weight: Param::new(format!("{name}.weight"), weight),
            bias: Param::new(format!("{name}.bias"), Matrix::from_vec(1, out_dim, bias)),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass: `x (B×in) -> y (B×out)`.
    ///
    /// # Panics
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "Linear::forward: input dim mismatch");
        let y = matmul(x, &self.weight.value.transpose());
        add_row_broadcast(&y, self.bias.value.row(0))
    }

    /// Allocation-free forward pass writing into a pre-sized output: the
    /// `x·Wᵀ` product runs on the packed kernel straight from the stored
    /// `out_dim × in_dim` weight layout (no transpose materialised) and the
    /// bias is added in place.  Bit-identical to [`Self::forward`].
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix, ws: &mut Workspace) {
        assert_eq!(
            x.cols(),
            self.in_dim,
            "Linear::forward_into: input dim mismatch"
        );
        assert_eq!(
            out.shape(),
            (x.rows(), self.out_dim),
            "Linear::forward_into: output shape mismatch"
        );
        matmul_packed_transb_into(x, &self.weight.value, out, ws);
        let bias = self.bias.value.row(0);
        for i in 0..out.rows() {
            for (v, &b) in out.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// [`Self::forward_into`] with the output taken from the workspace
    /// (recycle it back when done).
    pub fn forward_ws(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let mut out = ws.take_matrix(x.rows(), self.out_dim);
        self.forward_into(x, &mut out, ws);
        out
    }

    /// Backward pass.  Accumulates `dW = grad_outᵀ · x` and
    /// `db = Σ_rows grad_out`, and returns `grad_x = grad_out · W`.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_dim,
            "Linear::backward: input dim mismatch"
        );
        assert_eq!(
            grad_out.cols(),
            self.out_dim,
            "Linear::backward: grad dim mismatch"
        );
        assert_eq!(
            x.rows(),
            grad_out.rows(),
            "Linear::backward: batch mismatch"
        );

        let dw = matmul(&grad_out.transpose(), x);
        self.weight.accumulate(&dw);

        let mut db = Matrix::zeros(1, self.out_dim);
        for i in 0..grad_out.rows() {
            for (acc, &g) in db.row_mut(0).iter_mut().zip(grad_out.row(i)) {
                *acc += g;
            }
        }
        self.bias.accumulate(&db);

        matmul(grad_out, &self.weight.value)
    }

    /// The learnable parameters of the layer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Immutable access to the parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    /// Number of multiply-accumulate operations for a batch of `batch` rows —
    /// used by the complexity accounting of Table I/II.
    pub fn macs(&self, batch: usize) -> u64 {
        (batch * self.in_dim * self.out_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use tgnn_tensor::approx_eq;

    #[test]
    fn forward_matches_manual() {
        let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let layer = Linear::from_parts("t", w, vec![0.5, -0.5, 0.0]);
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 0.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (2, 3));
        assert!(approx_eq(y[(0, 0)], 3.5, 1e-6));
        assert!(approx_eq(y[(0, 1)], 6.5, 1e-6));
        assert!(approx_eq(y[(1, 2)], 10.0, 1e-6));
    }

    #[test]
    fn macs_scale_with_batch() {
        let mut rng = TensorRng::new(0);
        let layer = Linear::new("t", 8, 4, &mut rng);
        assert_eq!(layer.macs(1), 32);
        assert_eq!(layer.macs(10), 320);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = TensorRng::new(5);
        let mut layer = Linear::new("t", 4, 3, &mut rng);
        let x = rng.uniform_matrix(5, 4, -1.0, 1.0);

        // Loss = sum of outputs; d(loss)/d(out) = ones.
        let grad_out = Matrix::full(5, 3, 1.0);
        let grad_x = layer.backward(&x, &grad_out);

        // Check dW against finite differences of loss(w) = sum(forward(x)).
        let loss_fn = |l: &Linear| l.forward(&x).sum();
        check_gradients(
            &loss_fn(&layer),
            &layer.weight.grad,
            |i, j, eps| {
                let mut pert = layer.clone();
                pert.weight.value[(i, j)] += eps;
                loss_fn(&pert)
            },
            2e-2,
        );
        check_gradients(
            &loss_fn(&layer),
            &layer.bias.grad,
            |i, j, eps| {
                let mut pert = layer.clone();
                pert.bias.value[(i, j)] += eps;
                loss_fn(&pert)
            },
            2e-2,
        );
        // grad_x: each element of x contributes sum of its weight column.
        for i in 0..4 {
            let col_sum: f32 = (0..3).map(|o| layer.weight.value[(o, i)]).sum();
            for r in 0..5 {
                assert!(approx_eq(grad_x[(r, i)], col_sum, 1e-4));
            }
        }
    }

    #[test]
    fn params_are_exposed() {
        let mut rng = TensorRng::new(1);
        let mut layer = Linear::new("t", 3, 2, &mut rng);
        assert_eq!(layer.params().len(), 2);
        assert_eq!(layer.params_mut().len(), 2);
        assert_eq!(crate::param::count_parameters(&layer.params()), 3 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn forward_rejects_bad_input() {
        let mut rng = TensorRng::new(2);
        let layer = Linear::new("t", 3, 2, &mut rng);
        let _ = layer.forward(&Matrix::zeros(1, 4));
    }

    #[test]
    fn forward_ws_is_bitwise_identical_to_forward() {
        let mut rng = TensorRng::new(3);
        let mut ws = Workspace::new();
        for &(batch, in_dim, out_dim) in &[(1usize, 7usize, 5usize), (9, 33, 12), (64, 100, 100)] {
            let layer = Linear::new("t", in_dim, out_dim, &mut rng);
            let x = rng.uniform_matrix(batch, in_dim, -1.0, 1.0);
            let reference = layer.forward(&x);
            let out = layer.forward_ws(&x, &mut ws);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "{batch}x{in_dim}x{out_dim}"
            );
            ws.recycle_matrix(out);
        }
    }

    #[test]
    fn forward_ws_steady_state_does_not_allocate() {
        let mut rng = TensorRng::new(4);
        let mut ws = Workspace::new();
        let layer = Linear::new("t", 24, 16, &mut rng);
        let x = rng.uniform_matrix(10, 24, -1.0, 1.0);
        for _ in 0..2 {
            let out = layer.forward_ws(&x, &mut ws);
            ws.recycle_matrix(out);
        }
        let warm = ws.heap_allocs();
        for _ in 0..50 {
            let out = layer.forward_ws(&x, &mut ws);
            ws.recycle_matrix(out);
        }
        assert_eq!(ws.heap_allocs(), warm);
    }
}
