//! Optimizers operating on [`Param`] collections.

use crate::param::Param;
use std::collections::HashMap;
use tgnn_tensor::{Float, Matrix};

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: Float,
    /// Maximum gradient L2 norm per parameter tensor (`None` disables
    /// clipping).
    pub clip_norm: Option<Float>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: Float) -> Self {
        Self {
            learning_rate,
            clip_norm: None,
        }
    }

    /// Enables per-tensor gradient-norm clipping.
    pub fn with_clip(mut self, clip_norm: Float) -> Self {
        self.clip_norm = Some(clip_norm);
        self
    }

    /// Applies one update step and zeroes the gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let scale = clip_scale(p, self.clip_norm);
            for (v, &g) in p.value.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
                *v -= self.learning_rate * scale * g;
            }
            p.zero_grad();
        }
    }
}

/// Adam optimizer (Kingma & Ba).  Per-parameter state is keyed by the
/// parameter name, so the same optimizer instance can be reused across
/// training steps as long as parameter names are unique within a model.
#[derive(Clone, Debug)]
pub struct Adam {
    pub learning_rate: Float,
    pub beta1: Float,
    pub beta2: Float,
    pub epsilon: Float,
    /// Maximum gradient L2 norm per parameter tensor.
    pub clip_norm: Option<Float>,
    step_count: u64,
    first_moment: HashMap<String, Matrix>,
    second_moment: HashMap<String, Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard defaults.
    pub fn new(learning_rate: Float) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            clip_norm: Some(5.0),
            step_count: 0,
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one update step and zeroes the gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.step_count += 1;
        let t = self.step_count as Float;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);

        for p in params.iter_mut() {
            let scale = clip_scale(p, self.clip_norm);
            let m = self
                .first_moment
                .entry(p.name.clone())
                .or_insert_with(|| Matrix::zeros(p.value.rows(), p.value.cols()));
            let v = self
                .second_moment
                .entry(p.name.clone())
                .or_insert_with(|| Matrix::zeros(p.value.rows(), p.value.cols()));
            assert_eq!(
                m.shape(),
                p.value.shape(),
                "Adam: parameter {} changed shape",
                p.name
            );

            let values = p.value.as_mut_slice();
            let grads = p.grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for i in 0..values.len() {
                let g = grads[i] * scale;
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g;
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g * g;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                values[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            p.zero_grad();
        }
    }
}

fn clip_scale(p: &Param, clip_norm: Option<Float>) -> Float {
    match clip_norm {
        Some(max_norm) => {
            let norm = p.grad_norm();
            if norm > max_norm && norm > 0.0 {
                max_norm / norm
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params() -> Param {
        Param::new("w", Matrix::from_rows(&[vec![5.0, -3.0]]))
    }

    /// Minimise f(w) = Σ w², whose gradient is 2w.
    fn fill_grad(p: &mut Param) {
        let g = p.value.map(|x| 2.0 * x);
        p.zero_grad();
        p.accumulate(&g);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_params();
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            fill_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.max_abs() < 1e-3);
    }

    #[test]
    fn sgd_clipping_limits_step_size() {
        let mut p = Param::new("w", Matrix::from_rows(&[vec![1000.0]]));
        fill_grad(&mut p); // gradient 2000
        let before = p.value[(0, 0)];
        let mut opt = Sgd::new(0.1).with_clip(1.0);
        opt.step(&mut [&mut p]);
        // With clipping the step is at most lr * clip_norm = 0.1.
        assert!((before - p.value[(0, 0)]).abs() <= 0.1 + 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = quadratic_params();
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            fill_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.max_abs() < 1e-2, "residual {:?}", p.value);
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_state_is_per_parameter_name() {
        let mut a = Param::new("a", Matrix::from_rows(&[vec![1.0]]));
        let mut b = Param::new("b", Matrix::from_rows(&[vec![1.0]]));
        let mut opt = Adam::new(0.01);
        fill_grad(&mut a);
        fill_grad(&mut b);
        opt.step(&mut [&mut a, &mut b]);
        assert_eq!(opt.first_moment.len(), 2);
        assert!(opt.first_moment.contains_key("a"));
        assert!(opt.first_moment.contains_key("b"));
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_params();
        fill_grad(&mut p);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert_eq!(p.grad.max_abs(), 0.0);
    }
}
