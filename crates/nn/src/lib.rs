//! Neural-network kernels for memory-based TGNNs.
//!
//! Each module implements one building block of the TGN-attn model the paper
//! optimizes, with an explicit forward pass and a hand-written backward pass
//! (gradient-checked against finite differences in the tests):
//!
//! * [`linear`] — affine projection, the workhorse of the GRU gates and the
//!   attention query/key/value projections and feature transformation.
//! * [`gru`] — the GRU memory updater `UPDT` (Eq. 7–10).
//! * [`time_encode`] — the trigonometric time encoder `Φ(Δt) = cos(ωΔt + φ)`
//!   (Eq. 6) and the LUT-based replacement of Section III-C.
//! * [`attention`] — the vanilla temporal attention aggregator (Eq. 11–15),
//!   the simplified attention of Eq. 16, and the top-k temporal neighbor
//!   pruning of Section III-B.
//! * [`loss`] — binary cross-entropy for self-supervised link prediction and
//!   the soft cross-entropy knowledge-distillation loss of Eq. 17.
//! * [`optim`] — SGD and Adam optimizers over [`param::Param`] collections.
//! * [`gradcheck`] — finite-difference gradient checking used by the tests.
//!
//! Training follows the standard TGN protocol: gradients flow through the
//! current batch's memory update and embedding computation but the node
//! memory read from the global table is treated as a constant (no
//! backpropagation across batches).

pub mod attention;
pub mod gradcheck;
pub mod gru;
pub mod linear;
pub mod loss;
pub mod optim;
pub mod param;
pub mod time_encode;

pub use attention::{PrunedAttentionOutput, SimplifiedAttention, VanillaAttention};
pub use gru::GruCell;
pub use linear::Linear;
pub use param::Param;
pub use time_encode::{CosTimeEncoder, LutTimeEncoder};
