//! Loss functions.
//!
//! * [`bce_with_logits`] — binary cross-entropy on raw scores, the
//!   self-supervised temporal link-prediction objective used to train both
//!   the teacher and the student models (positive = observed temporal edge,
//!   negative = randomly sampled non-edge).
//! * [`distillation_loss`] — the soft cross-entropy between student and
//!   teacher attention distributions (Eq. 17 of the paper), used by the
//!   knowledge-distillation setup of Section III-A.
//! * [`mse`] — mean squared error, used by ablation experiments.

use tgnn_tensor::ops::{log_softmax, sigmoid, softmax};
use tgnn_tensor::Float;

/// Numerically-stable binary cross-entropy with logits.
///
/// Returns `(loss, gradient w.r.t. each logit)`, averaged over the batch.
///
/// # Panics
/// Panics if lengths differ or the batch is empty.
pub fn bce_with_logits(logits: &[Float], targets: &[Float]) -> (Float, Vec<Float>) {
    assert_eq!(
        logits.len(),
        targets.len(),
        "bce_with_logits: length mismatch"
    );
    assert!(!logits.is_empty(), "bce_with_logits: empty batch");
    let n = logits.len() as Float;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(logits.len());
    for (&x, &y) in logits.iter().zip(targets) {
        // loss = max(x, 0) - x*y + ln(1 + exp(-|x|))
        loss += x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        grad.push((sigmoid(x) - y) / n);
    }
    (loss / n, grad)
}

/// Accuracy of thresholded logits against binary targets.
pub fn binary_accuracy(logits: &[Float], targets: &[Float]) -> Float {
    assert_eq!(
        logits.len(),
        targets.len(),
        "binary_accuracy: length mismatch"
    );
    if logits.is_empty() {
        return 0.0;
    }
    let correct = logits
        .iter()
        .zip(targets)
        .filter(|(&x, &y)| (x > 0.0) == (y > 0.5))
        .count();
    correct as Float / logits.len() as Float
}

/// Average precision (area under the precision–recall curve, computed by the
/// rank-based formula) — the AP metric reported throughout Table II and
/// Fig. 7 of the paper.
///
/// `scores` are arbitrary real-valued rankings, `labels` are 0/1.
pub fn average_precision(scores: &[Float], labels: &[Float]) -> Float {
    assert_eq!(
        scores.len(),
        labels.len(),
        "average_precision: length mismatch"
    );
    let total_pos = labels.iter().filter(|&&l| l > 0.5).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut hits = 0usize;
    let mut sum_precision = 0.0;
    for (rank, &idx) in order.iter().enumerate() {
        if labels[idx] > 0.5 {
            hits += 1;
            sum_precision += hits as Float / (rank + 1) as Float;
        }
    }
    sum_precision / total_pos as Float
}

/// Soft cross-entropy knowledge-distillation loss (Eq. 17):
/// `- Σ softmax(teacher/T) · log softmax(student/T)`, averaged over targets.
///
/// Returns `(loss, gradient w.r.t. the student logits)`.  Missing-slot logits
/// (`-inf`) are handled by the underlying softmax.
///
/// # Panics
/// Panics if the lengths differ, the batch is empty, or `temperature <= 0`.
pub fn distillation_loss(
    student_logits: &[Float],
    teacher_logits: &[Float],
    temperature: Float,
) -> (Float, Vec<Float>) {
    assert_eq!(
        student_logits.len(),
        teacher_logits.len(),
        "distillation_loss: length mismatch"
    );
    assert!(
        !student_logits.is_empty(),
        "distillation_loss: empty logits"
    );
    assert!(
        temperature > 0.0,
        "distillation_loss: temperature must be positive"
    );

    let t_scaled: Vec<Float> = teacher_logits.iter().map(|&x| x / temperature).collect();
    let s_scaled: Vec<Float> = student_logits.iter().map(|&x| x / temperature).collect();
    let p_teacher = softmax(&t_scaled);
    let log_p_student = log_softmax(&s_scaled);
    let p_student = softmax(&s_scaled);

    let loss: Float = -p_teacher
        .iter()
        .zip(&log_p_student)
        .map(|(&pt, &lps)| if pt > 0.0 { pt * lps } else { 0.0 })
        .sum::<Float>();

    // d loss / d s_i = (softmax(s/T)_i - softmax(t/T)_i) / T
    let grad: Vec<Float> = p_student
        .iter()
        .zip(&p_teacher)
        .map(|(&ps, &pt)| (ps - pt) / temperature)
        .collect();
    (loss, grad)
}

/// Mean squared error and its gradient with respect to the predictions.
pub fn mse(predictions: &[Float], targets: &[Float]) -> (Float, Vec<Float>) {
    assert_eq!(predictions.len(), targets.len(), "mse: length mismatch");
    assert!(!predictions.is_empty(), "mse: empty batch");
    let n = predictions.len() as Float;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(predictions.len());
    for (&p, &t) in predictions.iter().zip(targets) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_tensor::approx_eq;

    #[test]
    fn bce_perfect_predictions_have_low_loss() {
        let (loss_good, _) = bce_with_logits(&[10.0, -10.0], &[1.0, 0.0]);
        let (loss_bad, _) = bce_with_logits(&[-10.0, 10.0], &[1.0, 0.0]);
        assert!(loss_good < 1e-3);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = vec![0.3, -1.2, 2.0];
        let targets = vec![1.0, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let numeric = (bce_with_logits(&plus, &targets).0
                - bce_with_logits(&minus, &targets).0)
                / (2.0 * eps);
            assert!(
                approx_eq(grad[i], numeric, 1e-2),
                "grad {} vs {}",
                grad[i],
                numeric
            );
        }
    }

    #[test]
    fn bce_symmetric_at_zero_logit() {
        let (loss, grad) = bce_with_logits(&[0.0], &[1.0]);
        assert!(approx_eq(loss, (2.0f32).ln(), 1e-5));
        assert!(approx_eq(grad[0], -0.5, 1e-5));
    }

    #[test]
    fn accuracy_counts_correct_signs() {
        let acc = binary_accuracy(&[1.0, -1.0, 2.0, -2.0], &[1.0, 0.0, 0.0, 0.0]);
        assert!(approx_eq(acc, 0.75, 1e-6));
        assert_eq!(binary_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_random() {
        // Perfect ranking: all positives ranked above negatives.
        let ap = average_precision(&[0.9, 0.8, 0.2, 0.1], &[1.0, 1.0, 0.0, 0.0]);
        assert!(approx_eq(ap, 1.0, 1e-6));
        // Worst ranking: positives at the bottom.
        let ap_bad = average_precision(&[0.1, 0.2, 0.8, 0.9], &[1.0, 1.0, 0.0, 0.0]);
        assert!(ap_bad < 0.6);
        // No positives.
        assert_eq!(average_precision(&[0.5], &[0.0]), 0.0);
    }

    #[test]
    fn average_precision_known_value() {
        // Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2 = 5/6.
        let ap = average_precision(&[0.9, 0.5, 0.3], &[1.0, 0.0, 1.0]);
        assert!(approx_eq(ap, 5.0 / 6.0, 1e-5));
    }

    #[test]
    fn distillation_zero_when_distributions_match() {
        let logits = vec![1.0, 2.0, 0.5];
        let (loss, grad) = distillation_loss(&logits, &logits, 1.0);
        // Loss equals the entropy of the teacher (non-zero) but the gradient
        // must vanish when the student matches the teacher.
        assert!(loss > 0.0);
        for g in grad {
            assert!(g.abs() < 1e-6);
        }
    }

    #[test]
    fn distillation_gradient_points_toward_teacher() {
        let student = vec![0.0, 0.0];
        let teacher = vec![5.0, -5.0];
        let (_, grad) = distillation_loss(&student, &teacher, 1.0);
        // Student under-weights slot 0 relative to the teacher, so the
        // gradient for slot 0 must be negative (increase that logit).
        assert!(grad[0] < 0.0);
        assert!(grad[1] > 0.0);
    }

    #[test]
    fn distillation_gradient_matches_finite_difference() {
        let student = vec![0.3, -0.7, 1.1];
        let teacher = vec![1.0, 0.2, -0.5];
        let temperature = 2.0;
        let (_, grad) = distillation_loss(&student, &teacher, temperature);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = student.clone();
            plus[i] += eps;
            let mut minus = student.clone();
            minus[i] -= eps;
            let numeric = (distillation_loss(&plus, &teacher, temperature).0
                - distillation_loss(&minus, &teacher, temperature).0)
                / (2.0 * eps);
            assert!(approx_eq(grad[i], numeric, 1e-2));
        }
    }

    #[test]
    fn mse_basic() {
        let (loss, grad) = mse(&[1.0, 2.0], &[0.0, 2.0]);
        assert!(approx_eq(loss, 0.5, 1e-6));
        assert!(approx_eq(grad[0], 1.0, 1e-6));
        assert!(approx_eq(grad[1], 0.0, 1e-6));
    }
}
