//! Finite-difference gradient checking.
//!
//! Every hand-written backward pass in this crate is validated against a
//! central finite difference of the corresponding scalar loss.  The helper is
//! exposed publicly so higher-level crates (the full model in `tgnn-core`)
//! can reuse it in their own tests.

use tgnn_tensor::{Float, Matrix};

/// Default perturbation used by the checks.
pub const DEFAULT_EPS: Float = 1e-2;

/// Checks an analytic gradient matrix against central finite differences.
///
/// * `_loss_at_center` — the unperturbed loss (unused numerically, kept for
///   call-site readability).
/// * `analytic` — the gradient under test (same shape as the parameter).
/// * `loss_with_perturbation(i, j, eps)` — recomputes the loss with element
///   `(i, j)` of the parameter shifted by `eps`.
/// * `tol` — maximum allowed absolute/relative deviation.
///
/// # Panics
/// Panics with a descriptive message when any element deviates.
pub fn check_gradients(
    _loss_at_center: &Float,
    analytic: &Matrix,
    mut loss_with_perturbation: impl FnMut(usize, usize, Float) -> Float,
    tol: Float,
) {
    for i in 0..analytic.rows() {
        for j in 0..analytic.cols() {
            let plus = loss_with_perturbation(i, j, DEFAULT_EPS);
            let minus = loss_with_perturbation(i, j, -DEFAULT_EPS);
            let numeric = (plus - minus) / (2.0 * DEFAULT_EPS);
            let a = analytic[(i, j)];
            let denom = 1.0_f32.max(a.abs()).max(numeric.abs());
            let rel = (a - numeric).abs() / denom;
            assert!(
                rel <= tol,
                "gradient mismatch at ({i}, {j}): analytic {a}, numeric {numeric}, rel err {rel}"
            );
        }
    }
}

/// Relative error between an analytic and a numeric scalar derivative.
pub fn relative_error(analytic: Float, numeric: Float) -> Float {
    let denom = 1.0_f32.max(analytic.abs()).max(numeric.abs());
    (analytic - numeric).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient_of_quadratic() {
        // loss(w) = sum(w^2); d/dw = 2w.
        let w = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let analytic = w.map(|x| 2.0 * x);
        let loss = w.map(|x| x * x).sum();
        check_gradients(
            &loss,
            &analytic,
            |i, j, eps| {
                let mut p = w.clone();
                p[(i, j)] += eps;
                p.map(|x| x * x).sum()
            },
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradient() {
        let w = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let wrong = w.map(|x| 3.0 * x); // true gradient is 2w
        let loss = w.map(|x| x * x).sum();
        check_gradients(
            &loss,
            &wrong,
            |i, j, eps| {
                let mut p = w.clone();
                p[(i, j)] += eps;
                p.map(|x| x * x).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn relative_error_behaviour() {
        assert!(relative_error(1.0, 1.0) < 1e-9);
        assert!(relative_error(0.0, 0.0) < 1e-9);
        assert!(relative_error(10.0, 11.0) > 0.05);
    }
}
