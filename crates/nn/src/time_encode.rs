//! Time encoders.
//!
//! * [`CosTimeEncoder`] — the trigonometric encoder of Eq. 6,
//!   `Φ(Δt) = cos(ω·Δt + φ)` with learnable vectors ω, φ, shared by TGN and
//!   most memory-based TGNNs.
//! * [`LutTimeEncoder`] — the paper's LUT replacement (Section III-C): Δt is
//!   bucketed into equal-frequency intervals and each interval stores a
//!   learned encoding vector.  At inference the table can be *fused* with any
//!   downstream weight matrix so the whole "time encoding + vector–matrix
//!   multiply" collapses into a single table read
//!   ([`LutTimeEncoder::fuse_with`]), which is what lets the hardware emit
//!   the post-weight hidden features in one cycle.

use crate::param::Param;
use serde::{Deserialize, Serialize};
use tgnn_tensor::gemm::matmul;
use tgnn_tensor::stats::{bin_index, equal_frequency_edges};
use tgnn_tensor::{Float, Matrix, TensorRng};

/// Trigonometric time encoder `Φ(Δt) = cos(ω·Δt + φ)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CosTimeEncoder {
    /// Frequencies ω (1×dim).
    pub omega: Param,
    /// Phases φ (1×dim).
    pub phi: Param,
    dim: usize,
}

impl CosTimeEncoder {
    /// Creates an encoder of the given output dimensionality.  Frequencies
    /// are initialised on a log scale (as in the TGN reference code) so
    /// different components respond to different time scales.
    pub fn new(name: &str, dim: usize, rng: &mut TensorRng) -> Self {
        assert!(dim > 0, "CosTimeEncoder: dim must be positive");
        let mut omega = Matrix::zeros(1, dim);
        for j in 0..dim {
            // Geometric progression from ~1 down to ~1e-6, plus jitter.
            let exponent = -(6.0 * j as Float / dim as Float);
            omega[(0, j)] = 10.0_f32.powf(exponent) * rng.uniform(0.5, 1.5);
        }
        Self {
            omega: Param::new(format!("{name}.omega"), omega),
            phi: Param::new(
                format!("{name}.phi"),
                rng.uniform_matrix(1, dim, 0.0, std::f32::consts::PI),
            ),
            dim,
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a batch of time deltas: `Δt (B) -> Φ (B×dim)`.
    pub fn forward(&self, delta_t: &[Float]) -> Matrix {
        let mut out = Matrix::zeros(delta_t.len(), self.dim);
        self.forward_into(delta_t, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::forward`] writing into a pre-sized
    /// `B×dim` output (workspace-threaded hot path).
    ///
    /// # Panics
    /// Panics if `out` is not `delta_t.len() × dim`.
    pub fn forward_into(&self, delta_t: &[Float], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (delta_t.len(), self.dim),
            "CosTimeEncoder::forward_into: output shape mismatch"
        );
        let omega = self.omega.value.row(0);
        let phi = self.phi.value.row(0);
        for (i, &dt) in delta_t.iter().enumerate() {
            let row = out.row_mut(i);
            for j in 0..self.dim {
                row[j] = (omega[j] * dt + phi[j]).cos();
            }
        }
    }

    /// Backward pass: accumulates gradients for ω and φ given the upstream
    /// gradient `grad_out (B×dim)` and the original inputs.
    pub fn backward(&mut self, delta_t: &[Float], grad_out: &Matrix) {
        assert_eq!(
            grad_out.rows(),
            delta_t.len(),
            "CosTimeEncoder: batch mismatch"
        );
        assert_eq!(grad_out.cols(), self.dim, "CosTimeEncoder: dim mismatch");
        let mut d_omega = Matrix::zeros(1, self.dim);
        let mut d_phi = Matrix::zeros(1, self.dim);
        for (i, &dt) in delta_t.iter().enumerate() {
            for j in 0..self.dim {
                let arg = self.omega.value[(0, j)] * dt + self.phi.value[(0, j)];
                let d_arg = -arg.sin() * grad_out[(i, j)];
                d_omega[(0, j)] += d_arg * dt;
                d_phi[(0, j)] += d_arg;
            }
        }
        self.omega.accumulate(&d_omega);
        self.phi.accumulate(&d_phi);
    }

    /// Learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.omega, &mut self.phi]
    }

    /// Immutable parameter access.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.omega, &self.phi]
    }

    /// MAC count for encoding `batch` time deltas (one multiply-add plus the
    /// cosine per output element; the cosine is counted as one MAC-equivalent
    /// as in the paper's operation accounting).
    pub fn macs(&self, batch: usize) -> u64 {
        (2 * batch * self.dim) as u64
    }
}

/// LUT-based time encoder.
///
/// The Δt axis is split into equal-frequency intervals; each interval stores
/// a learnable encoding vector.  Lookup is a binary search over the bin
/// edges (on hardware: a pipelined comparator tree over BRAM) followed by a
/// table read — no arithmetic.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LutTimeEncoder {
    /// Bin edges, strictly increasing, `bins + 1` entries.
    edges: Vec<Float>,
    /// Encoding table (`bins × dim`).
    pub table: Param,
    dim: usize,
}

impl LutTimeEncoder {
    /// Calibrates the bin edges from a sample of Δt values (equal-frequency
    /// binning) and initialises each bin's vector from a trained
    /// [`CosTimeEncoder`] evaluated at the bin's representative Δt (its
    /// median sample).  This mirrors the paper's training recipe where the
    /// LUT is learned to mimic the teacher's time encoding.
    pub fn calibrate(
        name: &str,
        delta_samples: &[Float],
        bins: usize,
        reference: &CosTimeEncoder,
    ) -> Self {
        assert!(
            !delta_samples.is_empty(),
            "LutTimeEncoder: empty calibration sample"
        );
        let edges = equal_frequency_edges(delta_samples, bins);
        let nbins = edges.len() - 1;
        let mut table = Matrix::zeros(nbins, reference.dim());
        for b in 0..nbins {
            let representative = 0.5 * (edges[b] + edges[b + 1]);
            let enc = reference.forward(&[representative]);
            table.row_mut(b).copy_from_slice(enc.row(0));
        }
        Self {
            edges,
            table: Param::new(format!("{name}.table"), table),
            dim: reference.dim(),
        }
    }

    /// Creates an encoder with explicit edges and a zero table (used when the
    /// table is to be learned from scratch).
    pub fn with_edges(name: &str, edges: Vec<Float>, dim: usize) -> Self {
        assert!(edges.len() >= 2, "LutTimeEncoder: need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[1] > w[0]),
            "LutTimeEncoder: edges must increase"
        );
        let nbins = edges.len() - 1;
        Self {
            edges,
            table: Param::zeros(format!("{name}.table"), nbins, dim),
            dim,
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of bins (LUT entries).
    pub fn bins(&self) -> usize {
        self.table.value.rows()
    }

    /// The bin index a given Δt falls into.
    pub fn lookup_bin(&self, delta_t: Float) -> usize {
        bin_index(&self.edges, delta_t)
    }

    /// Encodes a batch of time deltas by table lookup.
    pub fn forward(&self, delta_t: &[Float]) -> Matrix {
        let mut out = Matrix::zeros(delta_t.len(), self.dim);
        self.forward_into(delta_t, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::forward`] writing into a pre-sized
    /// `B×dim` output (workspace-threaded hot path).
    ///
    /// # Panics
    /// Panics if `out` is not `delta_t.len() × dim`.
    pub fn forward_into(&self, delta_t: &[Float], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (delta_t.len(), self.dim),
            "LutTimeEncoder::forward_into: output shape mismatch"
        );
        for (i, &dt) in delta_t.iter().enumerate() {
            let b = self.lookup_bin(dt);
            out.row_mut(i).copy_from_slice(self.table.value.row(b));
        }
    }

    /// Backward pass: routes each row's gradient into its bin's table row.
    pub fn backward(&mut self, delta_t: &[Float], grad_out: &Matrix) {
        assert_eq!(
            grad_out.rows(),
            delta_t.len(),
            "LutTimeEncoder: batch mismatch"
        );
        assert_eq!(grad_out.cols(), self.dim, "LutTimeEncoder: dim mismatch");
        let mut grad = Matrix::zeros(self.bins(), self.dim);
        for (i, &dt) in delta_t.iter().enumerate() {
            let b = self.lookup_bin(dt);
            for (acc, &g) in grad.row_mut(b).iter_mut().zip(grad_out.row(i)) {
                *acc += g;
            }
        }
        self.table.accumulate(&grad);
    }

    /// Pre-computes the product of every table entry with a downstream weight
    /// matrix `W (out × dim)`: the returned `bins × out` matrix is the fused
    /// LUT stored in on-chip memory, so that at inference the time encoding
    /// *and* its vector–matrix multiplication cost a single table read.
    pub fn fuse_with(&self, weight: &Matrix) -> Matrix {
        assert_eq!(
            weight.cols(),
            self.dim,
            "fuse_with: weight inner dim mismatch"
        );
        matmul(&self.table.value, &weight.transpose())
    }

    /// Learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    /// Immutable parameter access.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }

    /// On-chip memory footprint of the (unfused) table in bytes.
    pub fn table_bytes(&self, bytes_per_word: usize) -> usize {
        self.bins() * self.dim * bytes_per_word
    }

    /// MACs per encoded Δt — zero, which is the whole point of the LUT.
    pub fn macs(&self, _batch: usize) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use tgnn_tensor::approx_eq;

    #[test]
    fn cos_encoder_outputs_bounded_cosines() {
        let mut rng = TensorRng::new(1);
        let enc = CosTimeEncoder::new("t", 8, &mut rng);
        let out = enc.forward(&[0.0, 1.0, 100.0, 1e6]);
        assert_eq!(out.shape(), (4, 8));
        assert!(out.max_abs() <= 1.0 + 1e-6);
        // Φ(0) = cos(φ) is identical for every call — the hardware exploits
        // this by hard-wiring the query-side time encoding.
        let a = enc.forward(&[0.0]);
        let b = enc.forward(&[0.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn cos_encoder_distinguishes_time_scales() {
        let mut rng = TensorRng::new(2);
        let enc = CosTimeEncoder::new("t", 16, &mut rng);
        let a = enc.forward(&[1.0]);
        let b = enc.forward(&[1000.0]);
        let diff: Float = a
            .row(0)
            .iter()
            .zip(b.row(0))
            .map(|(&x, &y)| (x - y).abs())
            .sum();
        assert!(diff > 0.1, "encodings of very different Δt should differ");
    }

    #[test]
    fn cos_encoder_gradients_match_finite_differences() {
        let mut rng = TensorRng::new(3);
        let mut enc = CosTimeEncoder::new("t", 4, &mut rng);
        // Use moderate Δt so finite differences are well conditioned.
        let dts = vec![0.3, 1.7, 2.9];
        let loss_fn = |e: &CosTimeEncoder| e.forward(&dts).sum();
        let loss = loss_fn(&enc);
        enc.backward(&dts, &Matrix::full(3, 4, 1.0));
        check_gradients(
            &loss,
            &enc.omega.grad,
            |i, j, eps| {
                let mut p = enc.clone();
                p.omega.value[(i, j)] += eps;
                loss_fn(&p)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &enc.phi.grad,
            |i, j, eps| {
                let mut p = enc.clone();
                p.phi.value[(i, j)] += eps;
                loss_fn(&p)
            },
            3e-2,
        );
    }

    #[test]
    fn lut_calibration_approximates_reference_on_dense_bins() {
        let mut rng = TensorRng::new(4);
        let reference = CosTimeEncoder::new("t", 6, &mut rng);
        // Heavy-tailed sample as in Fig. 1.
        let samples: Vec<Float> = {
            let mut r = TensorRng::new(99);
            (0..4000).map(|_| r.pareto(0.5, 1.2).min(1e4)).collect()
        };
        let lut = LutTimeEncoder::calibrate("lut", &samples, 128, &reference);
        assert!(lut.bins() >= 2);
        // On a dense region (small Δt) the LUT should be close to the
        // reference encoder.
        let probe = 1.0;
        let lut_out = lut.forward(&[probe]);
        let ref_out = reference.forward(&[probe]);
        let err: Float = lut_out
            .row(0)
            .iter()
            .zip(ref_out.row(0))
            .map(|(&a, &b)| (a - b).abs())
            .sum::<Float>()
            / 6.0;
        assert!(err < 0.3, "LUT too far from reference: {err}");
    }

    #[test]
    fn lut_forward_is_piecewise_constant_and_saturates() {
        let lut = {
            let mut l = LutTimeEncoder::with_edges("lut", vec![0.0, 1.0, 2.0, 4.0], 2);
            l.table.value.set_row(0, &[1.0, 0.0]);
            l.table.value.set_row(1, &[0.0, 1.0]);
            l.table.value.set_row(2, &[0.5, 0.5]);
            l
        };
        assert_eq!(lut.forward(&[0.2]).row(0), &[1.0, 0.0]);
        assert_eq!(lut.forward(&[0.9]).row(0), &[1.0, 0.0]);
        assert_eq!(lut.forward(&[1.5]).row(0), &[0.0, 1.0]);
        // Out-of-range values saturate to the first/last bin.
        assert_eq!(lut.forward(&[-5.0]).row(0), &[1.0, 0.0]);
        assert_eq!(lut.forward(&[100.0]).row(0), &[0.5, 0.5]);
        assert_eq!(lut.macs(1000), 0);
    }

    #[test]
    fn lut_backward_routes_gradients_to_bins() {
        let mut lut = LutTimeEncoder::with_edges("lut", vec![0.0, 1.0, 2.0], 3);
        let dts = vec![0.5, 0.7, 1.5];
        let grad = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ]);
        lut.backward(&dts, &grad);
        assert_eq!(lut.table.grad.row(0), &[1.0, 2.0, 0.0]);
        assert_eq!(lut.table.grad.row(1), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn fused_table_matches_explicit_multiply() {
        let mut rng = TensorRng::new(7);
        let reference = CosTimeEncoder::new("t", 5, &mut rng);
        let samples: Vec<Float> = (0..500).map(|i| (i as Float + 1.0) * 0.1).collect();
        let lut = LutTimeEncoder::calibrate("lut", &samples, 16, &reference);
        let w = rng.uniform_matrix(3, 5, -1.0, 1.0);
        let fused = lut.fuse_with(&w);
        assert_eq!(fused.shape(), (lut.bins(), 3));
        // For any Δt: fused[bin] == W · Φ_lut(Δt)
        let dt = 7.3;
        let bin = lut.lookup_bin(dt);
        let enc = lut.forward(&[dt]);
        let explicit = matmul(&enc, &w.transpose());
        for j in 0..3 {
            assert!(approx_eq(fused[(bin, j)], explicit[(0, j)], 1e-4));
        }
        assert_eq!(lut.table_bytes(4), lut.bins() * 5 * 4);
    }
}
