//! GRU memory updater — the `UPDT` function of memory-based TGNNs
//! (Eq. 7–10 of the paper).
//!
//! ```text
//! r = σ(W_ir·m + b_ir + W_hr·s + b_hr)        (reset gate)
//! z = σ(W_iz·m + b_iz + W_hz·s + b_hz)        (update gate)
//! n = tanh(W_in·m + b_in + r ⊙ (W_hn·s + b_hn))  (memory gate)
//! s' = (1 − z) ⊙ n + z ⊙ s                    (merging gate)
//! ```
//!
//! where `m` is the aggregated message (Eq. 4–5) and `s` the previous node
//! memory.  On the accelerator the four gates map to the Memory Update Unit:
//! three Sg×Sg multiply-accumulate arrays connected by FIFOs plus an
//! elementwise merge stage (Section IV-B).

use crate::linear::Linear;
use crate::param::Param;
use serde::{Deserialize, Serialize};
use tgnn_tensor::ops::{sigmoid, tanh};
use tgnn_tensor::{Matrix, TensorRng, Workspace};

/// GRU cell operating on batches (each row = one vertex).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCell {
    /// Input-to-reset projection `W_ir, b_ir`.
    pub w_ir: Linear,
    /// Hidden-to-reset projection `W_hr, b_hr`.
    pub w_hr: Linear,
    /// Input-to-update projection `W_iz, b_iz`.
    pub w_iz: Linear,
    /// Hidden-to-update projection `W_hz, b_hz`.
    pub w_hz: Linear,
    /// Input-to-memory projection `W_in, b_in`.
    pub w_in: Linear,
    /// Hidden-to-memory projection `W_hn, b_hn`.
    pub w_hn: Linear,
    input_dim: usize,
    hidden_dim: usize,
}

/// Intermediate activations cached by [`GruCell::forward_cached`] and
/// consumed by [`GruCell::backward`].
#[derive(Clone, Debug)]
pub struct GruCache {
    pub input: Matrix,
    pub hidden: Matrix,
    pub r: Matrix,
    pub z: Matrix,
    pub n: Matrix,
    /// `W_hn·s + b_hn` before the reset gate is applied.
    pub hn_lin: Matrix,
}

impl GruCell {
    /// Creates a GRU cell mapping `input_dim`-dimensional messages onto
    /// `hidden_dim`-dimensional node memory.
    pub fn new(name: &str, input_dim: usize, hidden_dim: usize, rng: &mut TensorRng) -> Self {
        Self {
            w_ir: Linear::new(&format!("{name}.w_ir"), input_dim, hidden_dim, rng),
            w_hr: Linear::new(&format!("{name}.w_hr"), hidden_dim, hidden_dim, rng),
            w_iz: Linear::new(&format!("{name}.w_iz"), input_dim, hidden_dim, rng),
            w_hz: Linear::new(&format!("{name}.w_hz"), hidden_dim, hidden_dim, rng),
            w_in: Linear::new(&format!("{name}.w_in"), input_dim, hidden_dim, rng),
            w_hn: Linear::new(&format!("{name}.w_hn"), hidden_dim, hidden_dim, rng),
            input_dim,
            hidden_dim,
        }
    }

    /// Message (input) dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Memory (hidden) dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Forward pass returning only the new hidden state.
    pub fn forward(&self, input: &Matrix, hidden: &Matrix) -> Matrix {
        self.forward_cached(input, hidden).0
    }

    /// Allocation-free inference forward pass on workspace buffers and the
    /// packed GEMM.  Elementwise operations run in the same order as
    /// [`Self::forward`], so the result is bit-identical; no backward cache
    /// is produced.  The returned matrix comes from the workspace — recycle
    /// it when done.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn forward_ws(&self, input: &Matrix, hidden: &Matrix, ws: &mut Workspace) -> Matrix {
        assert_eq!(input.cols(), self.input_dim, "GruCell: input dim mismatch");
        assert_eq!(
            hidden.cols(),
            self.hidden_dim,
            "GruCell: hidden dim mismatch"
        );
        assert_eq!(input.rows(), hidden.rows(), "GruCell: batch mismatch");

        // r = σ(W_ir·m + b_ir + W_hr·s + b_hr)
        let mut r = self.w_ir.forward_ws(input, ws);
        let hr = self.w_hr.forward_ws(hidden, ws);
        for (a, &b) in r.as_mut_slice().iter_mut().zip(hr.as_slice()) {
            *a = sigmoid(*a + b);
        }
        ws.recycle_matrix(hr);

        // z = σ(W_iz·m + b_iz + W_hz·s + b_hz)
        let mut z = self.w_iz.forward_ws(input, ws);
        let hz = self.w_hz.forward_ws(hidden, ws);
        for (a, &b) in z.as_mut_slice().iter_mut().zip(hz.as_slice()) {
            *a = sigmoid(*a + b);
        }
        ws.recycle_matrix(hz);

        // n = tanh(W_in·m + b_in + r ⊙ (W_hn·s + b_hn))
        let mut n = self.w_in.forward_ws(input, ws);
        let hn_lin = self.w_hn.forward_ws(hidden, ws);
        for ((a, &ri), &h) in n
            .as_mut_slice()
            .iter_mut()
            .zip(r.as_slice())
            .zip(hn_lin.as_slice())
        {
            *a = tanh(*a + ri * h);
        }
        ws.recycle_matrix(hn_lin);
        ws.recycle_matrix(r);

        // s' = (1 − z) ⊙ n + z ⊙ s, written over n.
        for ((a, &zi), &si) in n
            .as_mut_slice()
            .iter_mut()
            .zip(z.as_slice())
            .zip(hidden.as_slice())
        {
            *a = (1.0 - zi) * *a + zi * si;
        }
        ws.recycle_matrix(z);
        n
    }

    /// Forward pass returning the new hidden state and the cache needed for
    /// the backward pass.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn forward_cached(&self, input: &Matrix, hidden: &Matrix) -> (Matrix, GruCache) {
        assert_eq!(input.cols(), self.input_dim, "GruCell: input dim mismatch");
        assert_eq!(
            hidden.cols(),
            self.hidden_dim,
            "GruCell: hidden dim mismatch"
        );
        assert_eq!(input.rows(), hidden.rows(), "GruCell: batch mismatch");

        let r_pre = tgnn_tensor::ops::add(&self.w_ir.forward(input), &self.w_hr.forward(hidden));
        let z_pre = tgnn_tensor::ops::add(&self.w_iz.forward(input), &self.w_hz.forward(hidden));
        let r = r_pre.map(sigmoid);
        let z = z_pre.map(sigmoid);
        let hn_lin = self.w_hn.forward(hidden);
        let n_pre = tgnn_tensor::ops::add(
            &self.w_in.forward(input),
            &tgnn_tensor::ops::hadamard(&r, &hn_lin),
        );
        let n = n_pre.map(tanh);

        // s' = (1 - z) ⊙ n + z ⊙ s
        let new_hidden = n
            .zip(&z, |ni, zi| (1.0 - zi) * ni)
            .zip(&tgnn_tensor::ops::hadamard(&z, hidden), |a, b| a + b);

        let cache = GruCache {
            input: input.clone(),
            hidden: hidden.clone(),
            r,
            z,
            n,
            hn_lin,
        };
        (new_hidden, cache)
    }

    /// Backward pass.  Given `grad_new_hidden = ∂L/∂s'`, accumulates all
    /// weight gradients and returns `(∂L/∂m, ∂L/∂s)`.
    pub fn backward(&mut self, cache: &GruCache, grad_new_hidden: &Matrix) -> (Matrix, Matrix) {
        let GruCache {
            input,
            hidden,
            r,
            z,
            n,
            hn_lin,
        } = cache;

        // s' = (1 - z) ⊙ n + z ⊙ s
        let dn = grad_new_hidden.zip(z, |g, zi| g * (1.0 - zi));
        let dz = grad_new_hidden.zip(&tgnn_tensor::ops::sub(hidden, n), |g, diff| g * diff);
        let ds_direct = tgnn_tensor::ops::hadamard(grad_new_hidden, z);

        // n = tanh(n_pre)
        let dn_pre = dn.zip(n, |g, ni| g * (1.0 - ni * ni));
        // n_pre = W_in·m + b_in + r ⊙ hn_lin
        let dr = tgnn_tensor::ops::hadamard(&dn_pre, hn_lin);
        let dhn_lin = tgnn_tensor::ops::hadamard(&dn_pre, r);

        // Gates: r = σ(r_pre), z = σ(z_pre)
        let dr_pre = dr.zip(r, |g, ri| g * ri * (1.0 - ri));
        let dz_pre = dz.zip(z, |g, zi| g * zi * (1.0 - zi));

        // Propagate through the six affine projections.
        let dm_r = self.w_ir.backward(input, &dr_pre);
        let ds_r = self.w_hr.backward(hidden, &dr_pre);
        let dm_z = self.w_iz.backward(input, &dz_pre);
        let ds_z = self.w_hz.backward(hidden, &dz_pre);
        let dm_n = self.w_in.backward(input, &dn_pre);
        let ds_n = self.w_hn.backward(hidden, &dhn_lin);

        let grad_input = tgnn_tensor::ops::add(&tgnn_tensor::ops::add(&dm_r, &dm_z), &dm_n);
        let grad_hidden = tgnn_tensor::ops::add(
            &tgnn_tensor::ops::add(&ds_r, &ds_z),
            &tgnn_tensor::ops::add(&ds_n, &ds_direct),
        );
        (grad_input, grad_hidden)
    }

    /// Learnable parameters (12 tensors: 6 weights + 6 biases).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::with_capacity(12);
        out.extend(self.w_ir.params_mut());
        out.extend(self.w_hr.params_mut());
        out.extend(self.w_iz.params_mut());
        out.extend(self.w_hz.params_mut());
        out.extend(self.w_in.params_mut());
        out.extend(self.w_hn.params_mut());
        out
    }

    /// Immutable parameter access.
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::with_capacity(12);
        out.extend(self.w_ir.params());
        out.extend(self.w_hr.params());
        out.extend(self.w_iz.params());
        out.extend(self.w_hz.params());
        out.extend(self.w_in.params());
        out.extend(self.w_hn.params());
        out
    }

    /// Multiply-accumulate count per batch of `batch` vertices (three
    /// input-side and three hidden-side matrix products).
    pub fn macs(&self, batch: usize) -> u64 {
        (3 * batch * self.input_dim * self.hidden_dim
            + 3 * batch * self.hidden_dim * self.hidden_dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use tgnn_tensor::approx_eq;

    /// Scalar reference implementation of one GRU element for cross-checking.
    #[allow(clippy::too_many_arguments)]
    fn scalar_gru(
        m: f32,
        s: f32,
        wir: f32,
        whr: f32,
        wiz: f32,
        whz: f32,
        win: f32,
        whn: f32,
    ) -> f32 {
        let r = sigmoid(wir * m + whr * s);
        let z = sigmoid(wiz * m + whz * s);
        let n = (win * m + r * (whn * s)).tanh();
        (1.0 - z) * n + z * s
    }

    #[test]
    fn matches_scalar_reference_for_1x1() {
        let mut rng = TensorRng::new(0);
        let mut cell = GruCell::new("g", 1, 1, &mut rng);
        // Zero the biases so the scalar reference applies.
        for p in cell.params_mut() {
            if p.name.ends_with(".bias") {
                p.value.as_mut_slice().fill(0.0);
            }
        }
        let wir = cell.w_ir.weight.value[(0, 0)];
        let whr = cell.w_hr.weight.value[(0, 0)];
        let wiz = cell.w_iz.weight.value[(0, 0)];
        let whz = cell.w_hz.weight.value[(0, 0)];
        let win = cell.w_in.weight.value[(0, 0)];
        let whn = cell.w_hn.weight.value[(0, 0)];

        let m = 0.7;
        let s = -0.3;
        let out = cell.forward(&Matrix::row_vector(&[m]), &Matrix::row_vector(&[s]));
        let expected = scalar_gru(m, s, wir, whr, wiz, whz, win, whn);
        assert!(approx_eq(out[(0, 0)], expected, 1e-5));
    }

    #[test]
    fn output_shape_and_interpolation_property() {
        let mut rng = TensorRng::new(1);
        let cell = GruCell::new("g", 6, 4, &mut rng);
        let m = rng.uniform_matrix(5, 6, -1.0, 1.0);
        let s = rng.uniform_matrix(5, 4, -1.0, 1.0);
        let out = cell.forward(&m, &s);
        assert_eq!(out.shape(), (5, 4));
        // The GRU output is a convex combination of n ∈ (-1, 1) and s, so it
        // is bounded by max(|s|, 1).
        let bound = s.max_abs().max(1.0) + 1e-5;
        assert!(out.max_abs() <= bound);
        assert!(out.all_finite());
    }

    #[test]
    fn zero_update_gate_keeps_memory_when_z_saturated() {
        let mut rng = TensorRng::new(2);
        let mut cell = GruCell::new("g", 2, 3, &mut rng);
        // Force the update gate to saturate at 1 (z ≈ 1 ⇒ s' ≈ s).
        cell.w_iz.bias.value.as_mut_slice().fill(50.0);
        let m = rng.uniform_matrix(4, 2, -1.0, 1.0);
        let s = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let out = cell.forward(&m, &s);
        for i in 0..4 {
            for j in 0..3 {
                assert!(approx_eq(out[(i, j)], s[(i, j)], 1e-3));
            }
        }
    }

    #[test]
    fn backward_weight_gradients_match_finite_differences() {
        let mut rng = TensorRng::new(3);
        let mut cell = GruCell::new("g", 3, 2, &mut rng);
        let m = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let s = rng.uniform_matrix(4, 2, -1.0, 1.0);

        let loss_fn = |c: &GruCell| c.forward(&m, &s).sum();
        let (out, cache) = cell.forward_cached(&m, &s);
        let loss = out.sum();
        let grad_out = Matrix::full(4, 2, 1.0);
        let (_, _) = cell.backward(&cache, &grad_out);

        // Check a representative subset of weights (full check is slow).
        check_gradients(
            &loss,
            &cell.w_in.weight.grad,
            |i, j, eps| {
                let mut pert = cell.clone();
                pert.w_in.weight.value[(i, j)] += eps;
                loss_fn(&pert)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &cell.w_hn.weight.grad,
            |i, j, eps| {
                let mut pert = cell.clone();
                pert.w_hn.weight.value[(i, j)] += eps;
                loss_fn(&pert)
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &cell.w_hz.weight.grad,
            |i, j, eps| {
                let mut pert = cell.clone();
                pert.w_hz.weight.value[(i, j)] += eps;
                loss_fn(&pert)
            },
            3e-2,
        );
    }

    #[test]
    fn backward_input_gradients_match_finite_differences() {
        let mut rng = TensorRng::new(4);
        let mut cell = GruCell::new("g", 3, 2, &mut rng);
        let m = rng.uniform_matrix(2, 3, -1.0, 1.0);
        let s = rng.uniform_matrix(2, 2, -1.0, 1.0);
        let (out, cache) = cell.forward_cached(&m, &s);
        let loss = out.sum();
        let (grad_m, grad_s) = cell.backward(&cache, &Matrix::full(2, 2, 1.0));

        check_gradients(
            &loss,
            &grad_m,
            |i, j, eps| {
                let mut pert = m.clone();
                pert[(i, j)] += eps;
                cell.forward(&pert, &s).sum()
            },
            3e-2,
        );
        check_gradients(
            &loss,
            &grad_s,
            |i, j, eps| {
                let mut pert = s.clone();
                pert[(i, j)] += eps;
                cell.forward(&m, &pert).sum()
            },
            3e-2,
        );
    }

    #[test]
    fn forward_ws_is_bitwise_identical_to_forward() {
        let mut rng = TensorRng::new(8);
        let mut ws = Workspace::new();
        let cell = GruCell::new("g", 12, 7, &mut rng);
        for batch in [1usize, 3, 17] {
            let m = rng.uniform_matrix(batch, 12, -1.0, 1.0);
            let s = rng.uniform_matrix(batch, 7, -1.0, 1.0);
            let reference = cell.forward(&m, &s);
            let out = cell.forward_ws(&m, &s, &mut ws);
            assert_eq!(out.as_slice(), reference.as_slice(), "batch {batch}");
            ws.recycle_matrix(out);
        }
    }

    #[test]
    fn forward_ws_steady_state_does_not_allocate() {
        let mut rng = TensorRng::new(9);
        let mut ws = Workspace::new();
        let cell = GruCell::new("g", 20, 10, &mut rng);
        let m = rng.uniform_matrix(8, 20, -1.0, 1.0);
        let s = rng.uniform_matrix(8, 10, -1.0, 1.0);
        for _ in 0..3 {
            let out = cell.forward_ws(&m, &s, &mut ws);
            ws.recycle_matrix(out);
        }
        let warm = ws.heap_allocs();
        for _ in 0..50 {
            let out = cell.forward_ws(&m, &s, &mut ws);
            ws.recycle_matrix(out);
        }
        assert_eq!(ws.heap_allocs(), warm, "steady-state GRU must not allocate");
    }

    #[test]
    fn macs_formula() {
        let mut rng = TensorRng::new(5);
        let cell = GruCell::new("g", 10, 4, &mut rng);
        // 3 * (10*4) + 3 * (4*4) per row.
        assert_eq!(cell.macs(1), 120 + 48);
        assert_eq!(cell.macs(7), 7 * 168);
    }

    #[test]
    fn parameter_count() {
        let mut rng = TensorRng::new(6);
        let cell = GruCell::new("g", 5, 3, &mut rng);
        let total = crate::param::count_parameters(&cell.params());
        // 3 input weights 3x5, 3 hidden weights 3x3, 6 biases of 3.
        assert_eq!(total, 3 * 15 + 3 * 9 + 6 * 3);
    }
}
