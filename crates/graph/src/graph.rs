//! The temporal graph: features + chronological event log + splits.

use crate::{EventBatch, InteractionEvent, NodeId, Timestamp};
use serde::{Deserialize, Serialize};
use tgnn_tensor::Matrix;

/// A complete temporal interaction graph.
///
/// This mirrors the external-memory layout described in Section IV-A of the
/// paper: a static node-feature table `{f_v}`, a static edge-feature table
/// `{f_e}` (one row per interaction event), and the chronological event log
/// the accelerator consumes as its input stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalGraph {
    name: String,
    num_nodes: usize,
    node_features: Matrix,
    edge_features: Matrix,
    events: Vec<InteractionEvent>,
    /// Fraction of events (by chronological position) in the training split.
    train_fraction: f64,
    /// Fraction of events in the validation split (the remainder is test).
    val_fraction: f64,
}

impl TemporalGraph {
    /// Builds a temporal graph.
    ///
    /// * `node_features` must have `num_nodes` rows (0-column matrices are
    ///   allowed for datasets without node features, e.g. Wikipedia/Reddit).
    /// * `edge_features` must have one row per event (0 columns allowed,
    ///   e.g. GDELT).
    /// * `events` must be sorted by timestamp and reference valid node and
    ///   edge indices.
    ///
    /// # Panics
    /// Panics if any invariant is violated.
    pub fn new(
        name: impl Into<String>,
        num_nodes: usize,
        node_features: Matrix,
        edge_features: Matrix,
        events: Vec<InteractionEvent>,
    ) -> Self {
        assert_eq!(
            node_features.rows(),
            num_nodes,
            "TemporalGraph: node feature rows must equal num_nodes"
        );
        assert_eq!(
            edge_features.rows(),
            events.len(),
            "TemporalGraph: edge feature rows must equal number of events"
        );
        assert!(
            events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
            "TemporalGraph: events must be chronologically ordered"
        );
        for e in &events {
            assert!(
                (e.src as usize) < num_nodes && (e.dst as usize) < num_nodes,
                "TemporalGraph: event endpoint out of range"
            );
            assert!(
                (e.edge_id as usize) < events.len(),
                "TemporalGraph: edge id out of range"
            );
        }
        Self {
            name: name.into(),
            num_nodes,
            node_features,
            edge_features,
            events,
            train_fraction: 0.70,
            val_fraction: 0.15,
        }
    }

    /// Sets the chronological train/val/test split fractions (defaults are
    /// 70/15/15 as in the TGN evaluation protocol the paper follows).
    ///
    /// # Panics
    /// Panics if the fractions are not in `(0, 1)` or sum to ≥ 1.
    pub fn with_split(mut self, train_fraction: f64, val_fraction: f64) -> Self {
        assert!(train_fraction > 0.0 && val_fraction >= 0.0);
        assert!(train_fraction + val_fraction < 1.0 + 1e-9);
        self.train_fraction = train_fraction;
        self.val_fraction = val_fraction;
        self
    }

    /// Dataset name (e.g. "wikipedia-synthetic").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of interaction events (temporal edges).
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Node feature dimensionality (`|v_i|` in Table II).
    pub fn node_feature_dim(&self) -> usize {
        self.node_features.cols()
    }

    /// Edge feature dimensionality (`|e_ij|` in Table II).
    pub fn edge_feature_dim(&self) -> usize {
        self.edge_features.cols()
    }

    /// Node feature table.
    pub fn node_features(&self) -> &Matrix {
        &self.node_features
    }

    /// Edge feature table (row `edge_id` is the feature of that event).
    pub fn edge_features(&self) -> &Matrix {
        &self.edge_features
    }

    /// Feature row of a node.
    pub fn node_feature(&self, v: NodeId) -> &[f32] {
        self.node_features.row(v as usize)
    }

    /// Feature row of an edge/event.
    pub fn edge_feature(&self, e: crate::EdgeId) -> &[f32] {
        self.edge_features.row(e as usize)
    }

    /// The full chronological event log.
    pub fn events(&self) -> &[InteractionEvent] {
        &self.events
    }

    /// Time span `(first, last)` of the trace; `None` if there are no events.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => Some((a.timestamp, b.timestamp)),
            _ => None,
        }
    }

    /// Index of the first validation event.
    pub fn train_end(&self) -> usize {
        ((self.events.len() as f64) * self.train_fraction).round() as usize
    }

    /// Index of the first test event.
    pub fn val_end(&self) -> usize {
        ((self.events.len() as f64) * (self.train_fraction + self.val_fraction)).round() as usize
    }

    /// Training split (chronological prefix).
    pub fn train_events(&self) -> &[InteractionEvent] {
        &self.events[..self.train_end()]
    }

    /// Validation split.
    pub fn val_events(&self) -> &[InteractionEvent] {
        &self.events[self.train_end()..self.val_end()]
    }

    /// Test split (chronological suffix) — the stream used for all inference
    /// performance experiments in the paper.
    pub fn test_events(&self) -> &[InteractionEvent] {
        &self.events[self.val_end()..]
    }

    /// All events as a single batch (useful for small tests).
    pub fn as_single_batch(&self) -> EventBatch {
        EventBatch::new(self.events.clone())
    }

    /// Mean number of events per vertex — a rough interaction-frequency
    /// statistic used when calibrating synthetic datasets.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.events.len() as f64 / self.num_nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_tensor::Matrix;

    fn tiny_graph() -> TemporalGraph {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 1.0),
            InteractionEvent::new(1, 2, 1, 2.0),
            InteractionEvent::new(2, 3, 2, 3.0),
            InteractionEvent::new(0, 3, 3, 4.0),
            InteractionEvent::new(1, 3, 4, 5.0),
            InteractionEvent::new(0, 2, 5, 6.0),
            InteractionEvent::new(3, 2, 6, 7.0),
            InteractionEvent::new(0, 1, 7, 8.0),
            InteractionEvent::new(2, 1, 8, 9.0),
            InteractionEvent::new(3, 0, 9, 10.0),
        ];
        TemporalGraph::new("tiny", 4, Matrix::zeros(4, 2), Matrix::zeros(10, 3), events)
    }

    #[test]
    fn dimensions_and_counts() {
        let g = tiny_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_events(), 10);
        assert_eq!(g.node_feature_dim(), 2);
        assert_eq!(g.edge_feature_dim(), 3);
        assert_eq!(g.time_span(), Some((1.0, 10.0)));
        assert!((g.mean_degree() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn default_split_is_70_15_15() {
        let g = tiny_graph();
        assert_eq!(g.train_events().len(), 7);
        assert_eq!(g.val_events().len(), 2); // round(8.5) = 9 -> indices 7..9
        assert_eq!(g.test_events().len(), 1);
        assert_eq!(
            g.train_events().len() + g.val_events().len() + g.test_events().len(),
            g.num_events()
        );
    }

    #[test]
    fn custom_split() {
        let g = tiny_graph().with_split(0.5, 0.2);
        assert_eq!(g.train_events().len(), 5);
        assert_eq!(g.val_events().len(), 2);
        assert_eq!(g.test_events().len(), 3);
    }

    #[test]
    fn splits_are_chronological() {
        let g = tiny_graph();
        let last_train = g.train_events().last().unwrap().timestamp;
        let first_val = g.val_events().first().unwrap().timestamp;
        assert!(last_train <= first_val);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn rejects_out_of_range_node() {
        let events = vec![InteractionEvent::new(0, 9, 0, 1.0)];
        let _ = TemporalGraph::new("bad", 2, Matrix::zeros(2, 0), Matrix::zeros(1, 0), events);
    }

    #[test]
    #[should_panic(expected = "chronologically ordered")]
    fn rejects_unordered_events() {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 5.0),
            InteractionEvent::new(1, 0, 1, 1.0),
        ];
        let _ = TemporalGraph::new("bad", 2, Matrix::zeros(2, 0), Matrix::zeros(2, 0), events);
    }

    #[test]
    #[should_panic(expected = "node feature rows")]
    fn rejects_feature_shape_mismatch() {
        let _ = TemporalGraph::new("bad", 3, Matrix::zeros(2, 4), Matrix::zeros(0, 0), vec![]);
    }
}
