//! Temporal graph substrate.
//!
//! Memory-based TGNNs (Section II of the paper) operate on a chronologically
//! ordered stream of graph signals — timestamped interactions between nodes.
//! This crate provides the storage and access paths that both the software
//! reference model (`tgnn-core`) and the accelerator simulator (`tgnn-hwsim`)
//! share:
//!
//! * [`event`] — timestamped interaction events (the "new edges" of
//!   Algorithm 1) and batches of them.
//! * [`graph`] — the [`TemporalGraph`]: node/edge
//!   features plus the full chronological event log with train/val/test
//!   splits.
//! * [`neighbor_table`] — the most-recent-`mr` Vertex Neighbor Table, a
//!   per-vertex FIFO that is exactly the data structure the hardware sampler
//!   replaces the software temporal sampler with.
//! * [`sampler`] — the reference software temporal sampler (scan all past
//!   events) and the FIFO sampler built on the neighbor table, plus the
//!   equivalence tests between them.
//! * [`batching`] — fixed-size and fixed-time-window batch formation, the two
//!   deployment modes discussed in Section II-A.
//! * [`chronology`] — validation utilities for chronological-order
//!   invariants.
//! * [`sharded`] — the vertex-partitioned neighbor table and the
//!   epoch-barrier commit gate used by the streaming pipeline (`tgnn-serve`).

pub mod batching;
pub mod chronology;
pub mod event;
pub mod graph;
pub mod neighbor_table;
pub mod sampler;
pub mod sharded;

pub use event::{EventBatch, InteractionEvent};
pub use graph::TemporalGraph;
pub use neighbor_table::{NeighborEntry, NeighborTable};
pub use sampler::{FifoSampler, ScanSampler, TemporalSampler};
pub use sharded::{EpochGate, ShardedNeighborTable};

/// Node identifier.  `u32` keeps the vertex tables compact (the paper's
/// datasets have at most a few hundred thousand vertices).
pub type NodeId = u32;

/// Edge identifier indexing into the edge-feature table.
pub type EdgeId = u32;

/// Timestamps are seconds (fractional allowed) since the start of the trace,
/// exactly as in the JODIE datasets the paper uses.
pub type Timestamp = f64;
