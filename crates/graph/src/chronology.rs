//! Chronological-order validation.
//!
//! The correctness of memory-based TGNN inference hinges on vertex memory and
//! cached messages being updated in event order (the hardware Updater exists
//! to guarantee exactly this, Section IV-B).  This module provides the
//! checks used by tests and by the simulator to assert that property.

use crate::{InteractionEvent, NodeId, Timestamp};
use std::collections::HashMap;

/// Returns `true` if the event slice is sorted by timestamp (ties allowed).
pub fn is_chronological(events: &[InteractionEvent]) -> bool {
    events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp)
}

/// Returns the index of the first out-of-order event, if any.
pub fn first_violation(events: &[InteractionEvent]) -> Option<usize> {
    events
        .windows(2)
        .position(|w| w[0].timestamp > w[1].timestamp)
        .map(|i| i + 1)
}

/// Tracks, per vertex, the timestamp of the last committed update and rejects
/// regressions.  The accelerator simulator records every vertex-memory
/// write-back through a `CommitLog`, and the integration tests assert that
/// the log never observed a violation — the software analogue of the
/// chronological guarantee the hardware Updater provides.
#[derive(Clone, Debug, Default)]
pub struct CommitLog {
    last_commit: HashMap<NodeId, Timestamp>,
    commits: usize,
    violations: usize,
}

impl CommitLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a vertex-state commit at `t`.  Returns `false` (and counts a
    /// violation) if `t` is earlier than a previously committed update for
    /// the same vertex.
    pub fn commit(&mut self, v: NodeId, t: Timestamp) -> bool {
        self.commits += 1;
        match self.last_commit.get(&v) {
            Some(&prev) if t < prev => {
                self.violations += 1;
                false
            }
            _ => {
                self.last_commit.insert(v, t);
                true
            }
        }
    }

    /// Total number of commits recorded.
    pub fn commits(&self) -> usize {
        self.commits
    }

    /// Number of out-of-order commits observed.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// True when no violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Timestamp of the last commit for a vertex.
    pub fn last_commit_time(&self, v: NodeId) -> Option<Timestamp> {
        self.last_commit.get(&v).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Timestamp) -> InteractionEvent {
        InteractionEvent::new(0, 1, 0, t)
    }

    #[test]
    fn detects_order_and_violations() {
        assert!(is_chronological(&[ev(1.0), ev(1.0), ev(2.0)]));
        assert!(!is_chronological(&[ev(2.0), ev(1.0)]));
        assert_eq!(first_violation(&[ev(1.0), ev(3.0), ev(2.0)]), Some(2));
        assert_eq!(first_violation(&[ev(1.0), ev(2.0)]), None);
        assert!(is_chronological(&[]));
    }

    #[test]
    fn commit_log_accepts_monotone_updates() {
        let mut log = CommitLog::new();
        assert!(log.commit(3, 1.0));
        assert!(log.commit(3, 1.0)); // equal timestamps allowed (same batch)
        assert!(log.commit(3, 2.0));
        assert!(log.commit(4, 0.5)); // other vertices independent
        assert!(log.is_clean());
        assert_eq!(log.commits(), 4);
        assert_eq!(log.last_commit_time(3), Some(2.0));
    }

    #[test]
    fn commit_log_flags_regressions() {
        let mut log = CommitLog::new();
        assert!(log.commit(1, 5.0));
        assert!(!log.commit(1, 4.0));
        assert_eq!(log.violations(), 1);
        assert!(!log.is_clean());
        // The violating commit does not move the clock backwards.
        assert_eq!(log.last_commit_time(1), Some(5.0));
    }
}
