//! Vertex-partitioned (sharded) state with an epoch-barrier commit protocol.
//!
//! The streaming pipeline (`tgnn-serve`) runs neighbor sampling, memory
//! update, GNN compute, and state write-back as separate workers, so the
//! shared vertex state must be safely readable by stage *k+1* while stage
//! *k*'s writes are still being committed.  Following the multi-queue
//! dataflow designs the paper's FPGA pipeline and FlowGNN use in hardware,
//! the state is partitioned into `N` shards by `node_id % N`:
//!
//! * every shard is protected by its own lock, so the sampler can read shard
//!   `a` while the updater writes shard `b`;
//! * an [`EpochGate`] tracks, per shard, the highest batch (epoch) whose
//!   writes have been fully committed.  A reader that needs batch-`k`
//!   semantics waits until the shards it touches have committed epoch `k`,
//!   which reproduces the serial engine's chronological ordering exactly —
//!   this is the software analogue of the hardware Updater's guarantee.
//!
//! This module provides the gate and the sharded Vertex Neighbor Table; the
//! sharded vertex memory lives in `tgnn-core` next to `NodeMemory`
//! (`tgnn_core::memory` — not a dependency of this crate, so no intra-doc
//! link).

use crate::neighbor_table::{NeighborEntry, NeighborTable};
use crate::{InteractionEvent, NodeId, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Per-shard committed-epoch watermarks with blocking waits.
///
/// Epochs are the 1-based batch sequence numbers of the stream; a fresh gate
/// reports epoch 0 ("nothing committed") for every shard.  Writers bump a
/// shard's watermark with [`EpochGate::commit`] after releasing the shard's
/// data lock; readers block in [`EpochGate::wait_for`] until the watermark
/// reaches the epoch whose state they need.
#[derive(Debug)]
pub struct EpochGate {
    committed: Vec<AtomicU64>,
    poisoned: std::sync::atomic::AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl EpochGate {
    /// Creates a gate for `num_shards` shards, all at epoch 0.
    pub fn new(num_shards: usize) -> Self {
        Self {
            committed: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of shards tracked.
    pub fn num_shards(&self) -> usize {
        self.committed.len()
    }

    /// The highest fully committed epoch of a shard.
    pub fn committed(&self, shard: usize) -> u64 {
        self.committed[shard].load(Ordering::Acquire)
    }

    /// Locks the coordination mutex, recovering from std mutex poisoning: a
    /// waiter panics *while holding the guard* when the gate is poisoned
    /// (that is the designed unwind path), and the gate's own `poisoned`
    /// flag — not the std mutex state — carries the liveness information.
    /// Recovering keeps `poison()` callable from destructors during that
    /// unwind, where a second panic would abort the process.
    fn lock_recovered(&self) -> std::sync::MutexGuard<'_, ()> {
        self.lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks `epoch` committed for `shard` and wakes waiting readers.
    ///
    /// # Panics
    /// Panics if the watermark would move backwards — epochs must be
    /// committed in order.
    pub fn commit(&self, shard: usize, epoch: u64) {
        let guard = self.lock_recovered();
        let prev = self.committed[shard].swap(epoch, Ordering::Release);
        assert!(
            prev <= epoch,
            "EpochGate: shard {shard} committed epoch {epoch} after {prev}"
        );
        drop(guard);
        self.cv.notify_all();
    }

    /// Marks the gate dead and wakes every waiter: the committing side is
    /// gone, so pending epochs will never arrive.  Subsequent or woken
    /// [`Self::wait_for`] calls panic instead of blocking forever — this is
    /// what lets a pipeline unwind cleanly when one of its workers dies.
    /// Idempotent and safe to call from destructors mid-unwind.
    pub fn poison(&self) {
        let _guard = self.lock_recovered();
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Release);
        self.cv.notify_all();
    }

    /// True once [`Self::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Blocks until `shard` has committed at least `epoch`.
    ///
    /// # Panics
    /// Panics if the gate is (or becomes) poisoned before the epoch commits.
    pub fn wait_for(&self, shard: usize, epoch: u64) {
        if self.committed[shard].load(Ordering::Acquire) >= epoch {
            return;
        }
        let mut guard = self.lock_recovered();
        while self.committed[shard].load(Ordering::Acquire) < epoch {
            assert!(
                !self.is_poisoned(),
                "EpochGate: poisoned while waiting for shard {shard} epoch {epoch} — \
                 the committing worker died"
            );
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until every shard whose bit is set in `mask` has committed at
    /// least `epoch` (`mask[s]` corresponds to shard `s`).
    pub fn wait_for_mask(&self, mask: &[bool], epoch: u64) {
        for (shard, &needed) in mask.iter().enumerate() {
            if needed {
                self.wait_for(shard, epoch);
            }
        }
    }
}

/// Maps a vertex to its shard under the `node_id % N` partition.
#[inline]
pub fn shard_of(v: NodeId, num_shards: usize) -> usize {
    (v as usize) % num_shards
}

/// Local row index of a vertex inside its shard.
#[inline]
pub fn local_index(v: NodeId, num_shards: usize) -> usize {
    (v as usize) / num_shards
}

/// Number of vertices a shard owns under the modulo partition.
pub fn shard_len(num_nodes: usize, num_shards: usize, shard: usize) -> usize {
    if shard >= num_nodes {
        0
    } else {
        (num_nodes - shard).div_ceil(num_shards)
    }
}

/// The Vertex Neighbor Table partitioned into `N` independently locked
/// shards, with an [`EpochGate`] tracking which batch's interactions each
/// shard has absorbed.
///
/// Invariants (asserted by `check_invariants` and the serve-crate property
/// tests):
/// * vertex `v` lives in shard `v % N` at local row `v / N` — shards never
///   share a vertex;
/// * within a shard, every per-vertex FIFO is chronologically ordered and
///   within capacity (inherited from [`NeighborTable`]);
/// * shard `s` at gate epoch `k` contains exactly the interactions of batches
///   `1..=k` whose endpoint lies in shard `s` — so a sampler that waits for
///   epoch `k` observes the same table state the serial engine would have
///   after processing batch `k`.
#[derive(Debug)]
pub struct ShardedNeighborTable {
    shards: Vec<Mutex<NeighborTable>>,
    gate: EpochGate,
    num_shards: usize,
    num_nodes: usize,
}

impl ShardedNeighborTable {
    /// Creates an empty sharded table for `num_nodes` vertices with
    /// per-vertex capacity `mr` and `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or `capacity == 0`.
    pub fn new(num_nodes: usize, capacity: usize, num_shards: usize) -> Self {
        assert!(
            num_shards > 0,
            "ShardedNeighborTable: need at least 1 shard"
        );
        let shards = (0..num_shards)
            .map(|s| {
                Mutex::new(NeighborTable::new(
                    shard_len(num_nodes, num_shards, s),
                    capacity,
                ))
            })
            .collect();
        Self {
            shards,
            gate: EpochGate::new(num_shards),
            num_shards,
            num_nodes,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of vertices tracked across all shards.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The epoch gate readers synchronise on.
    pub fn gate(&self) -> &EpochGate {
        &self.gate
    }

    /// Samples up to `k` neighbors of `v` with timestamp strictly before `t`,
    /// most recent first, appending to `out`.  Bit-identical to
    /// `FifoSampler::sample_into` on an unsharded table maintained over the
    /// same event prefix.  The caller must have waited for `v`'s shard to
    /// reach the epoch whose table state it needs.
    pub fn sample_into(&self, v: NodeId, t: Timestamp, k: usize, out: &mut Vec<NeighborEntry>) {
        let shard = self.shards[shard_of(v, self.num_shards)].lock().unwrap();
        out.extend(
            shard
                .iter_recent(local_index(v, self.num_shards) as NodeId)
                .filter(|e| e.timestamp < t)
                .take(k)
                .copied(),
        );
    }

    /// Commits one batch (epoch) of interactions: every shard absorbs the
    /// endpoints it owns, in event order (src endpoint before dst, as
    /// [`NeighborTable::record_interaction`] does), then the shard's epoch
    /// watermark is bumped — including shards the batch does not touch, so
    /// waiters never stall on idle shards.
    ///
    /// Epochs must be committed in increasing order (enforced by the gate).
    pub fn commit_epoch(&self, epoch: u64, events: &[InteractionEvent]) {
        self.commit_epoch_with(epoch, events, |_, _| {});
    }

    /// [`Self::commit_epoch`] with a per-shard observer: after shard `s`
    /// absorbs its endpoints — still under its lock, *before* its epoch
    /// watermark is bumped — `observe(s, &shard)` runs.  Readers wait on the
    /// gate for this epoch before touching the shard, so the observer sees
    /// exactly the post-epoch shard image; the durability layer captures
    /// snapshot payloads here without pausing the pipeline.
    pub fn commit_epoch_with(
        &self,
        epoch: u64,
        events: &[InteractionEvent],
        mut observe: impl FnMut(usize, &NeighborTable),
    ) {
        for s in 0..self.num_shards {
            {
                let mut shard = self.shards[s].lock().unwrap();
                for e in events {
                    if shard_of(e.src, self.num_shards) == s {
                        shard.push(
                            local_index(e.src, self.num_shards) as NodeId,
                            NeighborEntry {
                                neighbor: e.dst,
                                edge_id: e.edge_id,
                                timestamp: e.timestamp,
                            },
                        );
                    }
                    if shard_of(e.dst, self.num_shards) == s {
                        shard.push(
                            local_index(e.dst, self.num_shards) as NodeId,
                            NeighborEntry {
                                neighbor: e.src,
                                edge_id: e.edge_id,
                                timestamp: e.timestamp,
                            },
                        );
                    }
                }
                observe(s, &shard);
            }
            self.gate.commit(s, epoch);
        }
    }

    /// Replaces one shard's entire state (recovery restore path).
    ///
    /// # Panics
    /// Panics if the replacement's node count or capacity does not match the
    /// shard's.
    pub fn restore_shard(&self, shard: usize, state: NeighborTable) {
        let mut guard = self.shards[shard].lock().unwrap();
        assert_eq!(
            guard.num_nodes(),
            state.num_nodes(),
            "restore_shard: node count mismatch for shard {shard}"
        );
        assert_eq!(
            guard.capacity(),
            state.capacity(),
            "restore_shard: capacity mismatch for shard {shard}"
        );
        *guard = state;
    }

    /// Current number of stored neighbors for `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.shards[shard_of(v, self.num_shards)]
            .lock()
            .unwrap()
            .degree(local_index(v, self.num_shards) as NodeId)
    }

    /// Checks every shard's FIFO invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (s, shard) in self.shards.iter().enumerate() {
            shard
                .lock()
                .unwrap()
                .check_invariants()
                .map_err(|e| format!("shard {s}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{FifoSampler, TemporalSampler};
    use std::sync::Arc;

    fn events(n: usize, nodes: u32) -> Vec<InteractionEvent> {
        (0..n)
            .map(|i| {
                let src = (i as u32 * 7 + 1) % nodes;
                let mut dst = (i as u32 * 13 + 3) % nodes;
                if dst == src {
                    dst = (dst + 1) % nodes;
                }
                InteractionEvent::new(src, dst, i as u32, i as f64 * 0.25)
            })
            .collect()
    }

    #[test]
    fn partition_helpers_cover_all_vertices_once() {
        let num_nodes = 23;
        for num_shards in [1, 2, 4, 7] {
            let mut seen = vec![0usize; num_shards];
            for v in 0..num_nodes as u32 {
                let s = shard_of(v, num_shards);
                assert!(local_index(v, num_shards) < shard_len(num_nodes, num_shards, s));
                seen[s] += 1;
            }
            let total: usize = (0..num_shards)
                .map(|s| shard_len(num_nodes, num_shards, s))
                .sum();
            assert_eq!(total, num_nodes);
            for (s, &count) in seen.iter().enumerate() {
                assert_eq!(count, shard_len(num_nodes, num_shards, s));
            }
        }
    }

    #[test]
    fn sharded_sampling_matches_fifo_sampler_at_every_epoch() {
        let nodes = 17u32;
        let evs = events(240, nodes);
        for num_shards in [1usize, 2, 4, 5] {
            let sharded = ShardedNeighborTable::new(nodes as usize, 6, num_shards);
            let mut fifo = FifoSampler::new(nodes as usize, 6);
            for (epoch, chunk) in evs.chunks(30).enumerate() {
                sharded.commit_epoch(epoch as u64 + 1, chunk);
                for e in chunk {
                    fifo.observe(e);
                }
                let t = chunk.last().unwrap().timestamp + 0.1;
                let mut got = Vec::new();
                for v in 0..nodes {
                    got.clear();
                    sharded.sample_into(v, t, 4, &mut got);
                    assert_eq!(got, fifo.sample(v, t, 4), "shards={num_shards} vertex {v}");
                }
            }
            assert!(sharded.check_invariants().is_ok());
        }
    }

    #[test]
    fn gate_waits_until_commit() {
        let gate = EpochGate::new(2);
        assert_eq!(gate.committed(0), 0);
        gate.wait_for(0, 0); // trivially satisfied
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                gate.wait_for(1, 3);
                gate.committed(1)
            });
            for epoch in 1..=3 {
                gate.commit(1, epoch);
            }
            assert!(waiter.join().unwrap() >= 3);
        });
        gate.wait_for_mask(&[false, true], 3);
    }

    #[test]
    #[should_panic(expected = "committed epoch")]
    fn gate_rejects_backwards_commits() {
        let gate = EpochGate::new(1);
        gate.commit(0, 2);
        gate.commit(0, 1);
    }

    #[test]
    fn poisoned_gate_wakes_and_fails_waiters() {
        let gate = Arc::new(EpochGate::new(1));
        assert!(!gate.is_poisoned());
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    gate.wait_for(0, 5);
                }))
                .is_err()
            })
        };
        // Give the waiter time to actually block, then kill the gate.
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.poison();
        assert!(waiter.join().unwrap(), "poison must unblock + panic waiter");
        // Already-satisfied waits stay fine; blocking ones fail fast.
        gate.wait_for(0, 0);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| gate.wait_for(0, 1))).is_err()
        );
    }
}
