//! The Vertex Neighbor Table: per-vertex FIFO of the most recent `mr`
//! neighbors.
//!
//! The paper replaces the software temporal sampler with "an on-chip FIFO
//! based hardware sampler": each vertex keeps only its `mr` most recent
//! temporal neighbors (neighbor index, edge index, timestamp), appended as
//! new edges arrive and evicting the oldest entry when full (Section IV-A,
//! "Vertex Neighbor Table", and line 12–14 of Algorithm 1).  Sampling the
//! supporting temporal neighbors of a vertex then degenerates to reading this
//! small fixed-size table.

use crate::{EdgeId, NodeId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One row of a vertex's neighbor list.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// The neighbor vertex.
    pub neighbor: NodeId,
    /// The interaction edge that created this entry.
    pub edge_id: EdgeId,
    /// Timestamp of that interaction.
    pub timestamp: Timestamp,
}

/// Most-recent-`mr` neighbor table for every vertex.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NeighborTable {
    capacity: usize,
    entries: Vec<VecDeque<NeighborEntry>>,
}

impl NeighborTable {
    /// Creates an empty table for `num_nodes` vertices, keeping at most
    /// `capacity` (= `mr`) neighbors per vertex.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(num_nodes: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "NeighborTable: capacity must be positive");
        Self {
            capacity,
            entries: vec![VecDeque::with_capacity(capacity); num_nodes],
        }
    }

    /// The per-vertex capacity `mr`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of vertices tracked.
    pub fn num_nodes(&self) -> usize {
        self.entries.len()
    }

    /// Records a new interaction `src —(edge, t)— dst`, updating both
    /// endpoints' neighbor lists (lines 12–14 of Algorithm 1:
    /// `UpdateNeighbor(N(u), v)` and `UpdateNeighbor(N(v), u)`).
    pub fn record_interaction(
        &mut self,
        src: NodeId,
        dst: NodeId,
        edge_id: EdgeId,
        timestamp: Timestamp,
    ) {
        self.push(
            src,
            NeighborEntry {
                neighbor: dst,
                edge_id,
                timestamp,
            },
        );
        self.push(
            dst,
            NeighborEntry {
                neighbor: src,
                edge_id,
                timestamp,
            },
        );
    }

    /// Appends one entry to a single vertex's FIFO, evicting the oldest if
    /// the vertex is already at capacity.
    pub fn push(&mut self, v: NodeId, entry: NeighborEntry) {
        let q = &mut self.entries[v as usize];
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(entry);
    }

    /// The stored neighbors of `v`, oldest first.  At most `capacity`
    /// entries.
    pub fn neighbors(&self, v: NodeId) -> Vec<NeighborEntry> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.neighbors_into(v, &mut out);
        out
    }

    /// Appends the stored neighbors of `v` (oldest first) to `out` without
    /// allocating — the hot-path variant of [`Self::neighbors`].
    pub fn neighbors_into(&self, v: NodeId, out: &mut Vec<NeighborEntry>) {
        out.extend(self.entries[v as usize].iter().copied());
    }

    /// The `k` most recent neighbors of `v`, most recent first.
    pub fn most_recent(&self, v: NodeId, k: usize) -> Vec<NeighborEntry> {
        let mut out = Vec::with_capacity(k.min(self.degree(v)));
        self.most_recent_into(v, k, &mut out);
        out
    }

    /// Appends the `k` most recent neighbors of `v` (most recent first) to
    /// `out` without allocating — the hot-path variant of
    /// [`Self::most_recent`].
    pub fn most_recent_into(&self, v: NodeId, k: usize, out: &mut Vec<NeighborEntry>) {
        out.extend(self.iter_recent(v).take(k).copied());
    }

    /// Iterates the stored neighbors of `v`, most recent first, borrowing the
    /// FIFO storage directly (no per-call `Vec`).
    pub fn iter_recent(&self, v: NodeId) -> impl Iterator<Item = &NeighborEntry> {
        self.entries[v as usize].iter().rev()
    }

    /// Current number of stored neighbors for `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.entries[v as usize].len()
    }

    /// Timestamp of the most recent neighbor of `v`, if any.
    pub fn last_interaction_time(&self, v: NodeId) -> Option<Timestamp> {
        self.entries[v as usize].back().map(|e| e.timestamp)
    }

    /// Clears all entries (used when replaying a trace from the start).
    pub fn reset(&mut self) {
        for q in &mut self.entries {
            q.clear();
        }
    }

    /// Checks the internal invariant that every vertex's FIFO is
    /// chronologically ordered and within capacity.  Used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (v, q) in self.entries.iter().enumerate() {
            if q.len() > self.capacity {
                return Err(format!("vertex {v} exceeds capacity"));
            }
            let mut prev = f64::NEG_INFINITY;
            for e in q {
                if e.timestamp < prev {
                    return Err(format!("vertex {v} has out-of-order neighbor timestamps"));
                }
                prev = e.timestamp;
            }
        }
        Ok(())
    }

    /// Approximate external-memory footprint in bytes of the table given a
    /// data word size, matching the paper's accounting of the Vertex
    /// Neighbor Table stored in DDR (each entry holds a neighbor index, an
    /// edge index, and a timestamp).
    pub fn memory_bytes(&self, bytes_per_word: usize) -> usize {
        self.num_nodes() * self.capacity * 3 * bytes_per_word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_when_full() {
        let mut t = NeighborTable::new(2, 3);
        for i in 0..5u32 {
            t.push(
                0,
                NeighborEntry {
                    neighbor: i,
                    edge_id: i,
                    timestamp: i as f64,
                },
            );
        }
        let n = t.neighbors(0);
        assert_eq!(n.len(), 3);
        assert_eq!(n[0].neighbor, 2);
        assert_eq!(n[2].neighbor, 4);
        assert_eq!(t.degree(0), 3);
        assert_eq!(t.degree(1), 0);
    }

    #[test]
    fn record_interaction_updates_both_endpoints() {
        let mut t = NeighborTable::new(4, 10);
        t.record_interaction(1, 3, 7, 2.5);
        assert_eq!(t.neighbors(1)[0].neighbor, 3);
        assert_eq!(t.neighbors(3)[0].neighbor, 1);
        assert_eq!(t.neighbors(3)[0].edge_id, 7);
        assert_eq!(t.last_interaction_time(1), Some(2.5));
        assert_eq!(t.last_interaction_time(0), None);
    }

    #[test]
    fn most_recent_returns_reverse_chronological() {
        let mut t = NeighborTable::new(1, 10);
        for i in 0..6u32 {
            t.push(
                0,
                NeighborEntry {
                    neighbor: i,
                    edge_id: i,
                    timestamp: i as f64,
                },
            );
        }
        let recent = t.most_recent(0, 3);
        let ids: Vec<u32> = recent.iter().map(|e| e.neighbor).collect();
        assert_eq!(ids, vec![5, 4, 3]);
        // Asking for more than stored returns everything.
        assert_eq!(t.most_recent(0, 100).len(), 6);
    }

    #[test]
    fn into_variants_match_allocating_reads() {
        let mut t = NeighborTable::new(3, 4);
        for i in 0..9u32 {
            t.record_interaction(i % 3, (i + 1) % 3, i, i as f64);
        }
        let mut buf = Vec::new();
        for v in 0..3u32 {
            buf.clear();
            t.neighbors_into(v, &mut buf);
            assert_eq!(buf, t.neighbors(v));
            buf.clear();
            t.most_recent_into(v, 2, &mut buf);
            assert_eq!(buf, t.most_recent(v, 2));
            let recent: Vec<NeighborEntry> = t.iter_recent(v).copied().collect();
            let mut oldest_first = t.neighbors(v);
            oldest_first.reverse();
            assert_eq!(recent, oldest_first);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = NeighborTable::new(2, 4);
        t.record_interaction(0, 1, 0, 1.0);
        t.reset();
        assert_eq!(t.degree(0), 0);
        assert_eq!(t.degree(1), 0);
    }

    #[test]
    fn invariants_hold_after_random_usage() {
        let mut t = NeighborTable::new(8, 5);
        for i in 0..100u32 {
            t.record_interaction(i % 8, (i * 3 + 1) % 8, i, i as f64 * 0.5);
        }
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn memory_accounting() {
        let t = NeighborTable::new(100, 10);
        assert_eq!(t.memory_bytes(4), 100 * 10 * 3 * 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = NeighborTable::new(1, 0);
    }
}
