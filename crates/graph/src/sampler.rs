//! Temporal neighbor samplers.
//!
//! The TGN baseline samples, for every vertex in a batch, its `k` most recent
//! temporal neighbors strictly before the query time.  The paper contrasts
//! two implementations:
//!
//! * the software sampler, which scans the (indexed) historical edge list —
//!   modelled here by [`ScanSampler`]; and
//! * the FIFO-based hardware sampler, which just reads the most-recent-`mr`
//!   Vertex Neighbor Table — modelled by [`FifoSampler`].
//!
//! When `k <= mr` and the neighbor table has been maintained over the same
//! prefix of events, the two produce identical samples; a property test in
//! this module checks that equivalence, which is the correctness argument for
//! the hardware substitution.

use crate::neighbor_table::{NeighborEntry, NeighborTable};
use crate::{InteractionEvent, NodeId, Timestamp};

/// A temporal neighbor sampler: returns up to `k` supporting neighbors of
/// vertex `v` with interaction time strictly before `t`, most recent first.
pub trait TemporalSampler {
    /// Appends the supporting temporal neighbors of `v` at query time `t` to
    /// `out` — the allocation-free primitive the batch hot path uses (the
    /// engine samples a whole batch into one flat arena).
    fn sample_into(&self, v: NodeId, t: Timestamp, k: usize, out: &mut Vec<NeighborEntry>);

    /// Samples the supporting temporal neighbors of `v` at query time `t`
    /// into a fresh `Vec` (convenience wrapper over [`Self::sample_into`]).
    fn sample(&self, v: NodeId, t: Timestamp, k: usize) -> Vec<NeighborEntry> {
        let mut out = Vec::with_capacity(k);
        self.sample_into(v, t, k, &mut out);
        out
    }
}

/// Reference sampler that keeps the full interaction history per vertex and
/// scans it backwards at query time.
#[derive(Clone, Debug, Default)]
pub struct ScanSampler {
    /// Per-vertex full history, chronologically ordered.
    history: Vec<Vec<NeighborEntry>>,
}

impl ScanSampler {
    /// Creates an empty sampler for `num_nodes` vertices.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            history: vec![Vec::new(); num_nodes],
        }
    }

    /// Builds a sampler pre-populated with a chronological event prefix.
    pub fn from_events(num_nodes: usize, events: &[InteractionEvent]) -> Self {
        let mut s = Self::new(num_nodes);
        for e in events {
            s.observe(e);
        }
        s
    }

    /// Ingests one new interaction (must be chronologically after all
    /// previously observed ones; checked in debug builds).
    pub fn observe(&mut self, e: &InteractionEvent) {
        debug_assert!(
            self.history[e.src as usize]
                .last()
                .is_none_or(|prev| prev.timestamp <= e.timestamp),
            "ScanSampler: out-of-order event"
        );
        self.history[e.src as usize].push(NeighborEntry {
            neighbor: e.dst,
            edge_id: e.edge_id,
            timestamp: e.timestamp,
        });
        self.history[e.dst as usize].push(NeighborEntry {
            neighbor: e.src,
            edge_id: e.edge_id,
            timestamp: e.timestamp,
        });
    }

    /// Total number of stored history entries (2 per observed event).
    pub fn total_entries(&self) -> usize {
        self.history.iter().map(|h| h.len()).sum()
    }
}

impl TemporalSampler for ScanSampler {
    fn sample_into(&self, v: NodeId, t: Timestamp, k: usize, out: &mut Vec<NeighborEntry>) {
        let hist = &self.history[v as usize];
        // Binary search for the first entry with timestamp >= t, then take
        // the k entries before it (most recent first).
        let cut = hist.partition_point(|e| e.timestamp < t);
        out.extend(hist[..cut].iter().rev().take(k).copied());
    }
}

/// FIFO sampler reading the most-recent-`mr` neighbor table.
///
/// Unlike [`ScanSampler`] it cannot look arbitrarily far into the past: only
/// the last `mr` interactions per vertex are retained, exactly like the
/// hardware Vertex Neighbor Table.
#[derive(Clone, Debug)]
pub struct FifoSampler {
    table: NeighborTable,
}

impl FifoSampler {
    /// Creates a FIFO sampler with per-vertex capacity `mr`.
    pub fn new(num_nodes: usize, mr: usize) -> Self {
        Self {
            table: NeighborTable::new(num_nodes, mr),
        }
    }

    /// Builds a sampler pre-populated with a chronological event prefix.
    pub fn from_events(num_nodes: usize, mr: usize, events: &[InteractionEvent]) -> Self {
        let mut s = Self::new(num_nodes, mr);
        for e in events {
            s.observe(e);
        }
        s
    }

    /// Ingests one new interaction.
    pub fn observe(&mut self, e: &InteractionEvent) {
        self.table
            .record_interaction(e.src, e.dst, e.edge_id, e.timestamp);
    }

    /// Read access to the underlying neighbor table.
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }
}

impl TemporalSampler for FifoSampler {
    fn sample_into(&self, v: NodeId, t: Timestamp, k: usize, out: &mut Vec<NeighborEntry>) {
        out.extend(
            self.table
                .iter_recent(v)
                .filter(|e| e.timestamp < t)
                .take(k)
                .copied(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_tensor::TensorRng;

    fn random_events(n: usize, nodes: u32, seed: u64) -> Vec<InteractionEvent> {
        let mut rng = TensorRng::new(seed);
        let mut t = 0.0f64;
        (0..n)
            .map(|i| {
                t += rng.uniform(0.1, 2.0) as f64;
                let src = rng.index(nodes as usize) as u32;
                let mut dst = rng.index(nodes as usize) as u32;
                if dst == src {
                    dst = (dst + 1) % nodes;
                }
                InteractionEvent::new(src, dst, i as u32, t)
            })
            .collect()
    }

    #[test]
    fn scan_sampler_returns_most_recent_first_and_respects_time() {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 1.0),
            InteractionEvent::new(0, 2, 1, 2.0),
            InteractionEvent::new(0, 3, 2, 3.0),
        ];
        let s = ScanSampler::from_events(4, &events);
        let sample = s.sample(0, 2.5, 10);
        let ids: Vec<u32> = sample.iter().map(|e| e.neighbor).collect();
        assert_eq!(ids, vec![2, 1]); // event at t=3.0 excluded (>= query time)
                                     // strictly-before semantics: an event exactly at the query time is excluded
        let sample_at_2 = s.sample(0, 2.0, 10);
        assert_eq!(sample_at_2.len(), 1);
        assert_eq!(sample_at_2[0].neighbor, 1);
    }

    #[test]
    fn scan_sampler_truncates_to_k() {
        let events = random_events(200, 5, 3);
        let s = ScanSampler::from_events(5, &events);
        let sample = s.sample(2, f64::INFINITY, 7);
        assert!(sample.len() <= 7);
        // most-recent-first ordering
        assert!(sample.windows(2).all(|w| w[0].timestamp >= w[1].timestamp));
    }

    #[test]
    fn fifo_equals_scan_when_k_le_mr() {
        let nodes = 12u32;
        let events = random_events(500, nodes, 11);
        let mr = 10;
        let k = 10;
        let scan = ScanSampler::from_events(nodes as usize, &events);
        let fifo = FifoSampler::from_events(nodes as usize, mr, &events);
        let query_time = events.last().unwrap().timestamp + 1.0;
        for v in 0..nodes {
            let a = scan.sample(v, query_time, k);
            let b = fifo.sample(v, query_time, k);
            assert_eq!(a, b, "sampler mismatch for vertex {v}");
        }
    }

    #[test]
    fn fifo_smaller_k_is_prefix_of_larger_k() {
        let events = random_events(300, 8, 17);
        let fifo = FifoSampler::from_events(8, 10, &events);
        let t = f64::INFINITY;
        for v in 0..8 {
            let big = fifo.sample(v, t, 6);
            let small = fifo.sample(v, t, 2);
            assert_eq!(&big[..small.len().min(big.len())], &small[..]);
        }
    }

    #[test]
    fn fifo_respects_query_time() {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 1.0),
            InteractionEvent::new(0, 2, 1, 5.0),
        ];
        let fifo = FifoSampler::from_events(3, 4, &events);
        let sample = fifo.sample(0, 3.0, 10);
        assert_eq!(sample.len(), 1);
        assert_eq!(sample[0].neighbor, 1);
    }

    #[test]
    fn sample_into_appends_and_matches_sample() {
        let events = random_events(300, 9, 29);
        let scan = ScanSampler::from_events(9, &events);
        let fifo = FifoSampler::from_events(9, 10, &events);
        let t = events[200].timestamp;
        let mut arena: Vec<NeighborEntry> = Vec::new();
        for v in 0..9u32 {
            let start = arena.len();
            fifo.sample_into(v, t, 5, &mut arena);
            assert_eq!(&arena[start..], &fifo.sample(v, t, 5)[..]);
            let mut scan_buf = vec![NeighborEntry {
                neighbor: 0,
                edge_id: 0,
                timestamp: -1.0,
            }];
            scan.sample_into(v, t, 5, &mut scan_buf);
            // `_into` appends without clobbering existing contents.
            assert_eq!(scan_buf[0].timestamp, -1.0);
            assert_eq!(&scan_buf[1..], &scan.sample(v, t, 5)[..]);
        }
    }

    #[test]
    fn scan_total_entries_counts_both_directions() {
        let events = random_events(50, 6, 23);
        let s = ScanSampler::from_events(6, &events);
        assert_eq!(s.total_entries(), 100);
    }
}
