//! Batch formation over the incoming edge stream.
//!
//! Section II-A of the paper: "TGNN-based systems usually operate on upcoming
//! graph signals in batches, formed either by fixed number of graph signals
//! or by the graph signals in fixed time windows."  Both policies are
//! provided here; the fixed-size policy drives the batch-size sweeps of
//! Fig. 5/6 and the fixed-window policy drives the "real-time inference every
//! 15 minutes" experiment (right-hand plots of Fig. 5).

use crate::{EventBatch, InteractionEvent, Timestamp};

/// Splits a chronological event stream into consecutive batches of at most
/// `batch_size` events.
///
/// # Panics
/// Panics if `batch_size == 0`.
pub fn fixed_size_batches(events: &[InteractionEvent], batch_size: usize) -> Vec<EventBatch> {
    assert!(
        batch_size > 0,
        "fixed_size_batches: batch_size must be positive"
    );
    events
        .chunks(batch_size)
        .map(|chunk| EventBatch::new(chunk.to_vec()))
        .collect()
}

/// Splits a chronological event stream into fixed-duration time windows of
/// length `window` (e.g. 15 minutes = 900 seconds).  Windows are aligned to
/// the timestamp of the first event; empty windows are included so that the
/// latency series has one point per wall-clock interval, matching the
/// real-time plots in Fig. 5.
///
/// # Panics
/// Panics if `window <= 0`.
pub fn time_window_batches(events: &[InteractionEvent], window: Timestamp) -> Vec<EventBatch> {
    assert!(window > 0.0, "time_window_batches: window must be positive");
    if events.is_empty() {
        return Vec::new();
    }
    let start = events[0].timestamp;
    let end = events[events.len() - 1].timestamp;
    let num_windows = ((end - start) / window).floor() as usize + 1;
    let mut batches: Vec<Vec<InteractionEvent>> = vec![Vec::new(); num_windows];
    for e in events {
        let mut idx = ((e.timestamp - start) / window).floor() as usize;
        if idx >= num_windows {
            idx = num_windows - 1;
        }
        batches[idx].push(*e);
    }
    batches.into_iter().map(EventBatch::new).collect()
}

/// Statistics of a batch sequence, used to report the workload shape of the
/// real-time experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchStats {
    pub num_batches: usize,
    pub total_events: usize,
    pub min_batch: usize,
    pub max_batch: usize,
    pub mean_batch: f64,
    pub empty_batches: usize,
}

/// Computes [`BatchStats`] over a batch sequence.
pub fn batch_stats(batches: &[EventBatch]) -> BatchStats {
    let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
    let total: usize = sizes.iter().sum();
    BatchStats {
        num_batches: batches.len(),
        total_events: total,
        min_batch: sizes.iter().copied().min().unwrap_or(0),
        max_batch: sizes.iter().copied().max().unwrap_or(0),
        mean_batch: if batches.is_empty() {
            0.0
        } else {
            total as f64 / batches.len() as f64
        },
        empty_batches: sizes.iter().filter(|&&s| s == 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<InteractionEvent> {
        (0..n)
            .map(|i| {
                InteractionEvent::new((i % 5) as u32, ((i + 1) % 5) as u32, i as u32, i as f64)
            })
            .collect()
    }

    #[test]
    fn fixed_size_covers_all_events_in_order() {
        let events = stream(23);
        let batches = fixed_size_batches(&events, 10);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 10);
        assert_eq!(batches[2].len(), 3);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 23);
        // Chronology preserved across batch boundaries.
        assert!(batches[0].end_time().unwrap() <= batches[1].start_time().unwrap());
    }

    #[test]
    fn fixed_size_exact_multiple() {
        let batches = fixed_size_batches(&stream(20), 5);
        assert_eq!(batches.len(), 4);
        assert!(batches.iter().all(|b| b.len() == 5));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fixed_size_zero_rejected() {
        let _ = fixed_size_batches(&stream(3), 0);
    }

    #[test]
    fn time_windows_partition_events() {
        // Events at t = 0..9; window of 2.5 → windows [0,2.5), [2.5,5), [5,7.5), [7.5,10)
        let events = stream(10);
        let batches = time_window_batches(&events, 2.5);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].len(), 3); // t=0,1,2
        assert_eq!(batches[1].len(), 2); // t=3,4
        assert_eq!(batches[2].len(), 3); // t=5,6,7
        assert_eq!(batches[3].len(), 2); // t=8,9
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn time_windows_include_empty_intervals() {
        let events = vec![
            InteractionEvent::new(0, 1, 0, 0.0),
            InteractionEvent::new(1, 2, 1, 10.0),
        ];
        let batches = time_window_batches(&events, 2.0);
        assert_eq!(batches.len(), 6);
        let empties = batches.iter().filter(|b| b.is_empty()).count();
        assert_eq!(empties, 4);
    }

    #[test]
    fn time_windows_empty_stream() {
        assert!(time_window_batches(&[], 5.0).is_empty());
    }

    #[test]
    fn stats_summarise_sequence() {
        let events = stream(10);
        let batches = time_window_batches(&events, 2.5);
        let s = batch_stats(&batches);
        assert_eq!(s.num_batches, 4);
        assert_eq!(s.total_events, 10);
        assert_eq!(s.min_batch, 2);
        assert_eq!(s.max_batch, 3);
        assert!((s.mean_batch - 2.5).abs() < 1e-9);
        assert_eq!(s.empty_batches, 0);
    }
}
