//! Interaction events (graph signals) and batches.

use crate::{EdgeId, NodeId, Timestamp};
use serde::{Deserialize, Serialize};

/// A single graph signal: a new timestamped interaction edge
/// `e(src, dst, f_e, t_e)` as defined in Section IV-A of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InteractionEvent {
    /// Source vertex index.
    pub src: NodeId,
    /// Destination vertex index.
    pub dst: NodeId,
    /// Index into the edge-feature table (`fe`).
    pub edge_id: EdgeId,
    /// Event timestamp `t_e`.
    pub timestamp: Timestamp,
}

impl InteractionEvent {
    /// Convenience constructor.
    pub fn new(src: NodeId, dst: NodeId, edge_id: EdgeId, timestamp: Timestamp) -> Self {
        Self {
            src,
            dst,
            edge_id,
            timestamp,
        }
    }

    /// The two endpoints in `(src, dst)` order.
    pub fn endpoints(&self) -> [NodeId; 2] {
        [self.src, self.dst]
    }

    /// True if the event touches vertex `v`.
    pub fn involves(&self, v: NodeId) -> bool {
        self.src == v || self.dst == v
    }
}

/// A batch of chronologically ordered events processed in one forward pass
/// (one iteration of the outer loop of Algorithm 1).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventBatch {
    events: Vec<InteractionEvent>,
}

impl EventBatch {
    /// Wraps a vector of events.
    ///
    /// # Panics
    /// Panics (in debug builds) if the events are not sorted by timestamp:
    /// the paper's inference procedure assumes the incoming stream is
    /// chronological.
    pub fn new(events: Vec<InteractionEvent>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
            "EventBatch: events must be chronologically ordered"
        );
        Self { events }
    }

    /// Empty batch.
    pub fn empty() -> Self {
        Self { events: Vec::new() }
    }

    /// The events in the batch.
    pub fn events(&self) -> &[InteractionEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest timestamp in the batch (None if empty).
    pub fn start_time(&self) -> Option<Timestamp> {
        self.events.first().map(|e| e.timestamp)
    }

    /// Latest timestamp in the batch (None if empty).
    pub fn end_time(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.timestamp)
    }

    /// All vertices touched by the batch, deduplicated, in order of first
    /// appearance.  These are the vertices whose memory must be updated and
    /// whose embeddings the batch produces ({u} ∪ {v} in Algorithm 1).
    pub fn touched_vertices(&self) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            for v in e.endpoints() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Iterator over the events.
    pub fn iter(&self) -> impl Iterator<Item = &InteractionEvent> {
        self.events.iter()
    }
}

impl From<Vec<InteractionEvent>> for EventBatch {
    fn from(events: Vec<InteractionEvent>) -> Self {
        Self::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: NodeId, dst: NodeId, t: Timestamp) -> InteractionEvent {
        InteractionEvent::new(src, dst, 0, t)
    }

    #[test]
    fn event_accessors() {
        let e = InteractionEvent::new(3, 7, 11, 42.5);
        assert_eq!(e.endpoints(), [3, 7]);
        assert!(e.involves(3));
        assert!(e.involves(7));
        assert!(!e.involves(5));
    }

    #[test]
    fn batch_times_and_len() {
        let b = EventBatch::new(vec![ev(0, 1, 1.0), ev(1, 2, 2.0), ev(0, 2, 2.0)]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.start_time(), Some(1.0));
        assert_eq!(b.end_time(), Some(2.0));
        assert!(EventBatch::empty().is_empty());
        assert_eq!(EventBatch::empty().start_time(), None);
    }

    #[test]
    fn touched_vertices_dedup_preserves_order() {
        let b = EventBatch::new(vec![ev(5, 1, 1.0), ev(1, 5, 2.0), ev(2, 3, 3.0)]);
        assert_eq!(b.touched_vertices(), vec![5, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "chronologically ordered")]
    #[cfg(debug_assertions)]
    fn unordered_batch_panics_in_debug() {
        let _ = EventBatch::new(vec![ev(0, 1, 5.0), ev(1, 2, 1.0)]);
    }
}
