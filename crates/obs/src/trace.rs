//! Epoch-scoped causal traces and critical-path attribution.
//!
//! A [`TraceSlab`] is a fixed-size ring of per-epoch trace slots.  Pipeline
//! workers append timestamped *segments* — `(code, duration)` pairs whose
//! codes the caller defines (the serve crate maps them to pipeline phases:
//! ingress wait, seal wait, sample, memory, GNN, reorder barrier, WAL-sync
//! wait, delivery).  Recording is lock-free and allocation-free: one relaxed
//! `fetch_add` to claim a segment index plus one release store of a packed
//! word, so the hot path cost is comparable to a counter bump.  Slots are
//! keyed `epoch % capacity` and every write re-checks the slot's epoch
//! stamp, so a straggling writer for a long-evicted epoch is counted as a
//! conflict instead of corrupting a newer trace.
//!
//! [`CriticalPath`] aggregates finished traces into a *blame* breakdown:
//! which segment dominated each trace, and what fraction of the total
//! latency each segment code accounts for across the observed set — the
//! "p99 blame" table when fed tail exemplars only.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Maximum segments one trace slot can hold; later appends are dropped and
/// counted in [`TraceSlab::overflows`].
pub const MAX_TRACE_SEGMENTS: usize = 32;

// Packed segment word: valid (1 bit) | code (8 bits) | duration ns (55
// bits).  55 bits of nanoseconds is ~417 days, far beyond any latency the
// slab will ever see; the valid bit distinguishes a written segment from a
// never-written zero slot.
const DUR_BITS: u64 = 55;
const DUR_MASK: u64 = (1 << DUR_BITS) - 1;
const VALID_BIT: u64 = 1 << 63;

fn pack(code: u8, duration: Duration) -> u64 {
    let ns = (duration.as_nanos() as u64).min(DUR_MASK);
    VALID_BIT | ((code as u64) << DUR_BITS) | ns
}

fn unpack(word: u64) -> Option<TraceSegment> {
    if word & VALID_BIT == 0 {
        return None;
    }
    Some(TraceSegment {
        code: ((word >> DUR_BITS) & 0xFF) as u8,
        duration: Duration::from_nanos(word & DUR_MASK),
    })
}

/// One recorded segment of a trace: a caller-defined code plus the wall
/// time the traced epoch spent in that phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSegment {
    /// Caller-defined segment code (the serve crate's phase taxonomy).
    pub code: u8,
    /// Wall-clock duration attributed to this segment.
    pub duration: Duration,
}

/// A decoded snapshot of one epoch's trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceView {
    /// The epoch this trace belongs to.
    pub epoch: u64,
    /// Segments in recording order.
    pub segments: Vec<TraceSegment>,
}

impl TraceView {
    /// Sum of the durations of every segment matching `keep` — the
    /// conservation check sums only the *additive* codes (phases that tile
    /// the admit→deliver timeline without overlap).
    pub fn total_where(&self, keep: impl Fn(u8) -> bool) -> Duration {
        self.segments
            .iter()
            .filter(|s| keep(s.code))
            .map(|s| s.duration)
            .sum()
    }

    /// The longest segment matching `keep`, if any.
    pub fn dominant_where(&self, keep: impl Fn(u8) -> bool) -> Option<TraceSegment> {
        self.segments
            .iter()
            .filter(|s| keep(s.code))
            .max_by_key(|s| s.duration)
            .copied()
    }
}

struct TraceSlot {
    /// Epoch currently owning this slot; 0 = never claimed.
    epoch: AtomicU64,
    /// Segments appended so far (may exceed `MAX_TRACE_SEGMENTS`; reads
    /// clamp).
    len: AtomicUsize,
    segments: [AtomicU64; MAX_TRACE_SEGMENTS],
}

/// Lock-free ring of per-epoch traces.  Shared by `Arc`; all methods take
/// `&self`.
pub struct TraceSlab {
    slots: Box<[TraceSlot]>,
    begun: AtomicU64,
    conflicts: AtomicU64,
    overflows: AtomicU64,
}

impl std::fmt::Debug for TraceSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSlab")
            .field("capacity", &self.slots.len())
            .field("begun", &self.begun())
            .finish()
    }
}

impl TraceSlab {
    /// Creates a slab tracking the most recent `capacity` epochs (rounded
    /// up to at least 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots: Vec<TraceSlot> = (0..capacity)
            .map(|_| TraceSlot {
                epoch: AtomicU64::new(0),
                len: AtomicUsize::new(0),
                segments: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        TraceSlab {
            slots: slots.into_boxed_slice(),
            begun: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
        }
    }

    fn slot(&self, epoch: u64) -> &TraceSlot {
        &self.slots[(epoch % self.slots.len() as u64) as usize]
    }

    /// Claims the slot for `epoch`, evicting whatever older epoch held it.
    /// Epoch 0 is the "untraced" sentinel and is ignored.
    pub fn begin(&self, epoch: u64) {
        if epoch == 0 {
            return;
        }
        let slot = self.slot(epoch);
        // Invalidate, wipe, then publish the new epoch: a concurrent reader
        // of the evicted epoch sees the stamp change and rejects the slot.
        slot.epoch.store(0, Ordering::Release);
        slot.len.store(0, Ordering::Release);
        for s in &slot.segments {
            s.store(0, Ordering::Relaxed);
        }
        slot.epoch.store(epoch, Ordering::Release);
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends one segment to `epoch`'s trace.  A write for an epoch whose
    /// slot has been reclaimed is dropped and counted in
    /// [`conflicts`](Self::conflicts).
    #[inline]
    pub fn record(&self, epoch: u64, code: u8, duration: Duration) {
        if epoch == 0 {
            return;
        }
        let slot = self.slot(epoch);
        if slot.epoch.load(Ordering::Acquire) != epoch {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = slot.len.fetch_add(1, Ordering::AcqRel);
        if idx >= MAX_TRACE_SEGMENTS {
            self.overflows.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.segments[idx].store(pack(code, duration), Ordering::Release);
    }

    /// Decodes `epoch`'s trace, or `None` if its slot has been reclaimed
    /// (or never claimed).
    pub fn snapshot(&self, epoch: u64) -> Option<TraceView> {
        if epoch == 0 {
            return None;
        }
        let slot = self.slot(epoch);
        if slot.epoch.load(Ordering::Acquire) != epoch {
            return None;
        }
        let n = slot.len.load(Ordering::Acquire).min(MAX_TRACE_SEGMENTS);
        let segments: Vec<TraceSegment> = slot.segments[..n]
            .iter()
            .filter_map(|s| unpack(s.load(Ordering::Acquire)))
            .collect();
        // Re-validate: if the slot was reclaimed mid-read the segments may
        // mix epochs.
        if slot.epoch.load(Ordering::Acquire) != epoch {
            return None;
        }
        Some(TraceView { epoch, segments })
    }

    /// Decodes every live trace, sorted by epoch.
    pub fn dump(&self) -> Vec<TraceView> {
        let mut out: Vec<TraceView> = (0..self.slots.len())
            .filter_map(|i| {
                let e = self.slots[i].epoch.load(Ordering::Acquire);
                self.snapshot(e)
            })
            .collect();
        out.sort_unstable_by_key(|t| t.epoch);
        out
    }

    /// Ring capacity in epochs.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Traces ever begun (including evicted ones).
    pub fn begun(&self) -> u64 {
        self.begun.load(Ordering::Relaxed)
    }

    /// Segment writes dropped because their epoch's slot was reclaimed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Segment writes dropped because a trace exceeded
    /// [`MAX_TRACE_SEGMENTS`].
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }
}

/// Aggregated blame for one segment code across the traces a
/// [`CriticalPath`] has observed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Blame {
    /// The segment code.
    pub code: u8,
    /// Total latency attributed to this code across every observed trace.
    pub total: Duration,
    /// `total` as a fraction of the summed latency of all observed traces
    /// (0 when nothing was observed).
    pub fraction: f64,
    /// Number of observed traces in which this code was the dominant
    /// (longest) segment.
    pub dominant_in: usize,
}

/// Critical-path analyzer: feed it one trace at a time (pre-filtered to the
/// additive segment codes) and read back the per-code blame breakdown.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    totals: std::collections::BTreeMap<u8, (Duration, usize)>,
    traces: usize,
    grand_total: Duration,
}

impl CriticalPath {
    /// An empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one trace's segments into the aggregate.  Empty slices are
    /// ignored.
    pub fn observe(&mut self, segments: &[TraceSegment]) {
        if segments.is_empty() {
            return;
        }
        self.traces += 1;
        let dominant = segments
            .iter()
            .max_by_key(|s| s.duration)
            .map(|s| s.code)
            .unwrap();
        for s in segments {
            let entry = self.totals.entry(s.code).or_insert((Duration::ZERO, 0));
            entry.0 += s.duration;
            self.grand_total += s.duration;
        }
        self.totals.entry(dominant).or_insert((Duration::ZERO, 0)).1 += 1;
    }

    /// Number of traces observed so far.
    pub fn traces(&self) -> usize {
        self.traces
    }

    /// The blame table, sorted by descending latency fraction.
    pub fn blame(&self) -> Vec<Blame> {
        let denom = self.grand_total.as_secs_f64();
        let mut out: Vec<Blame> = self
            .totals
            .iter()
            .map(|(&code, &(total, dominant_in))| Blame {
                code,
                total,
                fraction: if denom > 0.0 {
                    total.as_secs_f64() / denom
                } else {
                    0.0
                },
                dominant_in,
            })
            .collect();
        out.sort_by_key(|b| std::cmp::Reverse(b.total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn segments_roundtrip_in_recording_order() {
        let slab = TraceSlab::new(8);
        slab.begin(5);
        slab.record(5, 1, 2 * MS);
        slab.record(5, 2, 3 * MS);
        let t = slab.snapshot(5).expect("trace live");
        assert_eq!(t.epoch, 5);
        assert_eq!(
            t.segments,
            vec![
                TraceSegment {
                    code: 1,
                    duration: 2 * MS
                },
                TraceSegment {
                    code: 2,
                    duration: 3 * MS
                },
            ]
        );
        assert_eq!(t.total_where(|_| true), 5 * MS);
        assert_eq!(t.dominant_where(|_| true).unwrap().code, 2);
        assert_eq!(t.total_where(|c| c == 1), 2 * MS);
    }

    #[test]
    fn ring_evicts_and_late_writers_are_conflicts() {
        let slab = TraceSlab::new(4);
        slab.begin(1);
        slab.record(1, 0, MS);
        // Epoch 5 maps to the same slot (5 % 4 == 1) and evicts epoch 1.
        slab.begin(5);
        assert!(slab.snapshot(1).is_none());
        slab.record(1, 0, MS); // straggler
        assert_eq!(slab.conflicts(), 1);
        let t = slab.snapshot(5).expect("new epoch live");
        assert!(t.segments.is_empty());
        assert_eq!(slab.begun(), 2);
    }

    #[test]
    fn epoch_zero_is_the_untraced_sentinel() {
        let slab = TraceSlab::new(4);
        slab.begin(0);
        slab.record(0, 3, MS);
        assert!(slab.snapshot(0).is_none());
        assert_eq!(slab.begun(), 0);
        assert_eq!(slab.conflicts(), 0);
        assert!(slab.dump().is_empty());
    }

    #[test]
    fn overflow_drops_excess_segments_and_counts_them() {
        let slab = TraceSlab::new(2);
        slab.begin(3);
        for i in 0..(MAX_TRACE_SEGMENTS + 4) {
            slab.record(3, i as u8, MS);
        }
        assert_eq!(slab.overflows(), 4);
        let t = slab.snapshot(3).unwrap();
        assert_eq!(t.segments.len(), MAX_TRACE_SEGMENTS);
    }

    #[test]
    fn dump_returns_live_traces_sorted_by_epoch() {
        let slab = TraceSlab::new(8);
        for e in [7u64, 3, 5] {
            slab.begin(e);
            slab.record(e, 0, MS * e as u32);
        }
        let epochs: Vec<u64> = slab.dump().iter().map(|t| t.epoch).collect();
        assert_eq!(epochs, vec![3, 5, 7]);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_snapshot() {
        let slab = Arc::new(TraceSlab::new(64));
        for e in 1..=32u64 {
            slab.begin(e);
        }
        let writers: Vec<_> = (0..4u8)
            .map(|w| {
                let slab = slab.clone();
                std::thread::spawn(move || {
                    for round in 0..2_000u64 {
                        let e = round % 32 + 1;
                        slab.record(e, w, Duration::from_nanos(u64::from(w) + 1));
                    }
                })
            })
            .collect();
        for _ in 0..500 {
            for t in slab.dump() {
                for s in &t.segments {
                    // A torn record would decode a code outside the writer
                    // set or a zero duration.
                    assert!(s.code < 4, "torn segment {s:?}");
                    assert_eq!(s.duration.as_nanos() as u64, u64::from(s.code) + 1);
                }
            }
        }
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn critical_path_blames_the_dominant_segment() {
        let mut cp = CriticalPath::new();
        // Two traces: GNN (code 4) dominates both; code 2 shows up too.
        cp.observe(&[
            TraceSegment {
                code: 4,
                duration: 6 * MS,
            },
            TraceSegment {
                code: 2,
                duration: 2 * MS,
            },
        ]);
        cp.observe(&[
            TraceSegment {
                code: 4,
                duration: 9 * MS,
            },
            TraceSegment {
                code: 2,
                duration: 3 * MS,
            },
        ]);
        cp.observe(&[]); // ignored
        assert_eq!(cp.traces(), 2);
        let blame = cp.blame();
        assert_eq!(blame[0].code, 4);
        assert_eq!(blame[0].dominant_in, 2);
        assert!((blame[0].fraction - 0.75).abs() < 1e-9);
        assert_eq!(blame[1].code, 2);
        assert_eq!(blame[1].dominant_in, 0);
        let total: f64 = blame.iter().map(|b| b.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_critical_path_answers_empty() {
        let cp = CriticalPath::new();
        assert!(cp.blame().is_empty());
        assert_eq!(cp.traces(), 0);
    }
}
