//! Log-linear histogram with a fixed bucket layout.
//!
//! Layout (HdrHistogram-style, `SUB_BITS = 4`): values below 16 get exact
//! unit buckets; above that, each power-of-two octave is split into 16
//! linear sub-buckets, so a bucket's width is at most 1/16 of its lower
//! bound and any recorded value is reproduced to within 6.25 % by its
//! bucket's upper bound. The layout is a pure function of the value — no
//! per-instance configuration — which makes snapshots from different
//! histograms mergeable bucket-by-bucket and lets percentile queries run
//! without allocating.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values at or above `2^MAX_EXP` clamp into the last bucket
/// (`2^40` ns ≈ 18 minutes — far beyond any latency this crate records).
const MAX_EXP: u32 = 40;

/// Total number of buckets in the fixed layout.
pub const NUM_BUCKETS: usize = SUB + (MAX_EXP as usize - SUB_BITS as usize) * SUB;

/// Maps a value to its bucket index. Exact below 16; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb >= MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let shift = msb - SUB_BITS;
    // Top SUB_BITS+1 bits of v, minus the implicit leading 1 at position
    // SUB_BITS, selects the linear sub-bucket inside the octave.
    let sub = (v >> shift) as usize - SUB;
    SUB + shift as usize * SUB + sub
}

/// Inclusive `[lo, hi]` value range covered by bucket `i`. The last bucket
/// also absorbs every value above `hi` (the clamp bucket).
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < SUB {
        return (i as u64, i as u64);
    }
    let b = i - SUB;
    let shift = (b / SUB) as u32;
    let sub = (b % SUB) as u64;
    let lo = (SUB as u64 + sub) << shift;
    (lo, lo + (1u64 << shift) - 1)
}

/// A concurrent log-linear histogram. Cloning shares the buckets; recording
/// is a single relaxed `fetch_add` on the value's bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Arc<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into(),
        }
    }

    /// Records one sample. One relaxed atomic op; never allocates.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples (sums the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`), answered as the upper
    /// bound of the bucket holding the rank — within 6.25 % of the exact
    /// sample. Two relaxed passes over the fixed bucket array; no
    /// allocation, so it is safe to call from a sampler on the hot path.
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// Copies the buckets into an owned, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An owned copy of a histogram's buckets. Because every histogram shares
/// the same fixed layout, snapshots merge by element-wise addition —
/// an associative, commutative operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds `other`'s buckets into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Nearest-rank percentile; same contract as [`Histogram::percentile`].
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// Approximate mean using bucket midpoints. Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let (lo, hi) = bucket_bounds(i);
                sum += c as f64 * ((lo + hi) as f64 / 2.0);
            }
        }
        sum / total as f64
    }

    /// Largest non-empty bucket's upper bound (an upper estimate of the
    /// maximum recorded sample). Returns 0 when empty.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| bucket_bounds(i).1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* PRNG — the crate is dependency-free, so
    /// property tests bring their own randomness.
    struct Rng(u64);
    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed.max(1))
        }
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[test]
    fn buckets_are_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        let mut rng = Rng::new(42);
        for _ in 0..200_000 {
            // Spread values across all magnitudes, including beyond the clamp.
            let v = rng.next() >> (rng.next() % 64) as u32;
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            if i == NUM_BUCKETS - 1 {
                assert!(v >= lo, "clamp bucket must still lower-bound {v}");
            } else {
                assert!(
                    lo <= v && v <= hi,
                    "value {v} outside bucket {i} [{lo}, {hi}]"
                );
                // Relative width bound: hi/lo ≤ 1 + 1/16 for log-linear buckets.
                if lo >= 16 {
                    assert!(hi - lo <= lo / 16, "bucket {i} too wide: [{lo}, {hi}]");
                }
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_tile_the_axis() {
        // Consecutive buckets must tile [0, 2^40) with no gaps or overlaps.
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(
                hi + 1,
                lo_next,
                "gap/overlap between buckets {i} and {}",
                i + 1
            );
        }
        // Spot-check monotonicity of the index function across boundaries.
        let mut rng = Rng::new(7);
        for _ in 0..100_000 {
            let v = rng.next() >> (rng.next() % 40) as u32;
            assert!(bucket_index(v) <= bucket_index(v + 1));
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut rng = Rng::new(11);
        let h = Histogram::new();
        for _ in 0..10_000 {
            h.record(rng.next() % 1_000_000);
        }
        let mut prev = 0;
        for k in 0..=100 {
            let p = h.percentile(k as f64 / 100.0);
            assert!(
                p >= prev,
                "percentile not monotone at q={}",
                k as f64 / 100.0
            );
            prev = p;
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64| {
            let mut rng = Rng::new(seed);
            let h = Histogram::new();
            for _ in 0..5_000 {
                h.record(rng.next() % 100_000);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        // (a + b) + c
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // b + a == a + b
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn percentile_error_bound_vs_exact_sort() {
        // Across seeds × distributions, the histogram percentile (the
        // bucket's upper bound) must sit in [exact, exact * (1 + 1/16)].
        for seed in [3u64, 17, 99, 1234] {
            for dist in 0..4 {
                let mut rng = Rng::new(seed * 1000 + dist);
                let samples: Vec<u64> = (0..8_192)
                    .map(|_| match dist {
                        0 => rng.next() % 10_000,           // uniform
                        1 => 1 + rng.next() % 16,           // tiny (exact buckets)
                        2 => (rng.next() % 64).pow(3),      // power-law-ish
                        _ => 50_000 + (rng.next() % 1_000), // narrow offset band
                    })
                    .collect();
                let h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
                    let exact = sorted[rank - 1];
                    let got = h.percentile(q);
                    assert!(
                        got >= exact && got <= exact + exact / 16,
                        "seed {seed} dist {dist} q {q}: exact {exact}, hist {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_sample_histogram_answers_its_bucket_at_every_quantile() {
        // The SLO/latency path divides by percentiles; a one-sample
        // histogram must answer that sample's bucket bound for every q,
        // including the degenerate q = 0 (rank clamps to 1).
        let h = Histogram::new();
        h.record(1_000);
        let expect = bucket_bounds(bucket_index(1_000)).1;
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), expect, "q={q}");
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.percentile(0.99), expect);
        assert_eq!(s.max(), expect);
        let (lo, hi) = bucket_bounds(bucket_index(1_000));
        let mid = (lo + hi) as f64 / 2.0;
        assert!((s.mean() - mid).abs() < 1e-9);
    }

    #[test]
    fn merging_disjoint_octaves_preserves_counts_and_orders_percentiles() {
        // Snapshots whose samples live in entirely different octaves must
        // merge without cross-talk: total count adds, the low octave owns
        // the low quantiles and the high octave the high ones.
        let lo = Histogram::new();
        for _ in 0..1_000 {
            lo.record(100); // octave [96, 103]
        }
        let hi = Histogram::new();
        for _ in 0..1_000 {
            hi.record(1_000_000); // six octaves up
        }
        let mut merged = lo.snapshot();
        merged.merge(&hi.snapshot());
        assert_eq!(merged.count(), 2_000);
        let lo_bound = bucket_bounds(bucket_index(100)).1;
        let hi_bound = bucket_bounds(bucket_index(1_000_000)).1;
        assert_eq!(merged.percentile(0.25), lo_bound);
        assert_eq!(merged.percentile(0.5), lo_bound);
        assert_eq!(merged.percentile(0.75), hi_bound);
        assert_eq!(merged.percentile(0.99), hi_bound);
        assert_eq!(merged.max(), hi_bound);
        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn concurrent_hammer_from_eight_threads() {
        let h = Histogram::new();
        let per_thread = 100_000u64;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut rng = Rng::new(t + 1);
                    for _ in 0..per_thread {
                        h.record(rng.next() % 1_000_000);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(h.count(), 8 * per_thread);
        // The concurrent result must equal a single-threaded replay of the
        // same eight streams — counters lose nothing under contention.
        let reference = Histogram::new();
        for t in 0..8u64 {
            let mut rng = Rng::new(t + 1);
            for _ in 0..per_thread {
                reference.record(rng.next() % 1_000_000);
            }
        }
        assert_eq!(h.snapshot(), reference.snapshot());
    }
}
