//! `tgnn-obs`: dependency-free observability primitives for the serve pipeline.
//!
//! Three pieces, each usable on its own:
//!
//! * [`Counter`] / [`Gauge`] / [`Registry`] — lock-free scalar metrics with
//!   static handle registration: a handle is grabbed once at pipeline spawn
//!   and recording a sample afterwards is a single relaxed atomic op.
//! * [`Histogram`] — a log-linear histogram with a *fixed* bucket layout
//!   (16 sub-buckets per octave, ≤ 6.25 % relative error), so snapshots
//!   taken on different threads or machines are mergeable bucket-by-bucket
//!   and percentile queries never allocate.
//! * [`FlightRecorder`] — a bounded seqlock ring buffer of
//!   `(stage, worker, epoch, enter/exit, tick)` records. Writers never
//!   block and never allocate; a reader can dump a consistent view of the
//!   last N records at any time — including after a worker panicked — which
//!   is what makes post-mortem per-stage timelines possible.
//! * [`TraceSlab`] / [`CriticalPath`] — epoch-scoped causal traces: a
//!   lock-free ring of per-epoch segment lists that decompose a request's
//!   admit→deliver latency into additive phases, plus an analyzer that
//!   names the dominant segment and aggregates per-segment blame.
//! * [`SloEngine`] — declared objectives (error budgets) evaluated over
//!   fast/slow burn-rate windows, with a typed [`SloStatus`] verdict and a
//!   cheap [`SloEngine::fired`] signal admission control can poll.
//!
//! The crate has no dependencies (not even on the rest of the workspace) so
//! that instrumentation can be threaded through any layer without dragging
//! the model stack along.

#![warn(missing_docs)]

mod flight;
mod hist;
mod registry;
mod slo;
mod trace;

pub use flight::{FlightRecord, FlightRecorder, SpanKind};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use slo::{
    BurnState, SloEngine, SloSpec, SloStatus, FAST_WINDOW_SECONDS, RING_SECONDS,
    SLOW_WINDOW_SECONDS,
};
pub use trace::{Blame, CriticalPath, TraceSegment, TraceSlab, TraceView, MAX_TRACE_SEGMENTS};
