//! A bounded ring-buffer flight recorder for stage-span tracing.
//!
//! Workers record fixed-size `(stage, worker, epoch, kind, tick)` events
//! with three relaxed/release stores and no allocation; the ring keeps the
//! most recent `capacity` events. Each slot is guarded by a seqlock stamp
//! (odd = mid-write), so a reader can [`dump`](FlightRecorder::dump) a
//! consistent view at any moment — concurrently with writers, after a
//! graceful drain, or from a panic handler while the pipeline is poisoned.
//! The recorder itself holds no locks and is shared by `Arc`, which is what
//! lets it outlive any individual worker.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

/// What a flight-recorder event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A worker began processing an epoch.
    Enter,
    /// A worker finished processing an epoch (including handing it off).
    Exit,
    /// A point event with no duration (e.g. delivery to the caller).
    Mark,
}

impl SpanKind {
    fn code(self) -> u64 {
        match self {
            SpanKind::Enter => 0,
            SpanKind::Exit => 1,
            SpanKind::Mark => 2,
        }
    }

    fn from_code(c: u64) -> SpanKind {
        match c {
            0 => SpanKind::Enter,
            1 => SpanKind::Exit,
            _ => SpanKind::Mark,
        }
    }
}

// Packed meta word: kind (2 bits) | stage (6 bits) | worker (16 bits) |
// epoch (40 bits). 2^40 epochs at one epoch per millisecond is ~35 years.
const EPOCH_BITS: u64 = 40;
const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;

fn pack(stage: u8, worker: u16, epoch: u64, kind: SpanKind) -> u64 {
    (kind.code() << 62)
        | ((stage as u64 & 0x3F) << 56)
        | ((worker as u64) << EPOCH_BITS)
        | (epoch & EPOCH_MASK)
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number of the event (0-based; gaps mean overwritten).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub tick_ns: u64,
    /// Caller-defined stage code (6 bits).
    pub stage: u8,
    /// Worker index within the stage.
    pub worker: u16,
    /// Epoch (batch sequence number) the event belongs to; 0 = pre-epoch.
    pub epoch: u64,
    /// Enter, exit, or mark.
    pub kind: SpanKind,
}

struct Slot {
    /// Seqlock stamp: 0 = never written, odd = write in progress,
    /// even = `(seq + 1) << 1` of the record it holds.
    stamp: AtomicU64,
    meta: AtomicU64,
    tick: AtomicU64,
}

/// The ring buffer itself. Cheap to share (`Arc<FlightRecorder>`); all
/// methods take `&self`.
pub struct FlightRecorder {
    start: Instant,
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events
    /// (rounded up to at least 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots: Vec<Slot> = (0..capacity)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                tick: AtomicU64::new(0),
            })
            .collect();
        FlightRecorder {
            start: Instant::now(),
            cursor: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Records one event. Lock-free and allocation-free: one relaxed
    /// `fetch_add` to claim a slot plus four stores into it. Concurrent
    /// writers claim distinct slots and never wait on each other.
    #[inline]
    pub fn record(&self, stage: u8, worker: u16, epoch: u64, kind: SpanKind) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let stamp = (seq + 1) << 1;
        // Seqlock write: odd stamp while the payload is in flux.
        slot.stamp.store(stamp | 1, Ordering::Release);
        slot.meta
            .store(pack(stage, worker, epoch, kind), Ordering::Relaxed);
        slot.tick
            .store(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slot.stamp.store(stamp, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events lost to ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Reads every currently-valid slot, in recording order. Slots being
    /// overwritten mid-read are skipped rather than returned torn, so the
    /// dump is always internally consistent. Safe to call at any time,
    /// including while workers are panicking.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let tick = slot.tick.load(Ordering::Relaxed);
            // Seqlock read validation: the payload only counts if the stamp
            // did not move while we read it.
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) != s1 {
                continue;
            }
            out.push(FlightRecord {
                seq: (s1 >> 1) - 1,
                tick_ns: tick,
                stage: ((meta >> 56) & 0x3F) as u8,
                worker: ((meta >> EPOCH_BITS) & 0xFFFF) as u16,
                epoch: meta & EPOCH_MASK,
                kind: SpanKind::from_code(meta >> 62),
            });
        }
        out.sort_unstable_by_key(|r| r.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_roundtrip_in_order() {
        let fr = FlightRecorder::new(16);
        fr.record(1, 0, 10, SpanKind::Enter);
        fr.record(1, 0, 10, SpanKind::Exit);
        fr.record(2, 3, 11, SpanKind::Mark);
        let dump = fr.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].stage, 1);
        assert_eq!(dump[0].epoch, 10);
        assert_eq!(dump[0].kind, SpanKind::Enter);
        assert_eq!(dump[1].kind, SpanKind::Exit);
        assert_eq!(dump[2].worker, 3);
        assert_eq!(dump[2].kind, SpanKind::Mark);
        assert!(dump[0].seq < dump[1].seq && dump[1].seq < dump[2].seq);
        assert!(dump[0].tick_ns <= dump[1].tick_ns);
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let fr = FlightRecorder::new(8);
        for e in 0..100u64 {
            fr.record(0, 0, e, SpanKind::Mark);
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 8);
        assert_eq!(fr.dropped(), 92);
        let epochs: Vec<u64> = dump.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_writers_and_reader_see_no_torn_records() {
        let fr = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4u16)
            .map(|w| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for e in 0..50_000u64 {
                        // Encode worker into the epoch too so a torn record
                        // (meta from one write, validated by another stamp)
                        // would be detectable.
                        fr.record(w as u8, w, e * 4 + w as u64, SpanKind::Enter);
                    }
                })
            })
            .collect();
        for _ in 0..2_000 {
            for r in fr.dump() {
                assert_eq!(r.epoch % 4, r.worker as u64, "torn record: {r:?}");
                assert_eq!(r.stage as u16, r.worker);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(fr.recorded(), 200_000);
        assert_eq!(fr.dump().len(), 64);
    }

    #[test]
    fn dump_works_after_a_writer_panicked() {
        let fr = Arc::new(FlightRecorder::new(32));
        fr.record(5, 0, 1, SpanKind::Enter);
        let fr2 = fr.clone();
        let h = std::thread::spawn(move || {
            fr2.record(5, 0, 2, SpanKind::Enter);
            panic!("worker died mid-epoch");
        });
        assert!(h.join().is_err());
        // The panicked worker's partial span (enter, no exit) is retained.
        let dump = fr.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[1].epoch, 2);
        assert_eq!(dump[1].kind, SpanKind::Enter);
    }
}
