//! Lock-free scalar metrics (counters and gauges) and a named registry.
//!
//! Handles are cheap `Arc` clones registered once — at pipeline spawn — and
//! recorded to with a single relaxed atomic op afterwards. The registry's
//! mutex is touched only at registration and snapshot time, never on the
//! record path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a standalone counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one. One relaxed atomic op.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`. One relaxed atomic op.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a standalone gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Registration returns a handle that is
/// recorded to without touching the registry again; `snapshot` walks the
/// name table under a short lock and reads every cell relaxed.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-fetches) a counter under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut entries = self.entries.lock().unwrap();
        for (n, m) in entries.iter() {
            if n == name {
                if let Metric::Counter(c) = m {
                    return c.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        let c = Counter::new();
        entries.push((name.to_string(), Metric::Counter(c.clone())));
        c
    }

    /// Registers (or re-fetches) a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut entries = self.entries.lock().unwrap();
        for (n, m) in entries.iter() {
            if n == name {
                if let Metric::Gauge(g) = m {
                    return g.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        let g = Gauge::new();
        entries.push((name.to_string(), Metric::Gauge(g.clone())));
        g
    }

    /// Registers (or re-fetches) a histogram under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut entries = self.entries.lock().unwrap();
        for (n, m) in entries.iter() {
            if n == name {
                if let Metric::Histogram(h) = m {
                    return h.clone();
                }
                panic!("metric {name:?} already registered with a different type");
            }
        }
        let h = Histogram::new();
        entries.push((name.to_string(), Metric::Histogram(h.clone())));
        h
    }

    /// Reads every registered metric. Values from concurrent writers may be
    /// slightly stale relative to each other; each individual value is exact.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().unwrap();
        let mut snap = RegistrySnapshot::default();
        for (name, m) in entries.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// A point-in-time copy of a [`Registry`]. Snapshots with the same metric
/// names merge element-wise (counters add, gauges take the latest, histograms
/// merge bucket-by-bucket).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Merges `other` into `self`: counters add, gauges are overwritten by
    /// `other`, histograms merge bucket-wise. Metrics present only in one
    /// side are kept as-is.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = *v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// Renders the snapshot as Prometheus-style text exposition. Histograms
    /// are rendered summary-style (`{quantile="..."}` series plus `_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for q in [0.5, 0.9, 0.99] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", h.percentile(q)));
            }
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("events");
        let g = r.gauge("depth");
        c.add(3);
        c.inc();
        g.set(7);
        g.add(-2);
        // Re-fetching by name returns the same cell.
        assert_eq!(r.counter("events").get(), 4);
        assert_eq!(r.gauge("depth").get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("events".to_string(), 4)]);
        assert_eq!(snap.gauges, vec![("depth".to_string(), 5)]);
    }

    #[test]
    fn snapshot_merge_adds_counters() {
        let r1 = Registry::new();
        r1.counter("x").add(10);
        let r2 = Registry::new();
        r2.counter("x").add(5);
        r2.counter("y").add(1);
        let mut a = r1.snapshot();
        a.merge(&r2.snapshot());
        assert_eq!(
            a.counters,
            vec![("x".to_string(), 15), ("y".to_string(), 1)]
        );
    }

    #[test]
    fn prometheus_text_has_type_lines() {
        let r = Registry::new();
        r.counter("tgnn_events_total").add(2);
        r.histogram("tgnn_latency_us").record(100);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE tgnn_events_total counter"));
        assert!(text.contains("tgnn_events_total 2"));
        assert!(text.contains("tgnn_latency_us_count 1"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }
}
