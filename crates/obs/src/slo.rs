//! Service-level objectives evaluated over multi-window burn rates.
//!
//! An objective declares an *error budget*: the fraction of events allowed
//! to be "bad" (a latency sample over its threshold, a dropped request).
//! The [`SloEngine`] buckets good/bad counts into one-second rings and
//! evaluates each objective over a fast (5 s) and a slow (60 s) window.
//! The *burn rate* is `bad_fraction / error_budget` — 1.0 means the budget
//! is being consumed exactly at the sustainable rate, higher means faster.
//! An objective **fires** only when *both* windows burn at or above the
//! objective's firing threshold: the slow window filters blips, the fast
//! window makes recovery visible quickly.  Windows with zero traffic
//! report [`BurnState::NoData`] and can never fire.
//!
//! Recording is lock-free (per-second atomic buckets); evaluation walks at
//! most [`RING_SECONDS`] buckets and is cached per 100 ms tick, so callers
//! such as admission control may consult [`SloEngine::fired`] on every
//! request and still notice a freshly-fired objective within a tick.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Fast burn-rate window (seconds).
pub const FAST_WINDOW_SECONDS: u64 = 5;
/// Slow burn-rate window (seconds).
pub const SLOW_WINDOW_SECONDS: u64 = 60;
/// Ring size: one bucket per second, enough to cover the slow window plus
/// slack for stragglers.
pub const RING_SECONDS: u64 = 64;

/// A declared objective: a name, the fraction of events allowed to be bad,
/// and the burn rate at which the objective fires.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Human-readable objective name (e.g. `"latency_p99"`).
    pub name: String,
    /// Allowed bad fraction, in `(0, 1]` (clamped on construction).
    pub error_budget: f64,
    /// Burn rate at or above which the objective fires (≥ 0).
    pub fire_burn_rate: f64,
}

impl SloSpec {
    /// Builds a spec, clamping `error_budget` into `(0, 1]`.
    pub fn new(name: impl Into<String>, error_budget: f64, fire_burn_rate: f64) -> Self {
        SloSpec {
            name: name.into(),
            error_budget: error_budget.clamp(f64::MIN_POSITIVE, 1.0),
            fire_burn_rate: fire_burn_rate.max(0.0),
        }
    }
}

/// Evaluated state of one objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurnState {
    /// No traffic in at least one window — nothing to conclude, never a
    /// fired alarm.
    NoData,
    /// Burning below the firing threshold in at least one window.
    Ok,
    /// Both windows burn at or above the firing threshold.
    Fired,
}

/// Point-in-time evaluation of one objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// The objective's name.
    pub name: String,
    /// The objective's error budget.
    pub error_budget: f64,
    /// Burn rate over the fast window, or `None` with zero traffic.
    pub fast_burn: Option<f64>,
    /// Burn rate over the slow window, or `None` with zero traffic.
    pub slow_burn: Option<f64>,
    /// The firing threshold this status was judged against.
    pub fire_burn_rate: f64,
    /// Combined verdict over both windows.
    pub state: BurnState,
}

struct Bucket {
    /// Wall-clock second this bucket currently represents (+1 so that 0
    /// means "empty"; second 0 is a valid stamp).
    stamp: AtomicU64,
    good: AtomicU64,
    bad: AtomicU64,
}

struct Lane {
    buckets: Vec<Bucket>,
}

impl Lane {
    fn new() -> Self {
        Lane {
            buckets: (0..RING_SECONDS)
                .map(|_| Bucket {
                    stamp: AtomicU64::new(0),
                    good: AtomicU64::new(0),
                    bad: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn record(&self, good: u64, bad: u64, at_s: u64) {
        let b = &self.buckets[(at_s % RING_SECONDS) as usize];
        let stamp = at_s + 1;
        let cur = b.stamp.load(Ordering::Acquire);
        if cur != stamp {
            // Rotate the bucket to the new second. The CAS winner wipes the
            // stale counts; losers (and late writers for the evicted
            // second) just add into the fresh bucket — a one-second-bucket
            // misattribution at worst.
            if b.stamp
                .compare_exchange(cur, stamp, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                b.good.store(0, Ordering::Relaxed);
                b.bad.store(0, Ordering::Relaxed);
            }
        }
        if good > 0 {
            b.good.fetch_add(good, Ordering::Relaxed);
        }
        if bad > 0 {
            b.bad.fetch_add(bad, Ordering::Relaxed);
        }
    }

    /// Sums (good, bad) over the `window_s` seconds ending at `now_s`
    /// inclusive.
    fn window(&self, now_s: u64, window_s: u64) -> (u64, u64) {
        let lo = (now_s + 1).saturating_sub(window_s);
        let (mut good, mut bad) = (0u64, 0u64);
        for s in lo..=now_s {
            let b = &self.buckets[(s % RING_SECONDS) as usize];
            if b.stamp.load(Ordering::Acquire) == s + 1 {
                good += b.good.load(Ordering::Relaxed);
                bad += b.bad.load(Ordering::Relaxed);
            }
        }
        (good, bad)
    }
}

/// Multi-objective burn-rate engine.  Shared by `Arc`; all methods take
/// `&self`.
pub struct SloEngine {
    start: Instant,
    specs: Vec<SloSpec>,
    lanes: Vec<Lane>,
    cached_fired: AtomicBool,
    cached_tick: AtomicU64,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("specs", &self.specs)
            .finish()
    }
}

impl SloEngine {
    /// Creates an engine for the given objectives.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let lanes = specs.iter().map(|_| Lane::new()).collect();
        SloEngine {
            start: Instant::now(),
            specs,
            lanes,
            cached_fired: AtomicBool::new(false),
            cached_tick: AtomicU64::new(u64::MAX),
        }
    }

    /// The declared objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Records one event for objective `spec`.
    #[inline]
    pub fn record(&self, spec: usize, good: bool) {
        self.record_many(spec, u64::from(good), u64::from(!good));
    }

    /// Records a batch of events for objective `spec`.
    #[inline]
    pub fn record_many(&self, spec: usize, good: u64, bad: u64) {
        if good == 0 && bad == 0 {
            return;
        }
        self.record_at(spec, good, bad, self.now_s());
    }

    /// Deterministic variant of [`record_many`](Self::record_many) with an
    /// explicit second — for tests and replays.
    pub fn record_at(&self, spec: usize, good: u64, bad: u64, at_s: u64) {
        if let Some(lane) = self.lanes.get(spec) {
            lane.record(good, bad, at_s);
        }
    }

    /// Evaluates every objective at the current instant.
    pub fn status(&self) -> Vec<SloStatus> {
        self.status_at(self.now_s())
    }

    /// Deterministic variant of [`status`](Self::status) with an explicit
    /// second — for tests and replays.
    pub fn status_at(&self, now_s: u64) -> Vec<SloStatus> {
        self.specs
            .iter()
            .zip(&self.lanes)
            .map(|(spec, lane)| {
                let burn = |window_s: u64| {
                    let (good, bad) = lane.window(now_s, window_s);
                    let total = good + bad;
                    if total == 0 {
                        None
                    } else {
                        Some((bad as f64 / total as f64) / spec.error_budget)
                    }
                };
                let fast_burn = burn(FAST_WINDOW_SECONDS);
                let slow_burn = burn(SLOW_WINDOW_SECONDS);
                let state = match (fast_burn, slow_burn) {
                    (Some(f), Some(s)) if f >= spec.fire_burn_rate && s >= spec.fire_burn_rate => {
                        BurnState::Fired
                    }
                    (Some(_), Some(_)) => BurnState::Ok,
                    // A silent fast window with slow-window traffic still
                    // means "currently no load" — recovery, not an alarm.
                    _ => BurnState::NoData,
                };
                SloStatus {
                    name: spec.name.clone(),
                    error_budget: spec.error_budget,
                    fast_burn,
                    slow_burn,
                    fire_burn_rate: spec.fire_burn_rate,
                    state,
                }
            })
            .collect()
    }

    /// True when any objective currently fires.  Evaluation is cached per
    /// 100 ms tick — cheap enough for per-request use, fine-grained enough
    /// that admission notices a burning objective while a burst is still in
    /// flight.
    pub fn fired(&self) -> bool {
        let tick = self.start.elapsed().as_millis() as u64 / 100;
        if self.cached_tick.load(Ordering::Acquire) != tick {
            let fired = self
                .status_at(self.now_s())
                .iter()
                .any(|st| st.state == BurnState::Fired);
            self.cached_fired.store(fired, Ordering::Release);
            self.cached_tick.store(tick, Ordering::Release);
        }
        self.cached_fired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SloEngine {
        SloEngine::new(vec![
            SloSpec::new("latency_p99", 0.01, 1.0),
            SloSpec::new("drop_rate", 0.01, 1.0),
        ])
    }

    #[test]
    fn zero_traffic_reports_no_data_not_fired() {
        let e = engine();
        for st in e.status_at(100) {
            assert_eq!(st.state, BurnState::NoData);
            assert_eq!(st.fast_burn, None);
            assert_eq!(st.slow_burn, None);
        }
    }

    #[test]
    fn healthy_traffic_is_ok() {
        let e = engine();
        for s in 0..=70u64 {
            e.record_at(0, 995, 5, s); // 0.5% bad, budget 1% → burn 0.5
        }
        let st = &e.status_at(70)[0];
        assert_eq!(st.state, BurnState::Ok);
        assert!((st.fast_burn.unwrap() - 0.5).abs() < 1e-9);
        assert!((st.slow_burn.unwrap() - 0.5).abs() < 1e-9);
        // The untouched objective still has no data.
        assert_eq!(e.status_at(70)[1].state, BurnState::NoData);
    }

    #[test]
    fn fires_only_when_both_windows_burn() {
        let e = engine();
        // 55 healthy seconds then a 5-second incident at 50% bad.
        for s in 0..55u64 {
            e.record_at(0, 1000, 0, s);
        }
        for s in 55..60u64 {
            e.record_at(0, 500, 500, s);
        }
        let st = &e.status_at(59)[0];
        // Fast window: fully inside the incident → burn 50.
        assert!(st.fast_burn.unwrap() > 10.0);
        // Slow window: 2500 bad / 60000 ≈ 4.2% → burn ≈ 4.2; both ≥ 1.
        assert_eq!(st.state, BurnState::Fired);

        // Same incident against a 10× firing threshold: slow window stays
        // below it, so no alarm.
        let strict = SloEngine::new(vec![SloSpec::new("strict", 0.01, 10.0)]);
        for s in 0..55u64 {
            strict.record_at(0, 1000, 0, s);
        }
        for s in 55..60u64 {
            strict.record_at(0, 500, 500, s);
        }
        assert_eq!(strict.status_at(59)[0].state, BurnState::Ok);
    }

    #[test]
    fn recovery_clears_the_alarm_via_the_fast_window() {
        let e = engine();
        for s in 0..30u64 {
            e.record_at(0, 500, 500, s); // sustained incident
        }
        assert_eq!(e.status_at(29)[0].state, BurnState::Fired);
        for s in 30..40u64 {
            e.record_at(0, 1000, 0, s); // recovered
        }
        let st = &e.status_at(39)[0];
        assert_eq!(st.fast_burn, Some(0.0));
        assert_eq!(st.state, BurnState::Ok);
    }

    #[test]
    fn idle_fast_window_is_no_data_even_after_an_incident() {
        let e = engine();
        for s in 0..10u64 {
            e.record_at(0, 0, 1000, s); // everything bad
        }
        // 20 seconds of silence: the slow window still holds the incident,
        // but with no current traffic there is nothing to act on.
        let st = &e.status_at(30)[0];
        assert_eq!(st.fast_burn, None);
        assert!(st.slow_burn.unwrap() > 1.0);
        assert_eq!(st.state, BurnState::NoData);
    }

    #[test]
    fn ring_evicts_buckets_older_than_the_slow_window() {
        let e = engine();
        e.record_at(0, 0, 1000, 5); // incident at second 5
        assert_eq!(e.status_at(5)[0].state, BurnState::Fired);
        // Re-use of the same ring slot RING_SECONDS later wipes it.
        e.record_at(0, 1000, 0, 5 + RING_SECONDS);
        let st = &e.status_at(5 + RING_SECONDS)[0];
        assert_eq!(st.slow_burn, Some(0.0));
        assert_eq!(st.state, BurnState::Ok);
    }

    #[test]
    fn record_out_of_range_spec_is_ignored() {
        let e = engine();
        e.record_at(99, 1, 1, 0);
        assert_eq!(e.status_at(0).len(), 2);
    }

    #[test]
    fn live_clock_paths_are_consistent() {
        let e = engine();
        e.record(0, true);
        e.record_many(0, 9, 1);
        let st = &e.status()[0];
        // 1 bad / 11 total ≈ 9.1% over a 1% budget → burn ≈ 9.1, fired.
        assert!(st.fast_burn.unwrap() > 1.0);
        assert!(e.fired());
    }

    #[test]
    fn spec_clamps_degenerate_budgets() {
        let s = SloSpec::new("x", 0.0, -1.0);
        assert!(s.error_budget > 0.0);
        assert_eq!(s.fire_burn_rate, 0.0);
    }
}
