//! Reusable scratch buffers for the allocation-free inference hot path.
//!
//! Every per-batch kernel invocation (GEMM packing, GRU gates, attention
//! projections, time encodings) needs temporary storage.  Allocating it per
//! call puts `malloc`/`free` on the critical path of every vertex — measurable
//! at the paper's batch sizes, where a single embedding touches a dozen small
//! temporaries.  A [`Workspace`] instead owns a pool of `Vec<f32>` buffers
//! that callers check out ([`Workspace::take`]) and return
//! ([`Workspace::recycle`]); after a warm-up call per shape, the pool serves
//! every request from reused capacity and the hot path performs no heap
//! allocation.
//!
//! The type is deliberately not `Sync`: parallel code gives each worker its
//! own `Workspace` (per-thread workspaces), which also keeps buffer reuse
//! contention-free.

use crate::{Float, Matrix};

/// A pool of reusable `f32` buffers plus a dedicated GEMM packing buffer.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Recycled general-purpose buffers, unordered.
    pool: Vec<Vec<Float>>,
    /// Dedicated buffer for packed GEMM panels (held separately because it is
    /// in use for the whole duration of a GEMM while `pool` buffers may be
    /// taken concurrently for the output).
    pack: Vec<Float>,
    /// Recycled `i8` buffers for the quantized hot path (activation
    /// quantization scratch of the int8 GEMM).
    pool_i8: Vec<Vec<i8>>,
    /// Number of times a request could not be served from pooled capacity.
    heap_allocs: u64,
}

impl Workspace {
    /// Creates an empty workspace (no buffers are reserved up front; the pool
    /// grows to the working set of whatever kernels run through it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zero-filled buffer of exactly `len` elements.
    ///
    /// Prefers the pooled buffer with the largest capacity so one warm
    /// large-shape call can serve all smaller subsequent requests.
    pub fn take(&mut self, len: usize) -> Vec<Float> {
        let mut buf = match best_fit(&self.pool, len) {
            Some(idx) => self.pool.swap_remove(idx),
            None => {
                self.heap_allocs += 1;
                Vec::with_capacity(len)
            }
        };
        if buf.capacity() < len {
            self.heap_allocs += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Checks out a zero-filled `rows × cols` matrix.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<Float>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Returns a matrix's backing buffer to the pool for reuse.
    pub fn recycle_matrix(&mut self, m: Matrix) {
        self.recycle(m.into_vec());
    }

    /// Checks out a zero-filled `i8` buffer of exactly `len` elements (the
    /// int8 analogue of [`Self::take`], used for quantized activations).
    /// Same smallest-fit reuse policy as the f32 pool.
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        let mut buf = match best_fit(&self.pool_i8, len) {
            Some(idx) => self.pool_i8.swap_remove(idx),
            None => {
                self.heap_allocs += 1;
                Vec::with_capacity(len)
            }
        };
        if buf.capacity() < len {
            self.heap_allocs += 1;
        }
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns an `i8` buffer to the pool for reuse.
    pub fn recycle_i8(&mut self, buf: Vec<i8>) {
        if buf.capacity() > 0 {
            self.pool_i8.push(buf);
        }
    }

    /// Number of requests (including pack-buffer growth) that had to touch
    /// the heap since construction.  Steady-state hot-path code keeps this
    /// constant across calls — asserted by the workspace-reuse tests.
    pub fn heap_allocs(&self) -> u64 {
        self.heap_allocs
    }

    /// The dedicated packing buffer, grown to at least `len` elements.
    /// Contents are unspecified; the GEMM packing routines overwrite the
    /// region they use.
    pub(crate) fn pack_buffer(&mut self, len: usize) -> &mut [Float] {
        if self.pack.len() < len {
            if self.pack.capacity() < len {
                self.heap_allocs += 1;
            }
            self.pack.resize(len, 0.0);
        }
        &mut self.pack[..len]
    }
}

/// Index of the pooled buffer best suited for `len` elements: the smallest
/// capacity that fits, or the largest overall if none fits (it will grow
/// once and then serve everything).  Shared by the f32 and i8 pools so
/// their reuse policies cannot drift.
fn best_fit<T>(pool: &[Vec<T>], len: usize) -> Option<usize> {
    let mut fitting: Option<(usize, usize)> = None;
    let mut largest: Option<(usize, usize)> = None;
    for (idx, buf) in pool.iter().enumerate() {
        let cap = buf.capacity();
        if cap >= len && fitting.is_none_or(|(_, best)| cap < best) {
            fitting = Some((idx, cap));
        }
        if largest.is_none_or(|(_, best)| cap > best) {
            largest = Some((idx, cap));
        }
    }
    fitting.or(largest).map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_length() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(10);
        assert_eq!(buf.len(), 10);
        assert!(buf.iter().all(|&x| x == 0.0));
        buf.iter_mut().for_each(|x| *x = 7.0);
        ws.recycle(buf);
        // A reused buffer is zeroed again — no state leaks between users.
        let again = ws.take(10);
        assert!(again.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        // Warm-up: the first round allocates.
        for len in [64usize, 32, 128] {
            let buf = ws.take(len);
            ws.recycle(buf);
        }
        let warm = ws.heap_allocs();
        // Steady state: same shapes, no further heap traffic.
        for _ in 0..100 {
            for len in [64usize, 32, 128] {
                let buf = ws.take(len);
                ws.recycle(buf);
            }
        }
        assert_eq!(
            ws.heap_allocs(),
            warm,
            "steady-state take/recycle must not allocate"
        );
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let mut ws = Workspace::new();
        let a = ws.take(8);
        let b = ws.take(8);
        assert_ne!(a.as_ptr(), b.as_ptr());
        ws.recycle(a);
        ws.recycle(b);
    }

    #[test]
    fn take_matrix_shapes() {
        let mut ws = Workspace::new();
        let m = ws.take_matrix(3, 5);
        assert_eq!(m.shape(), (3, 5));
        ws.recycle_matrix(m);
        let m2 = ws.take_matrix(5, 3);
        assert_eq!(m2.shape(), (5, 3));
    }

    #[test]
    fn i8_pool_is_allocation_free_in_steady_state() {
        let mut ws = Workspace::new();
        for len in [64usize, 32, 256] {
            let buf = ws.take_i8(len);
            ws.recycle_i8(buf);
        }
        let warm = ws.heap_allocs();
        for _ in 0..100 {
            for len in [64usize, 32, 256] {
                let mut buf = ws.take_i8(len);
                assert_eq!(buf.len(), len);
                assert!(buf.iter().all(|&x| x == 0), "reused i8 buffer not zeroed");
                buf.iter_mut().for_each(|x| *x = -5);
                ws.recycle_i8(buf);
            }
        }
        assert_eq!(ws.heap_allocs(), warm);
    }

    #[test]
    fn pack_buffer_grows_and_is_reused() {
        let mut ws = Workspace::new();
        let _ = ws.pack_buffer(100);
        let allocs = ws.heap_allocs();
        let buf = ws.pack_buffer(50);
        assert_eq!(buf.len(), 50);
        assert_eq!(ws.heap_allocs(), allocs);
    }
}
