//! Deterministic random number generation and weight initialisation.
//!
//! Every experiment in the repository is seeded so tables and figures are
//! reproducible run-to-run; [`TensorRng`] wraps a self-contained ChaCha8
//! keystream generator which is portable across platforms and toolchains
//! (the build environment has no registry access, so the cipher core is
//! implemented here rather than pulled from `rand_chacha` — the stream is
//! deterministic per seed, which is the property the experiments rely on).

use crate::{Float, Matrix};

/// ChaCha8 keystream generator (RFC 8439 block function, 8 rounds).
///
/// Only used as a statistical bit source: we do not need the cipher's
/// security properties, just its excellent equidistribution and its
/// platform-independent, seed-deterministic output.
#[derive(Clone, Debug)]
struct ChaCha8 {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step, used to expand a 64-bit seed into the 256-bit key.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // counter (words 12–13) and nonce (14–15) start at zero.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, &w), &base) in self.block.iter_mut().zip(&working).zip(&self.state) {
            *out = w.wrapping_add(base);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// The largest float strictly below `x` (sign-aware; used to keep rounded
/// draws inside a half-open range).
fn next_down(x: Float) -> Float {
    if x.is_nan() || x == Float::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -Float::from_bits(1); // largest negative subnormal
    }
    let bits = x.to_bits();
    if x > 0.0 {
        Float::from_bits(bits - 1)
    } else {
        Float::from_bits(bits + 1)
    }
}

/// Seeded random generator used across the workspace.
#[derive(Clone, Debug)]
pub struct TensorRng {
    inner: ChaCha8,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha8::from_seed(seed),
        }
    }

    /// Splits off an independent generator for a named sub-stream; the
    /// derived seed mixes the label so different components never share a
    /// stream even when built from the same top-level seed.
    pub fn fork(&mut self, label: &str) -> TensorRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let extra: u64 = self.inner.next_u64();
        TensorRng::new(h ^ extra)
    }

    /// Uniform float in `[0, 1)` with 24 bits of mantissa entropy.
    #[inline]
    fn unit(&mut self) -> Float {
        (self.inner.next_u32() >> 8) as Float * (1.0 / (1u32 << 24) as Float)
    }

    /// Uniform float in `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low > high` (mirroring `rand`'s `gen_range`).
    pub fn uniform(&mut self, low: Float, high: Float) -> Float {
        if low == high {
            return low;
        }
        assert!(low < high, "uniform: empty range {low}..{high}");
        let v = low + self.unit() * (high - low);
        // Guard against the open upper bound being hit by rounding.
        if v >= high {
            next_down(high)
        } else {
            v
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        (self.inner.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: Float) -> bool {
        self.unit() < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> Float {
        let u1: Float = self.uniform(Float::EPSILON, 1.0).max(Float::EPSILON);
        let u2: Float = self.uniform(0.0, 1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Exponential sample with the given rate parameter λ.
    ///
    /// Used by the dataset generators to produce the power-law-like Δt
    /// distributions of Fig. 1 (as a mixture of exponentials).
    pub fn exponential(&mut self, lambda: Float) -> Float {
        assert!(lambda > 0.0, "exponential: rate must be positive");
        let u: Float = self.uniform(Float::EPSILON, 1.0).max(Float::EPSILON);
        -u.ln() / lambda
    }

    /// Pareto (power-law) sample with scale `x_min` and shape `alpha`.
    pub fn pareto(&mut self, x_min: Float, alpha: Float) -> Float {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto: parameters must be positive"
        );
        let u: Float = self.uniform(Float::EPSILON, 1.0).max(Float::EPSILON);
        x_min / u.powf(1.0 / alpha)
    }

    /// Samples an index according to unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[Float]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: Float = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut target = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Matrix with i.i.d. uniform entries in `[low, high)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, low: Float, high: Float) -> Matrix {
        let data = (0..rows * cols).map(|_| self.uniform(low, high)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Matrix with i.i.d. standard-normal entries scaled by `std`.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: Float) -> Matrix {
        let data = (0..rows * cols).map(|_| self.normal() * std).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot uniform initialisation for a weight matrix mapping
    /// `cols` inputs to `rows` outputs.
    pub fn xavier_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let bound = (6.0 / (rows + cols) as Float).sqrt();
        self.uniform_matrix(rows, cols, -bound, bound)
    }

    /// Uniform vector in `[low, high)`.
    pub fn uniform_vec(&mut self, len: usize, low: Float, high: Float) -> Vec<Float> {
        (0..len).map(|_| self.uniform(low, high)).collect()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = TensorRng::new(42);
        let mut b = TensorRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = TensorRng::new(1);
        let mut x = root.fork("weights");
        let mut y = root.fork("data");
        let xs: Vec<Float> = (0..16).map(|_| x.uniform(0.0, 1.0)).collect();
        let ys: Vec<Float> = (0..16).map(|_| y.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = TensorRng::new(9);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = TensorRng::new(11);
        let n = 20_000;
        let samples: Vec<Float> = (0..n).map(|_| rng.normal()).collect();
        let mean: Float = samples.iter().sum::<Float>() / n as Float;
        let var: Float = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<Float>()
            / n as Float;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = TensorRng::new(17);
        let n = 20_000;
        let lambda = 0.5;
        let mean: Float = (0..n).map(|_| rng.exponential(lambda)).sum::<Float>() / n as Float;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_exceeds_min() {
        let mut rng = TensorRng::new(23);
        for _ in 0..1000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = TensorRng::new(31);
        for _ in 0..500 {
            let i = rng.weighted_index(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn xavier_bound() {
        let mut rng = TensorRng::new(37);
        let m = rng.xavier_matrix(64, 64);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(m.max_abs() <= bound + 1e-6);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TensorRng::new(41);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_stays_inside_tight_and_negative_ranges() {
        let mut rng = TensorRng::new(101);
        // Negative range whose rounding guard must step away from zero.
        for _ in 0..2000 {
            let v = rng.uniform(-1.000_000_1, -1.0);
            assert!((-1.000_000_1..-1.0).contains(&v), "out of range: {v}");
        }
        // Upper bound of exactly zero.
        for _ in 0..2000 {
            let v = rng.uniform(-1.0, 0.0);
            assert!((-1.0..0.0).contains(&v), "out of range: {v}");
        }
        assert!(next_down(0.0) < 0.0);
        assert!(next_down(1.0) < 1.0);
        assert!(next_down(-1.0) < -1.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_inverted_range() {
        let mut rng = TensorRng::new(102);
        let _ = rng.uniform(1.0, -1.0);
    }

    #[test]
    fn chacha_keystream_words_are_well_spread() {
        // Cheap sanity check on the cipher core: byte histogram of the first
        // 64 KiB of keystream should be close to uniform.
        let mut rng = TensorRng::new(1234);
        let mut counts = [0u32; 256];
        for _ in 0..16_384 {
            let w = rng.inner.next_u32();
            for b in w.to_le_bytes() {
                counts[b as usize] += 1;
            }
        }
        let expected = (16_384u32 * 4) / 256;
        for (value, &count) in counts.iter().enumerate() {
            assert!(
                (count as i64 - expected as i64).abs() < expected as i64 / 2,
                "byte {value} count {count} far from {expected}"
            );
        }
    }
}
