//! Deterministic random number generation and weight initialisation.
//!
//! Every experiment in the repository is seeded so tables and figures are
//! reproducible run-to-run; [`TensorRng`] wraps a ChaCha8 generator which is
//! portable across platforms (unlike `StdRng`, whose algorithm is allowed to
//! change between `rand` releases).

use crate::{Float, Matrix};
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seeded random generator used across the workspace.
#[derive(Clone, Debug)]
pub struct TensorRng {
    inner: ChaCha8Rng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Splits off an independent generator for a named sub-stream; the
    /// derived seed mixes the label so different components never share a
    /// stream even when built from the same top-level seed.
    pub fn fork(&mut self, label: &str) -> TensorRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let extra: u64 = self.inner.gen();
        TensorRng::new(h ^ extra)
    }

    /// Uniform float in `[low, high)`.
    pub fn uniform(&mut self, low: Float, high: Float) -> Float {
        if low == high {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: Float) -> bool {
        self.inner.gen::<Float>() < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> Float {
        let u1: Float = self.inner.gen_range(Float::EPSILON..1.0);
        let u2: Float = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Exponential sample with the given rate parameter λ.
    ///
    /// Used by the dataset generators to produce the power-law-like Δt
    /// distributions of Fig. 1 (as a mixture of exponentials).
    pub fn exponential(&mut self, lambda: Float) -> Float {
        assert!(lambda > 0.0, "exponential: rate must be positive");
        let u: Float = self.inner.gen_range(Float::EPSILON..1.0);
        -u.ln() / lambda
    }

    /// Pareto (power-law) sample with scale `x_min` and shape `alpha`.
    pub fn pareto(&mut self, x_min: Float, alpha: Float) -> Float {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto: parameters must be positive");
        let u: Float = self.inner.gen_range(Float::EPSILON..1.0);
        x_min / u.powf(1.0 / alpha)
    }

    /// Samples an index according to unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[Float]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: Float = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut target = self.inner.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Matrix with i.i.d. uniform entries in `[low, high)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, low: Float, high: Float) -> Matrix {
        let dist = Uniform::new(low, high);
        let data = (0..rows * cols).map(|_| dist.sample(&mut self.inner)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Matrix with i.i.d. standard-normal entries scaled by `std`.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: Float) -> Matrix {
        let data = (0..rows * cols).map(|_| self.normal() * std).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot uniform initialisation for a weight matrix mapping
    /// `cols` inputs to `rows` outputs.
    pub fn xavier_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let bound = (6.0 / (rows + cols) as Float).sqrt();
        self.uniform_matrix(rows, cols, -bound, bound)
    }

    /// Uniform vector in `[low, high)`.
    pub fn uniform_vec(&mut self, len: usize, low: Float, high: Float) -> Vec<Float> {
        (0..len).map(|_| self.uniform(low, high)).collect()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = TensorRng::new(42);
        let mut b = TensorRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = TensorRng::new(1);
        let mut x = root.fork("weights");
        let mut y = root.fork("data");
        let xs: Vec<Float> = (0..16).map(|_| x.uniform(0.0, 1.0)).collect();
        let ys: Vec<Float> = (0..16).map(|_| y.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = TensorRng::new(9);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = TensorRng::new(11);
        let n = 20_000;
        let samples: Vec<Float> = (0..n).map(|_| rng.normal()).collect();
        let mean: Float = samples.iter().sum::<Float>() / n as Float;
        let var: Float = samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<Float>() / n as Float;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = TensorRng::new(17);
        let n = 20_000;
        let lambda = 0.5;
        let mean: Float = (0..n).map(|_| rng.exponential(lambda)).sum::<Float>() / n as Float;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_exceeds_min() {
        let mut rng = TensorRng::new(23);
        for _ in 0..1000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = TensorRng::new(31);
        for _ in 0..500 {
            let i = rng.weighted_index(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn xavier_bound() {
        let mut rng = TensorRng::new(37);
        let m = rng.xavier_matrix(64, 64);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(m.max_abs() <= bound + 1e-6);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TensorRng::new(41);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
