//! Descriptive statistics and histogram utilities.
//!
//! Used for two purposes in the reproduction:
//!
//! * Figure 1 of the paper — the Δt frequency histogram showing that the time
//!   encoder's input follows a power law ([`Histogram`]).
//! * The LUT-based time encoder (Section III-C) — the 128 bin boundaries are
//!   chosen so that each interval contains the same number of Δt occurrences
//!   ([`equal_frequency_edges`]).

use crate::Float;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: Float,
    pub std_dev: Float,
    pub min: Float,
    pub max: Float,
    pub median: Float,
    pub p95: Float,
    pub p99: Float,
}

/// Computes summary statistics; returns `None` for an empty slice.
pub fn summarize(values: &[Float]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let count = values.len();
    let mean = values.iter().sum::<Float>() / count as Float;
    let var = values
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<Float>()
        / count as Float;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median: percentile_sorted(&sorted, 50.0),
        p95: percentile_sorted(&sorted, 95.0),
        p99: percentile_sorted(&sorted, 99.0),
    })
}

/// Percentile (nearest-rank with linear interpolation) of an already-sorted
/// slice.  `p` is in `[0, 100]`.
pub fn percentile_sorted(sorted: &[Float], p: Float) -> Float {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as Float;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as Float;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted slice.
pub fn percentile(values: &[Float], p: Float) -> Float {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

/// Cosine similarity between two equally-sized slices (0 if either is the
/// zero vector).  The canonical implementation behind
/// [`crate::ops::cosine_similarity`]; lives here with the other comparison
/// statistics used by the quantization accuracy harness and the equivalence
/// tests.
///
/// # Panics
/// Panics if lengths differ.
pub fn cosine_similarity(a: &[Float], b: &[Float]) -> Float {
    assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let dot: Float = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: Float = a.iter().map(|&x| x * x).sum::<Float>().sqrt();
    let nb: Float = b.iter().map(|&x| x * x).sum::<Float>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// [`cosine_similarity`] with the degenerate cases resolved for *agreement*
/// checks: two near-zero vectors agree perfectly (1.0), a near-zero vector
/// against a non-zero one disagrees maximally (0.0).  Use this when scoring
/// how well an approximation (e.g. the int8 path) tracks a reference —
/// cold-start embeddings are exactly zero on both sides and must not read
/// as disagreement.
pub fn cosine_agreement(a: &[Float], b: &[Float]) -> Float {
    assert_eq!(a.len(), b.len(), "cosine_agreement: length mismatch");
    let na: Float = a.iter().map(|&x| x * x).sum::<Float>().sqrt();
    let nb: Float = b.iter().map(|&x| x * x).sum::<Float>().sqrt();
    const EPS: Float = 1e-12;
    if na <= EPS && nb <= EPS {
        return 1.0;
    }
    if na <= EPS || nb <= EPS {
        return 0.0;
    }
    let dot: Float = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    dot / (na * nb)
}

/// Largest absolute elementwise difference between two equally-sized slices
/// (0 for empty slices).
///
/// # Panics
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[Float], b: &[Float]) -> Float {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, Float::max)
}

/// Fixed-width histogram over `[min, max]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    min: Float,
    max: Float,
    counts: Vec<u64>,
    /// Samples that fell outside `[min, max]`.
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[min, max]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `max <= min`.
    pub fn new(min: Float, max: Float, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: need at least one bin");
        assert!(max > min, "Histogram: max must exceed min");
        Self {
            min,
            max,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds a sample.
    pub fn add(&mut self, value: Float) {
        if !value.is_finite() || value < self.min || value > self.max {
            self.outliers += 1;
            return;
        }
        let width = (self.max - self.min) / self.counts.len() as Float;
        let mut bin = ((value - self.min) / width) as usize;
        if bin >= self.counts.len() {
            bin = self.counts.len() - 1;
        }
        self.counts[bin] += 1;
    }

    /// Adds many samples.
    pub fn add_all(&mut self, values: &[Float]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of out-of-range samples.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> Float {
        let width = (self.max - self.min) / self.counts.len() as Float;
        self.min + width * (i as Float + 0.5)
    }

    /// Returns `(bin_center, count)` pairs — the series plotted in Fig. 1.
    pub fn series(&self) -> Vec<(Float, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }
}

/// Computes `bins + 1` edges that split `values` into equal-frequency
/// intervals (each interval contains roughly the same number of samples).
/// This is exactly how the LUT time-encoder bins are chosen in the paper:
/// "we divide the range of the input Δt to 128 intervals with equal number
/// of Δt occurrences in each interval".
///
/// The returned edges are strictly increasing; duplicate quantiles caused by
/// heavily repeated values are collapsed, so the result may contain fewer
/// than `bins + 1` edges (but always at least 2).
///
/// # Panics
/// Panics if `values` is empty or `bins == 0`.
pub fn equal_frequency_edges(values: &[Float], bins: usize) -> Vec<Float> {
    assert!(!values.is_empty(), "equal_frequency_edges: empty input");
    assert!(bins > 0, "equal_frequency_edges: need at least one bin");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut edges = Vec::with_capacity(bins + 1);
    for i in 0..=bins {
        let q = 100.0 * i as Float / bins as Float;
        edges.push(percentile_sorted(&sorted, q));
    }
    // Deduplicate while preserving order, keep strictly increasing edges.
    let mut unique = Vec::with_capacity(edges.len());
    for e in edges {
        if unique.last().is_none_or(|&last| e > last) {
            unique.push(e);
        }
    }
    if unique.len() < 2 {
        // Degenerate: all values identical — synthesise a tiny interval.
        let v = unique[0];
        unique.push(v + 1.0);
    }
    unique
}

/// Finds the bin index for `value` given sorted edges (as produced by
/// [`equal_frequency_edges`]).  Values below the first edge map to bin 0 and
/// values above the last edge map to the last bin, mirroring the saturation
/// behaviour of the hardware LUT.
pub fn bin_index(edges: &[Float], value: Float) -> usize {
    assert!(edges.len() >= 2, "bin_index: need at least two edges");
    let nbins = edges.len() - 1;
    if value <= edges[0] {
        return 0;
    }
    if value >= edges[nbins] {
        return nbins - 1;
    }
    // Binary search for the interval containing `value`.
    let mut lo = 0usize;
    let mut hi = nbins;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if value >= edges[mid] {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-6);
        assert!((s.median - 3.0).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.0f32).sqrt()).abs() < 1e-5);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![0.0, 10.0];
        assert!((percentile(&v, 50.0) - 5.0).abs() < 1e-6);
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[7.0], 33.0), 7.0);
    }

    #[test]
    fn histogram_counts_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add_all(&[0.5, 1.5, 2.5, 9.9, 10.0, -1.0, 11.0, Float::NAN]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.counts()[0], 2); // 0.5 and 1.5
        assert_eq!(h.counts()[4], 2); // 9.9 and 10.0 (upper edge goes to last bin)
        assert!((h.bin_center(0) - 1.0).abs() < 1e-6);
        assert_eq!(h.series().len(), 5);
    }

    #[test]
    fn equal_frequency_edges_balance_counts() {
        // Power-law-like sample: most mass near zero.
        let values: Vec<Float> = (1..=1000).map(|i| 1.0 / i as Float).collect();
        let edges = equal_frequency_edges(&values, 10);
        assert!(edges.len() >= 2 && edges.len() <= 11 + 1);
        // Count how many values fall into each bin; counts should be roughly equal.
        let nbins = edges.len() - 1;
        let mut counts = vec![0usize; nbins];
        for &v in &values {
            counts[bin_index(&edges, v)] += 1;
        }
        let max = *counts.iter().max().unwrap() as Float;
        let min = *counts.iter().min().unwrap() as Float;
        assert!(max / min < 2.5, "counts too unbalanced: {:?}", counts);
    }

    #[test]
    fn equal_frequency_edges_handle_duplicates() {
        let values = vec![1.0; 50];
        let edges = equal_frequency_edges(&values, 8);
        assert!(edges.len() >= 2);
        assert!(edges.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn bin_index_saturates() {
        let edges = vec![0.0, 1.0, 2.0, 4.0];
        assert_eq!(bin_index(&edges, -5.0), 0);
        assert_eq!(bin_index(&edges, 0.5), 0);
        assert_eq!(bin_index(&edges, 1.0), 1);
        assert_eq!(bin_index(&edges, 3.9), 2);
        assert_eq!(bin_index(&edges, 100.0), 2);
    }
}
