//! Dense linear-algebra substrate for the TGNN co-design reproduction.
//!
//! The paper's model (TGN-attn) is built from a small set of dense kernels:
//! matrix–matrix and matrix–vector products (the GRU gates, the attention
//! query/key/value projections, the feature transformation), row-wise
//! softmax, and elementwise activations.  This crate provides those kernels
//! on a simple row-major [`Matrix`] type, with a blocked serial GEMM and a
//! [rayon]-parallel variant used for batched inference, plus the random
//! initialisation and descriptive-statistics helpers used by the dataset
//! generators and the LUT time-encoder calibration.
//!
//! The crate is deliberately dependency-light (no BLAS): every experiment in
//! the paper is reproduced with these kernels so that operation counts
//! reported by `tgnn-core::complexity` correspond one-to-one to the code that
//! actually runs.

pub mod gemm;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::TensorRng;

/// Crate-wide floating point type.  The paper uses IEEE fp32 on the FPGA
/// (each multiplier costs 3 DSPs, each accumulator 2), so the software
/// reference uses `f32` as well.
pub type Float = f32;

/// Absolute tolerance used by tests and gradient checks throughout the
/// workspace.
pub const TEST_EPS: Float = 1e-4;

/// Asserts that two floats are close, with a helpful message.
#[inline]
pub fn approx_eq(a: Float, b: Float, tol: Float) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    // Relative comparison for large magnitudes.
    diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-6, 1e-4));
        assert!(!approx_eq(1.0, 1.1, 1e-4));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e6, 1e6 + 50.0, 1e-4));
        assert!(!approx_eq(1e6, 1.1e6, 1e-4));
    }
}
