//! Dense linear-algebra substrate for the TGNN co-design reproduction.
//!
//! The paper's model (TGN-attn) is built from a small set of dense kernels:
//! matrix–matrix and matrix–vector products (the GRU gates, the attention
//! query/key/value projections, the feature transformation), row-wise
//! softmax, and elementwise activations.  This crate provides those kernels
//! on a simple row-major [`Matrix`] type, plus a reusable [`Workspace`]
//! scratch-buffer pool, and the random initialisation and
//! descriptive-statistics helpers used by the dataset generators and the LUT
//! time-encoder calibration.
//!
//! # Choosing a GEMM kernel
//!
//! | Kernel | Use when | Notes |
//! |---|---|---|
//! | [`gemm::matmul`] / [`gemm::matmul_into`] | reference / cold paths | cache-blocked triple loop; simplest; allocates its output |
//! | [`gemm::matmul_packed`] / [`gemm::matmul_packed_into`] | the hot path | packs B into `NR`-column panels (via [`Workspace`], allocation-free when warm) and runs a register-tiled `MR×NR` microkernel; ≥2× faster than `matmul` at attention-sized shapes (64–256) |
//! | [`gemm::matmul_packed_transb_into`] | `A·Bᵀ` with row-major B | what `Linear` layers need (`x·Wᵀ`); avoids materialising the transpose |
//! | [`gemm::par_matmul`] | single large products (≥64³) with no outer parallelism | rayon split over output rows; don't nest it inside per-vertex parallelism |
//! | [`gemm_i8::matmul_i8_dequant_into`] | the int8 inference path | i8×i8→i32 accumulate on packed weight panels with a dequant-fused f32 epilogue; AVX2 `maddubs` dispatch, exact scalar fallback |
//!
//! All kernels accumulate every output element in strictly ascending-`k`
//! order with a single accumulator, so they are interchangeable without
//! perturbing results — the engine's deterministic serial mode relies on
//! this.
//!
//! The crate is deliberately dependency-light (no BLAS): every experiment in
//! the paper is reproduced with these kernels so that operation counts
//! reported by `tgnn-core::complexity` correspond one-to-one to the code that
//! actually runs.

pub mod gemm;
pub mod gemm_i8;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;
pub mod workspace;

pub use matrix::Matrix;
pub use rng::TensorRng;
pub use workspace::Workspace;

/// Crate-wide floating point type.  The paper uses IEEE fp32 on the FPGA
/// (each multiplier costs 3 DSPs, each accumulator 2), so the software
/// reference uses `f32` as well.
pub type Float = f32;

/// Absolute tolerance used by tests and gradient checks throughout the
/// workspace.
pub const TEST_EPS: Float = 1e-4;

/// Asserts that two floats are close, with a helpful message.
#[inline]
pub fn approx_eq(a: Float, b: Float, tol: Float) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    // Relative comparison for large magnitudes.
    diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-6, 1e-4));
        assert!(!approx_eq(1.0, 1.1, 1e-4));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e6, 1e6 + 50.0, 1e-4));
        assert!(!approx_eq(1e6, 1.1e6, 1e-4));
    }
}
