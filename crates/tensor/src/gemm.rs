//! Matrix multiplication kernels.
//!
//! Two variants are provided:
//!
//! * [`matmul`] — cache-blocked serial kernel used for small per-vertex
//!   products (the common case at inference: batch rows in the tens).
//! * [`par_matmul`] — rayon-parallel kernel splitting over output rows, used
//!   for large batched products during training and for the 32-thread CPU
//!   baseline measurements.
//!
//! Both produce bit-identical results because each output element is
//! accumulated in the same order (k-inner loop), which keeps the software
//! reference deterministic — a property the integration tests rely on when
//! comparing the reference model with the accelerator simulator.

use crate::{Float, Matrix};
use rayon::prelude::*;

/// Cache-block edge (in elements) for the serial kernel.
const BLOCK: usize = 64;

/// Serial blocked matrix product `A (m×k) · B (k×n) -> C (m×n)`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    matmul_into(a, b, &mut c);
    c
}

/// Serial blocked matrix product writing into a pre-allocated output.
///
/// # Panics
/// Panics if shapes disagree.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul_into: inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "matmul_into: output shape mismatch");
    c.as_mut_slice().fill(0.0);

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let a_row = &a_data[i * k..(i + 1) * k];
                let c_row = &mut c_data[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for j in 0..n {
                        c_row[j] += aik * b_row[j];
                    }
                }
            }
        }
    }
}

/// Rayon-parallel matrix product, parallelised over blocks of output rows.
///
/// Falls back to the serial kernel for small problems where the spawn
/// overhead dominates.
pub fn par_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "par_matmul: inner dimension mismatch");

    // Small problems: not worth parallelising.
    if m * n * k < 64 * 64 * 64 {
        return matmul(a, b);
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let mut c = Matrix::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, c_row)| {
            let a_row = &a_data[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for j in 0..n {
                    c_row[j] += aik * b_row[j];
                }
            }
        });
    c
}

/// Matrix–vector product `A (m×k) · x (k) -> y (m)`.
///
/// # Panics
/// Panics if `x.len() != a.cols()`.
pub fn matvec(a: &Matrix, x: &[Float]) -> Vec<Float> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    (0..a.rows()).map(|i| dot(a.row(i), x)).collect()
}

/// Vector–matrix product `x (m) · A (m×n) -> y (n)`; equivalent to
/// `Aᵀ · x` but avoids materialising the transpose.
pub fn vecmat(x: &[Float], a: &Matrix) -> Vec<Float> {
    assert_eq!(a.rows(), x.len(), "vecmat: dimension mismatch");
    let n = a.cols();
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = a.row(i);
        for j in 0..n {
            y[j] += xi * row[j];
        }
    }
    y
}

/// Dot product of two equally-sized slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[Float], b: &[Float]) -> Float {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Outer product `x (m) ⊗ y (n) -> M (m×n)`.
pub fn outer(x: &[Float], y: &[Float]) -> Matrix {
    let mut out = Matrix::zeros(x.len(), y.len());
    for (i, &xi) in x.iter().enumerate() {
        let row = out.row_mut(i);
        for (j, &yj) in y.iter().enumerate() {
            row[j] = xi * yj;
        }
    }
    out
}

/// `y += alpha * x`, the BLAS axpy primitive.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: Float, x: &[Float], y: &mut [Float]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = TensorRng::new(7);
        for &(m, k, n) in &[(3, 5, 4), (17, 33, 9), (70, 70, 70), (1, 128, 1)] {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let b = rng.uniform_matrix(k, n, -1.0, 1.0);
            let c = matmul(&a, &b);
            let reference = naive_matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert!((c[(i, j)] - reference[(i, j)]).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn par_matmul_matches_serial() {
        let mut rng = TensorRng::new(13);
        let a = rng.uniform_matrix(80, 96, -1.0, 1.0);
        let b = rng.uniform_matrix(96, 72, -1.0, 1.0);
        let serial = matmul(&a, &b);
        let parallel = par_matmul(&a, &b);
        for i in 0..serial.rows() {
            for j in 0..serial.cols() {
                assert_eq!(serial[(i, j)], parallel[(i, j)], "determinism violated");
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::new(3);
        let a = rng.uniform_matrix(6, 6, -2.0, 2.0);
        let eye = Matrix::identity(6);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matvec_and_vecmat_consistent_with_matmul() {
        let mut rng = TensorRng::new(5);
        let a = rng.uniform_matrix(4, 7, -1.0, 1.0);
        let x: Vec<Float> = (0..7).map(|i| i as Float * 0.5).collect();
        let y = matvec(&a, &x);
        let x_col = Matrix::from_vec(7, 1, x.clone());
        let y_ref = matmul(&a, &x_col);
        for i in 0..4 {
            assert!((y[i] - y_ref[(i, 0)]).abs() < 1e-5);
        }

        let z: Vec<Float> = (0..4).map(|i| 1.0 - i as Float).collect();
        let w = vecmat(&z, &a);
        let z_row = Matrix::from_vec(1, 4, z);
        let w_ref = matmul(&z_row, &a);
        for j in 0..7 {
            assert!((w[j] - w_ref[(0, j)]).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_outer_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let m = outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
