//! Matrix multiplication kernels.
//!
//! Four variants are provided:
//!
//! * [`matmul`] — cache-blocked serial kernel, kept as the simple reference
//!   implementation the others are validated against.
//! * [`matmul_packed`] / [`matmul_packed_into`] — the inference hot-path
//!   kernel: B is packed into contiguous `NR`-column panels (through a
//!   [`Workspace`] so the hot path never allocates) and the inner loop is a
//!   register-tiled `MR×NR` microkernel.  [`matmul_packed_transb_into`]
//!   computes `A·Bᵀ` directly from a row-major B (the layout `Linear` stores
//!   its weights in) without materialising the transpose.
//! * [`par_matmul`] — rayon-parallel kernel splitting over output rows, used
//!   for large batched products during training and for the 32-thread CPU
//!   baseline measurements.
//!
//! All variants produce bit-identical results for the same inputs because
//! each output element is accumulated in strictly ascending-`k` order with a
//! single accumulator, which keeps the software reference deterministic — a
//! property the integration tests rely on when comparing the reference model
//! with the accelerator simulator, and which lets the optimized engine swap
//! kernels without perturbing embeddings.  (The sole caveat: kernels that
//! skip zero `A` elements can differ in the *sign* of an exactly-zero output;
//! the packed kernels never skip, matching the naive triple loop exactly.)

use crate::workspace::Workspace;
use crate::{Float, Matrix};
use rayon::prelude::*;

/// Cache-block edge (in elements) for the serial kernel.
const BLOCK: usize = 64;

/// Serial blocked matrix product `A (m×k) · B (k×n) -> C (m×n)`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    matmul_into(a, b, &mut c);
    c
}

/// Serial blocked matrix product writing into a pre-allocated output.
///
/// # Panics
/// Panics if shapes disagree.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul_into: inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "matmul_into: output shape mismatch");
    c.as_mut_slice().fill(0.0);

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let a_row = &a_data[i * k..(i + 1) * k];
                let c_row = &mut c_data[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for j in 0..n {
                        c_row[j] += aik * b_row[j];
                    }
                }
            }
        }
    }
}

/// Rayon-parallel matrix product, parallelised over blocks of output rows.
///
/// Falls back to the serial kernel for small problems where the spawn
/// overhead dominates.
pub fn par_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "par_matmul: inner dimension mismatch");

    // Small problems: not worth parallelising.
    if m * n * k < 64 * 64 * 64 {
        return matmul(a, b);
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let mut c = Matrix::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, c_row)| {
            let a_row = &a_data[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for j in 0..n {
                    c_row[j] += aik * b_row[j];
                }
            }
        });
    c
}

/// Microkernel tile height (rows of A per register tile).
pub const MR: usize = 4;
/// Microkernel tile width (columns of B per packed panel); 8 `f32` lanes fill
/// one 256-bit vector register.
pub const NR: usize = 8;

/// Packs `B` (`k×n`, row-major) into `⌈n/NR⌉` contiguous column panels laid
/// out `panel-major → k → lane`, zero-padding the last panel's missing lanes.
/// When `TRANS` is true the source is interpreted as `Bᵀ` stored row-major
/// (`n×k`), i.e. element `(kk, j)` is read from `b[j*k + kk]`.
fn pack_b_panels<const TRANS: bool>(b: &[Float], k: usize, n: usize, packed: &mut [Float]) {
    let panels = n.div_ceil(NR);
    debug_assert!(packed.len() >= panels * k * NR);
    for p in 0..panels {
        let j0 = p * NR;
        let width = NR.min(n - j0);
        let dst_panel = &mut packed[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            let dst = &mut dst_panel[kk * NR..kk * NR + NR];
            if TRANS {
                for j in 0..width {
                    dst[j] = b[(j0 + j) * k + kk];
                }
            } else {
                dst[..width].copy_from_slice(&b[kk * n + j0..kk * n + j0 + width]);
            }
            dst[width..].fill(0.0);
        }
    }
}

/// `TILE_M×NR` register-tiled microkernel: accumulates
/// `C[i0..i0+TILE_M, j0..j0+width] = A[i0..i0+TILE_M, :] · panel` with one
/// accumulator per output element and `k` strictly ascending — bit-identical
/// to the naive triple loop, but with the whole tile held in registers and
/// the `NR` lanes vectorised.  `TILE_M` is a const generic so every tile
/// height gets a fully unrolled register allocation.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_kernel<const TILE_M: usize>(
    a: &[Float],
    k: usize,
    i0: usize,
    panel: &[Float],
    c: &mut [Float],
    n: usize,
    j0: usize,
    width: usize,
) {
    let mut a_rows: [&[Float]; TILE_M] = [&[]; TILE_M];
    for (i, row) in a_rows.iter_mut().enumerate() {
        *row = &a[(i0 + i) * k..(i0 + i) * k + k];
    }
    let mut acc = [[0.0 as Float; NR]; TILE_M];
    for kk in 0..k {
        let b_lane: &[Float; NR] = panel[kk * NR..kk * NR + NR].try_into().unwrap();
        for i in 0..TILE_M {
            let aik = a_rows[i][kk];
            for j in 0..NR {
                acc[i][j] += aik * b_lane[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        let c_row = &mut c[(i0 + i) * n + j0..(i0 + i) * n + j0 + width];
        c_row.copy_from_slice(&acc_row[..width]);
    }
}

/// Runs the packed microkernel over all row/panel tiles of `C = A·panels`,
/// dispatching to an AVX2-compiled copy of the loop when the CPU supports it.
///
/// The AVX2 path is the same Rust code compiled with 256-bit vectors enabled:
/// per lane it still performs a scalar multiply followed by a scalar add (no
/// FMA contraction), so its results are bit-identical to the portable path
/// and to the naive triple loop.
fn packed_gemm_loop(a: &[Float], m: usize, k: usize, n: usize, packed: &[Float], c: &mut [Float]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime just above.
            unsafe { packed_gemm_loop_avx2(a, m, k, n, packed, c) };
            return;
        }
    }
    packed_gemm_loop_portable(a, m, k, n, packed, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn packed_gemm_loop_avx2(
    a: &[Float],
    m: usize,
    k: usize,
    n: usize,
    packed: &[Float],
    c: &mut [Float],
) {
    packed_gemm_loop_portable(a, m, k, n, packed, c);
}

#[inline(always)]
fn packed_gemm_loop_portable(
    a: &[Float],
    m: usize,
    k: usize,
    n: usize,
    packed: &[Float],
    c: &mut [Float],
) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let width = NR.min(n - j0);
        let panel = &packed[p * k * NR..(p + 1) * k * NR];
        let mut i0 = 0;
        while i0 + MR <= m {
            micro_kernel::<MR>(a, k, i0, panel, c, n, j0, width);
            i0 += MR;
        }
        match m - i0 {
            1 => micro_kernel::<1>(a, k, i0, panel, c, n, j0, width),
            2 => micro_kernel::<2>(a, k, i0, panel, c, n, j0, width),
            3 => micro_kernel::<3>(a, k, i0, panel, c, n, j0, width),
            _ => {}
        }
    }
}

/// Packed register-tiled matrix product `A (m×k) · B (k×n) -> C (m×n)`,
/// allocating only through the workspace (allocation-free once warm).
///
/// Prefer this over [`matmul`] on the inference hot path; see the crate docs
/// for kernel-selection guidance.
pub fn matmul_packed(a: &Matrix, b: &Matrix, ws: &mut Workspace) -> Matrix {
    let mut c = ws.take_matrix(a.rows(), b.cols());
    matmul_packed_into(a, b, &mut c, ws);
    c
}

/// [`matmul_packed`] writing into a pre-allocated output.
///
/// # Panics
/// Panics if shapes disagree.
pub fn matmul_packed_into(a: &Matrix, b: &Matrix, c: &mut Matrix, ws: &mut Workspace) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul_packed_into: inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (m, n),
        "matmul_packed_into: output shape mismatch"
    );
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.as_mut_slice().fill(0.0);
        return;
    }
    let packed_len = n.div_ceil(NR) * k * NR;
    let packed = ws.pack_buffer(packed_len);
    pack_b_panels::<false>(b.as_slice(), k, n, packed);
    packed_gemm_loop(a.as_slice(), m, k, n, packed, c.as_mut_slice());
}

/// Packed product `A (m×k) · Bᵀ -> C (m×n)` where `bt` is B transposed,
/// stored row-major as `n×k` — the layout [`crate::Matrix`] weights use in
/// `Linear` (`out_dim × in_dim`).  Equivalent to
/// `matmul(a, &bt.transpose())` (bit-identical) without materialising the
/// transpose.
pub fn matmul_packed_transb_into(a: &Matrix, bt: &Matrix, c: &mut Matrix, ws: &mut Workspace) {
    let (m, k) = a.shape();
    let n = bt.rows();
    assert_eq!(
        k,
        bt.cols(),
        "matmul_packed_transb_into: inner dimension mismatch"
    );
    assert_eq!(
        c.shape(),
        (m, n),
        "matmul_packed_transb_into: output shape mismatch"
    );
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.as_mut_slice().fill(0.0);
        return;
    }
    let packed_len = n.div_ceil(NR) * k * NR;
    let packed = ws.pack_buffer(packed_len);
    pack_b_panels::<true>(bt.as_slice(), k, n, packed);
    packed_gemm_loop(a.as_slice(), m, k, n, packed, c.as_mut_slice());
}

/// Convenience wrapper for [`matmul_packed_transb_into`] taking the output
/// from the workspace.
pub fn matmul_packed_transb(a: &Matrix, bt: &Matrix, ws: &mut Workspace) -> Matrix {
    let mut c = ws.take_matrix(a.rows(), bt.rows());
    matmul_packed_transb_into(a, bt, &mut c, ws);
    c
}

/// Matrix–vector product `A (m×k) · x (k) -> y (m)`.
///
/// # Panics
/// Panics if `x.len() != a.cols()`.
pub fn matvec(a: &Matrix, x: &[Float]) -> Vec<Float> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    (0..a.rows()).map(|i| dot(a.row(i), x)).collect()
}

/// Allocation-free [`matvec`] writing into a pre-sized output slice.
///
/// # Panics
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn matvec_into(a: &Matrix, x: &[Float], y: &mut [Float]) {
    assert_eq!(a.cols(), x.len(), "matvec_into: dimension mismatch");
    assert_eq!(a.rows(), y.len(), "matvec_into: output length mismatch");
    for (i, out) in y.iter_mut().enumerate() {
        *out = dot(a.row(i), x);
    }
}

/// Vector–matrix product `x (m) · A (m×n) -> y (n)`; equivalent to
/// `Aᵀ · x` but avoids materialising the transpose.
pub fn vecmat(x: &[Float], a: &Matrix) -> Vec<Float> {
    assert_eq!(a.rows(), x.len(), "vecmat: dimension mismatch");
    let n = a.cols();
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = a.row(i);
        for j in 0..n {
            y[j] += xi * row[j];
        }
    }
    y
}

/// Dot product of two equally-sized slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[Float], b: &[Float]) -> Float {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Outer product `x (m) ⊗ y (n) -> M (m×n)`.
pub fn outer(x: &[Float], y: &[Float]) -> Matrix {
    let mut out = Matrix::zeros(x.len(), y.len());
    for (i, &xi) in x.iter().enumerate() {
        let row = out.row_mut(i);
        for (j, &yj) in y.iter().enumerate() {
            row[j] = xi * yj;
        }
    }
    out
}

/// `y += alpha * x`, the BLAS axpy primitive.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: Float, x: &[Float], y: &mut [Float]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = TensorRng::new(7);
        for &(m, k, n) in &[(3, 5, 4), (17, 33, 9), (70, 70, 70), (1, 128, 1)] {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let b = rng.uniform_matrix(k, n, -1.0, 1.0);
            let c = matmul(&a, &b);
            let reference = naive_matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert!((c[(i, j)] - reference[(i, j)]).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn par_matmul_matches_serial() {
        let mut rng = TensorRng::new(13);
        let a = rng.uniform_matrix(80, 96, -1.0, 1.0);
        let b = rng.uniform_matrix(96, 72, -1.0, 1.0);
        let serial = matmul(&a, &b);
        let parallel = par_matmul(&a, &b);
        for i in 0..serial.rows() {
            for j in 0..serial.cols() {
                assert_eq!(serial[(i, j)], parallel[(i, j)], "determinism violated");
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TensorRng::new(3);
        let a = rng.uniform_matrix(6, 6, -2.0, 2.0);
        let eye = Matrix::identity(6);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matvec_and_vecmat_consistent_with_matmul() {
        let mut rng = TensorRng::new(5);
        let a = rng.uniform_matrix(4, 7, -1.0, 1.0);
        let x: Vec<Float> = (0..7).map(|i| i as Float * 0.5).collect();
        let y = matvec(&a, &x);
        let x_col = Matrix::from_vec(7, 1, x.clone());
        let y_ref = matmul(&a, &x_col);
        for i in 0..4 {
            assert!((y[i] - y_ref[(i, 0)]).abs() < 1e-5);
        }

        let z: Vec<Float> = (0..4).map(|i| 1.0 - i as Float).collect();
        let w = vecmat(&z, &a);
        let z_row = Matrix::from_vec(1, 4, z);
        let w_ref = matmul(&z_row, &a);
        for j in 0..7 {
            assert!((w[j] - w_ref[(0, j)]).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_outer_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let m = outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    /// Shapes deliberately off every tile boundary: single elements, primes,
    /// exact multiples of MR/NR, one-over and one-under.
    const ODD_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 128, 1),
        (1, 5, 1),
        (2, 3, 2),
        (3, 7, 5),
        (4, 8, 8),
        (5, 9, 7),
        (7, 1, 13),
        (8, 16, 24),
        (9, 17, 25),
        (13, 64, 1),
        (17, 33, 9),
        (31, 47, 61),
        (64, 64, 64),
        (65, 63, 66),
    ];

    #[test]
    fn matmul_packed_is_bitwise_equal_to_naive_across_odd_shapes() {
        let mut rng = TensorRng::new(77);
        let mut ws = Workspace::new();
        for &(m, k, n) in ODD_SHAPES {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let b = rng.uniform_matrix(k, n, -1.0, 1.0);
            let reference = naive_matmul(&a, &b);
            let packed = matmul_packed(&a, &b, &mut ws);
            assert_eq!(
                packed.as_slice(),
                reference.as_slice(),
                "packed kernel diverged from naive at {m}x{k}x{n}"
            );
            ws.recycle_matrix(packed);

            let mut c = Matrix::full(m, n, 42.0); // stale contents must be overwritten
            matmul_packed_into(&a, &b, &mut c, &mut ws);
            assert_eq!(
                c.as_slice(),
                reference.as_slice(),
                "into variant at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_packed_transb_matches_explicit_transpose() {
        let mut rng = TensorRng::new(78);
        let mut ws = Workspace::new();
        for &(m, k, n) in ODD_SHAPES {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let bt = rng.uniform_matrix(n, k, -1.0, 1.0); // B transposed, row-major
            let reference = naive_matmul(&a, &bt.transpose());
            let mut c = ws.take_matrix(m, n);
            matmul_packed_transb_into(&a, &bt, &mut c, &mut ws);
            assert_eq!(
                c.as_slice(),
                reference.as_slice(),
                "transb kernel at {m}x{k}x{n}"
            );
            ws.recycle_matrix(c);
        }
    }

    #[test]
    fn matmul_packed_handles_degenerate_dimensions() {
        let mut ws = Workspace::new();
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul_packed(&a, &b, &mut ws).shape(), (0, 3));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let c = matmul_packed(&a, &b, &mut ws);
        assert_eq!(c.shape(), (3, 4));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
        let a = Matrix::zeros(2, 5);
        let b = Matrix::zeros(5, 0);
        assert_eq!(matmul_packed(&a, &b, &mut ws).shape(), (2, 0));
    }

    #[test]
    fn workspace_reuse_never_leaks_state_between_calls() {
        let mut rng = TensorRng::new(79);
        let mut ws = Workspace::new();
        // Interleave two different problem shapes through one workspace many
        // times; every result must equal a fresh-workspace computation, i.e.
        // nothing of a previous call's packing or output may bleed through.
        let a1 = rng.uniform_matrix(11, 23, -1.0, 1.0);
        let b1 = rng.uniform_matrix(23, 17, -1.0, 1.0);
        let a2 = rng.uniform_matrix(5, 40, -1.0, 1.0);
        let b2 = rng.uniform_matrix(40, 9, -1.0, 1.0);
        let expect1 = naive_matmul(&a1, &b1);
        let expect2 = naive_matmul(&a2, &b2);
        for round in 0..10 {
            let c1 = matmul_packed(&a1, &b1, &mut ws);
            assert_eq!(c1.as_slice(), expect1.as_slice(), "round {round} shape 1");
            ws.recycle_matrix(c1);
            let c2 = matmul_packed(&a2, &b2, &mut ws);
            assert_eq!(c2.as_slice(), expect2.as_slice(), "round {round} shape 2");
            ws.recycle_matrix(c2);
        }
    }

    #[test]
    fn packed_gemm_steady_state_does_not_allocate() {
        let mut rng = TensorRng::new(80);
        let mut ws = Workspace::new();
        let a = rng.uniform_matrix(48, 96, -1.0, 1.0);
        let b = rng.uniform_matrix(96, 32, -1.0, 1.0);
        // Warm-up grows the pool and pack buffer.
        for _ in 0..2 {
            let c = matmul_packed(&a, &b, &mut ws);
            ws.recycle_matrix(c);
        }
        let warm = ws.heap_allocs();
        for _ in 0..50 {
            let c = matmul_packed(&a, &b, &mut ws);
            ws.recycle_matrix(c);
        }
        assert_eq!(
            ws.heap_allocs(),
            warm,
            "steady-state GEMM must not allocate"
        );
    }
}
