//! Elementwise operations, activations, and row-wise softmax.
//!
//! These cover the nonlinearities of the GRU memory updater (sigmoid/tanh,
//! Eq. 7–10 of the paper), the attention softmax (Eq. 15/16), and the small
//! vector utilities the model and accelerator simulator share.

use crate::{Float, Matrix};

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: Float) -> Float {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its output `s`.
#[inline]
pub fn sigmoid_grad_from_output(s: Float) -> Float {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(x: Float) -> Float {
    x.tanh()
}

/// Derivative of tanh expressed in terms of its output `t`.
#[inline]
pub fn tanh_grad_from_output(t: Float) -> Float {
    1.0 - t * t
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: Float) -> Float {
    x.max(0.0)
}

/// Elementwise sigmoid over a matrix.
pub fn sigmoid_matrix(m: &Matrix) -> Matrix {
    m.map(sigmoid)
}

/// Elementwise tanh over a matrix.
pub fn tanh_matrix(m: &Matrix) -> Matrix {
    m.map(tanh)
}

/// Numerically-stable softmax of a slice, written into a new vector.
/// Returns a uniform distribution for an empty or all-`-inf` input.
pub fn softmax(logits: &[Float]) -> Vec<Float> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(Float::NEG_INFINITY, Float::max);
    if !max.is_finite() {
        return vec![1.0 / logits.len() as Float; logits.len()];
    }
    let exps: Vec<Float> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: Float = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Softmax applied independently to every row of a matrix.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        let row = softmax(m.row(i));
        out.row_mut(i).copy_from_slice(&row);
    }
    out
}

/// Log-softmax of a slice (stable).
pub fn log_softmax(logits: &[Float]) -> Vec<Float> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(Float::NEG_INFINITY, Float::max);
    let log_sum: Float = logits.iter().map(|&x| (x - max).exp()).sum::<Float>().ln() + max;
    logits.iter().map(|&x| x - log_sum).collect()
}

/// Elementwise addition of two equally shaped matrices.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    a.zip(b, |x, y| x + y)
}

/// Elementwise subtraction `a - b`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    a.zip(b, |x, y| x - y)
}

/// Elementwise (Hadamard) product.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    a.zip(b, |x, y| x * y)
}

/// Scales every element by `alpha`.
pub fn scale(a: &Matrix, alpha: Float) -> Matrix {
    a.map(|x| alpha * x)
}

/// Adds a row vector (bias) to every row of the matrix.
///
/// # Panics
/// Panics if `bias.len() != m.cols()`.
pub fn add_row_broadcast(m: &Matrix, bias: &[Float]) -> Matrix {
    assert_eq!(m.cols(), bias.len(), "add_row_broadcast: length mismatch");
    let mut out = m.clone();
    for i in 0..out.rows() {
        for (v, &b) in out.row_mut(i).iter_mut().zip(bias.iter()) {
            *v += b;
        }
    }
    out
}

/// In-place `a += b` for equally shaped matrices.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign: shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// Weighted sum of rows: `Σ_i w[i] * m.row(i)`, the feature-aggregation
/// primitive of the Embedding Unit's FAM module.
///
/// # Panics
/// Panics if `weights.len() != m.rows()`.
pub fn weighted_row_sum(m: &Matrix, weights: &[Float]) -> Vec<Float> {
    assert_eq!(m.rows(), weights.len(), "weighted_row_sum: length mismatch");
    let mut acc = vec![0.0; m.cols()];
    for (i, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for (a, &x) in acc.iter_mut().zip(m.row(i)) {
            *a += w * x;
        }
    }
    acc
}

/// Squared L2 distance between two slices.
pub fn squared_distance(a: &[Float], b: &[Float]) -> Float {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Cosine similarity between two slices (0 if either is the zero vector).
/// Re-exported from [`crate::stats`], where the comparison statistics live.
pub use crate::stats::cosine_similarity;

/// Returns the indices of the `k` largest values, in descending value order.
/// Ties are broken by the lower index.  Used by the temporal-neighbor pruning
/// strategy (Section III-B) to keep the neighbors with the top attention
/// logits.
pub fn top_k_indices(values: &[Float], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(values.len()));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn sigmoid_properties() {
        assert!(approx_eq(sigmoid(0.0), 0.5, 1e-6));
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        // derivative identity
        let s = sigmoid(0.7);
        assert!(approx_eq(sigmoid_grad_from_output(s), s * (1.0 - s), 1e-7));
    }

    #[test]
    fn tanh_grad_identity() {
        let t = tanh(0.3);
        assert!(approx_eq(tanh_grad_from_output(t), 1.0 - t * t, 1e-7));
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let logits = vec![1.0, 2.0, 3.0, -5.0];
        let p = softmax(&logits);
        let sum: Float = p.iter().sum();
        assert!(approx_eq(sum, 1.0, 1e-6));

        let shifted: Vec<Float> = logits.iter().map(|&x| x + 100.0).collect();
        let p2 = softmax(&shifted);
        for (a, b) in p.iter().zip(p2.iter()) {
            assert!(approx_eq(*a, *b, 1e-5));
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[1e30, -1e30]);
        assert!(p[0] > 0.999 && p[1] < 0.001);
        assert!(softmax(&[]).is_empty());
        let single = softmax(&[42.0]);
        assert!(approx_eq(single[0], 1.0, 1e-6));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = vec![0.3, -1.2, 2.5];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(lp.iter()) {
            assert!(approx_eq(a.ln(), *b, 1e-5));
        }
    }

    #[test]
    fn softmax_rows_each_row_normalised() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        let s = softmax_rows(&m);
        for i in 0..2 {
            let sum: Float = s.row(i).iter().sum();
            assert!(approx_eq(sum, 1.0, 1e-6));
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        assert_eq!(add(&a, &b)[(1, 1)], 12.0);
        assert_eq!(sub(&b, &a)[(0, 0)], 4.0);
        assert_eq!(hadamard(&a, &b)[(1, 0)], 21.0);
        assert_eq!(scale(&a, 2.0)[(0, 1)], 4.0);
        let biased = add_row_broadcast(&a, &[10.0, 20.0]);
        assert_eq!(biased[(1, 1)], 24.0);
        let mut c = a.clone();
        add_assign(&mut c, &b);
        assert_eq!(c, add(&a, &b));
    }

    #[test]
    fn weighted_row_sum_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let out = weighted_row_sum(&m, &[0.5, 0.25, 0.25]);
        assert!(approx_eq(out[0], 0.75, 1e-6));
        assert!(approx_eq(out[1], 0.5, 1e-6));
    }

    #[test]
    fn top_k_orders_by_value_then_index() {
        let v = vec![0.1, 0.9, 0.5, 0.9, 0.2];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&v, 10).len(), 5);
        assert!(top_k_indices(&v, 0).is_empty());
    }

    #[test]
    fn similarity_measures() {
        assert!(approx_eq(
            cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]),
            1.0,
            1e-6
        ));
        assert!(approx_eq(
            cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]),
            0.0,
            1e-6
        ));
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!(approx_eq(
            squared_distance(&[1.0, 2.0], &[3.0, 0.0]),
            8.0,
            1e-6
        ));
    }
}
