//! Packed int8 matrix-multiplication kernel with a dequantizing f32 epilogue
//! — the CPU analogue of the FPGA's fixed-point datapath.
//!
//! The paper's accelerator runs its multiply-accumulate arrays on low-
//! precision fixed-point values; on a CPU the same trick quadruples the
//! values per SIMD lane and quarters the memory traffic of the weight
//! panels, which is exactly what bounds the f32 packed kernel at attention
//! sizes.  The kernel computes
//!
//! ```text
//! C[i][j] = (Σ_k A_q[i][k] · B_q[j][k]) · scale[j] + bias[j]
//! ```
//!
//! where `A_q`/`B_q` are `i8` (activations / weights), the accumulation is
//! exact `i32`, and the epilogue fuses the dequantization (`scale[j]`
//! typically `a_scale · w_scale[j]`) and bias add so no intermediate i32
//! matrix is materialised.
//!
//! Layout contract (shared by the scalar and AVX2 paths, so both produce
//! **identical** results — integer accumulation is exact regardless of
//! vectorisation):
//!
//! * The right-hand side is the weight matrix in `Linear`'s natural
//!   `out_dim × in_dim` row-major layout (i.e. already transposed), packed by
//!   [`pack_rhs_i8`] into panels of [`NR_I8`] output columns × k-blocks of
//!   [`KB_I8`] values: within a k-block the 4 consecutive `k` values of one
//!   output column are adjacent bytes.  This is the byte order
//!   `maddubs`/`madd` reduce natively: 4 adjacent bytes → one i32 lane.
//! * The left-hand side rows are `i8` with a stride rounded up to a multiple
//!   of [`KB_I8`] and zero-padded (see [`padded_k`]), so the vector path can
//!   read whole 4-byte groups without a tail loop.
//!
//! The AVX2 path uses the standard `abs/sign` trick to feed the unsigned ×
//! signed `maddubs` instruction with two signed operands:
//! `maddubs(|a|, sign(b, a)) = a·b` per byte pair.  Because quantized values
//! are clamped to `[-127, 127]` (never −128), the intermediate i16 pair sums
//! are bounded by `2·127² = 32258 < 32767` and can never saturate, keeping
//! the vector path exactly equal to the scalar loop.

use crate::{Float, Matrix};

/// Output columns per packed panel (i32 lanes in one 256-bit register).
pub const NR_I8: usize = 8;
/// `k` values per block — the 4 adjacent bytes one `maddubs`+`madd` pair
/// reduces into a single i32 lane.
pub const KB_I8: usize = 4;

/// Quantized values are clamped to `±Q_MAX`; −128 is excluded so the AVX2
/// `abs/sign` trick and the i16 intermediate bound both hold.
pub const Q_MAX: i32 = 127;

/// `k` rounded up to a whole number of [`KB_I8`] blocks — the row stride
/// quantized activation buffers must use.
#[inline]
pub fn padded_k(k: usize) -> usize {
    k.div_ceil(KB_I8) * KB_I8
}

/// Length in bytes of the packed right-hand side for an `n × k` weight
/// matrix.
#[inline]
pub fn packed_rhs_len(n: usize, k: usize) -> usize {
    n.div_ceil(NR_I8) * padded_k(k) * NR_I8
}

/// Quantizes a f32 slice to saturating round-to-nearest i8 with the given
/// scale, writing `dst[..src.len()]` and zero-filling the rest (k padding).
///
/// Guarantees: output is always in `[-127, 127]`; non-finite inputs (NaN,
/// ±∞ overflowing the scale) saturate to 0 / ±127 — the output is never
/// garbage, matching the hardware's saturating converters.
///
/// # Panics
/// Panics if `dst` is shorter than `src` or `scale` is not positive.
pub fn quantize_slice_into(src: &[Float], scale: Float, dst: &mut [i8]) {
    assert!(dst.len() >= src.len(), "quantize_slice_into: dst too short");
    assert!(
        scale > 0.0 && scale.is_finite(),
        "quantize_slice_into: scale must be positive and finite"
    );
    let inv = 1.0 / scale;
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime just above.
            unsafe { quantize_slice_avx2(src, inv, dst) };
            dst[src.len()..].fill(0);
            return;
        }
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = quantize_value(x, inv);
    }
    dst[src.len()..].fill(0);
}

/// Vectorised [`quantize_value`] over a slice, 32 values per iteration —
/// activation quantization is on the int8 hot path once per element, so it
/// must not run scalar.  Produces exactly the scalar results: the same
/// `+±0.5` / truncate rounding, saturation to ±127 via a float clamp (NaN
/// lanes are zeroed first, so the clamp sees only ordered values), and the
/// final `packs` saturation can no longer engage.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_slice_avx2(src: &[Float], inv: Float, dst: &mut [i8]) {
    use std::arch::x86_64::*;

    let inv_v = _mm256_set1_ps(inv);
    let half = _mm256_set1_ps(0.5);
    let sign_mask = _mm256_set1_ps(-0.0);
    let qmax = _mm256_set1_ps(Q_MAX as Float);
    let qmin = _mm256_set1_ps(-(Q_MAX as Float));
    // packs_epi32/packs_epi16 interleave 128-bit lanes; this permutation
    // restores source order after both packs.
    let unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);

    // One 256-bit ymm of i8 output per iteration = 4 ymm of f32 input.
    let chunks = src.len() / 32;
    for c in 0..chunks {
        let mut quads = [_mm256_setzero_si256(); 4];
        for (q, quad) in quads.iter_mut().enumerate() {
            let v = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(c * 32 + q * 8)), inv_v);
            // r = v + copysign(0.5, v), the round-half-away-from-zero trick.
            let r = _mm256_add_ps(v, _mm256_or_ps(half, _mm256_and_ps(v, sign_mask)));
            // NaN → 0 (unordered-compare mask), then clamp to ±127 so ±∞ and
            // out-of-range values saturate exactly like the scalar cast.
            let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(v, v);
            let r = _mm256_andnot_ps(nan, r);
            let r = _mm256_min_ps(_mm256_max_ps(r, qmin), qmax);
            *quad = _mm256_cvttps_epi32(r);
        }
        let lo = _mm256_packs_epi32(quads[0], quads[1]);
        let hi = _mm256_packs_epi32(quads[2], quads[3]);
        let bytes = _mm256_packs_epi16(lo, hi);
        let ordered = _mm256_permutevar8x32_epi32(bytes, unshuffle);
        _mm256_storeu_si256(dst.as_mut_ptr().add(c * 32) as *mut __m256i, ordered);
    }
    for i in chunks * 32..src.len() {
        dst[i] = quantize_value(src[i], inv);
    }
}

/// Quantizes one value given the *inverse* scale: saturating
/// round-to-nearest (half away from zero), NaN → 0.
///
/// Branchless on purpose — activation quantization runs once per element on
/// the int8 hot path and must vectorise: rounding is `+±0.5` then truncation,
/// saturation and NaN → 0 come free with Rust's saturating `as` cast, and a
/// final integer max lifts −128 to −127 (the kernel's no-−128 invariant).
#[inline]
pub fn quantize_value(x: Float, inv_scale: Float) -> i8 {
    let v = x * inv_scale;
    let r = v + (0.5 as Float).copysign(v);
    (r as i8).max(-(Q_MAX as i8))
}

/// Packs the right-hand side `bt` (`n × k`, row-major — `Linear`'s
/// `out_dim × in_dim` weight layout) into `⌈n/NR_I8⌉` panels.
///
/// Panel byte order: `panel → k-block → lane j → 4 k values`, zero-padding
/// both the lane tail (`n % NR_I8`) and the k tail (`k % KB_I8`).
///
/// # Panics
/// Panics if `packed` is shorter than [`packed_rhs_len`]`(n, k)`.
pub fn pack_rhs_i8(bt: &[i8], n: usize, k: usize, packed: &mut [i8]) {
    assert!(bt.len() >= n * k, "pack_rhs_i8: rhs too short");
    let kp = padded_k(k);
    assert!(
        packed.len() >= packed_rhs_len(n, k),
        "pack_rhs_i8: packed buffer too short"
    );
    let panels = n.div_ceil(NR_I8);
    let panel_bytes = kp * NR_I8;
    for p in 0..panels {
        let j0 = p * NR_I8;
        let width = NR_I8.min(n - j0);
        let dst_panel = &mut packed[p * panel_bytes..(p + 1) * panel_bytes];
        dst_panel.fill(0);
        for kb in 0..kp / KB_I8 {
            let k0 = kb * KB_I8;
            let kw = KB_I8.min(k.saturating_sub(k0));
            let block = &mut dst_panel[kb * NR_I8 * KB_I8..(kb + 1) * NR_I8 * KB_I8];
            for j in 0..width {
                let src_row = &bt[(j0 + j) * k..(j0 + j) * k + k];
                let dst = &mut block[j * KB_I8..j * KB_I8 + KB_I8];
                dst[..kw].copy_from_slice(&src_row[k0..k0 + kw]);
            }
        }
    }
}

/// `C (m×n) = dequant(A_q (m×kp, i8) · packed_rhsᵀ) ⊙ scale + bias`, the
/// int8 inference GEMM.
///
/// * `a_q` — quantized activations, row stride `padded_k(k)`, zero-padded.
/// * `packed` — output of [`pack_rhs_i8`] for the `n × k` weight matrix.
/// * `scales` — per-output-column dequant factors (length `n`), typically
///   `a_scale · w_scale[j]`.
/// * `bias` — optional per-output-column f32 bias (length `n`).
///
/// Dispatches to an AVX2 `maddubs` microkernel when the CPU supports it; the
/// scalar fallback produces bit-identical results (exact integer math).
///
/// # Panics
/// Panics on undersized buffers.
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_dequant_into(
    a_q: &[i8],
    m: usize,
    k: usize,
    packed: &[i8],
    n: usize,
    scales: &[Float],
    bias: Option<&[Float]>,
    out: &mut Matrix,
) {
    let kp = padded_k(k);
    assert!(a_q.len() >= m * kp, "matmul_i8_dequant_into: lhs too short");
    assert!(
        packed.len() >= packed_rhs_len(n, k),
        "matmul_i8_dequant_into: rhs too short"
    );
    assert_eq!(scales.len(), n, "matmul_i8_dequant_into: scales length");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "matmul_i8_dequant_into: bias length");
    }
    assert_eq!(
        out.shape(),
        (m, n),
        "matmul_i8_dequant_into: output shape mismatch"
    );
    if m == 0 || n == 0 {
        return;
    }

    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked at runtime just above.
            unsafe {
                gemm_i8_loop_avx2(a_q, m, kp, packed, n, scales, bias, out.as_mut_slice());
            }
            return;
        }
    }
    gemm_i8_loop_scalar(a_q, m, kp, packed, n, scales, bias, out.as_mut_slice());
}

/// Raw i32 accumulation (no dequant) — the reference the property tests pin
/// both dispatch paths against, and a building block for integer-only
/// pipelines.  `c` is row-major `m × n`.
pub fn matmul_i8_i32_into(a_q: &[i8], m: usize, k: usize, packed: &[i8], n: usize, c: &mut [i32]) {
    let kp = padded_k(k);
    assert!(a_q.len() >= m * kp, "matmul_i8_i32_into: lhs too short");
    assert!(c.len() >= m * n, "matmul_i8_i32_into: output too short");
    let panel_bytes = kp * NR_I8;
    for i in 0..m {
        let a_row = &a_q[i * kp..(i + 1) * kp];
        for j in 0..n {
            let p = j / NR_I8;
            let lane = j % NR_I8;
            let panel = &packed[p * panel_bytes..(p + 1) * panel_bytes];
            let mut acc = 0i32;
            for kb in 0..kp / KB_I8 {
                let block = &panel[kb * NR_I8 * KB_I8..];
                for kk in 0..KB_I8 {
                    acc += a_row[kb * KB_I8 + kk] as i32 * block[lane * KB_I8 + kk] as i32;
                }
            }
            c[i * n + j] = acc;
        }
    }
}

/// Rows of A per register tile (mirrors the f32 kernel's `MR`).
const MR_I8: usize = 4;

#[allow(clippy::too_many_arguments)]
fn gemm_i8_loop_scalar(
    a_q: &[i8],
    m: usize,
    kp: usize,
    packed: &[i8],
    n: usize,
    scales: &[Float],
    bias: Option<&[Float]>,
    out: &mut [Float],
) {
    let panel_bytes = kp * NR_I8;
    let panels = n.div_ceil(NR_I8);
    for p in 0..panels {
        let j0 = p * NR_I8;
        let width = NR_I8.min(n - j0);
        let panel = &packed[p * panel_bytes..(p + 1) * panel_bytes];
        for i in 0..m {
            let a_row = &a_q[i * kp..(i + 1) * kp];
            let mut acc = [0i32; NR_I8];
            for kb in 0..kp / KB_I8 {
                let a_blk = &a_row[kb * KB_I8..kb * KB_I8 + KB_I8];
                let b_blk = &panel[kb * NR_I8 * KB_I8..(kb + 1) * NR_I8 * KB_I8];
                for (j, acc_j) in acc.iter_mut().enumerate() {
                    let b = &b_blk[j * KB_I8..j * KB_I8 + KB_I8];
                    *acc_j += a_blk[0] as i32 * b[0] as i32
                        + a_blk[1] as i32 * b[1] as i32
                        + a_blk[2] as i32 * b[2] as i32
                        + a_blk[3] as i32 * b[3] as i32;
                }
            }
            let out_row = &mut out[i * n + j0..i * n + j0 + width];
            for (j, o) in out_row.iter_mut().enumerate() {
                let v = acc[j] as Float * scales[j0 + j];
                *o = match bias {
                    Some(b) => v + b[j0 + j],
                    None => v,
                };
            }
        }
    }
}

/// AVX2 microkernel: `MR_I8` rows × one `NR_I8`-lane panel per pass, i32
/// accumulators held in registers, `maddubs`+`madd` reducing 4 bytes per
/// lane per instruction pair.  Exactly equal to the scalar loop (saturation
/// impossible — see module docs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_i8_loop_avx2(
    a_q: &[i8],
    m: usize,
    kp: usize,
    packed: &[i8],
    n: usize,
    scales: &[Float],
    bias: Option<&[Float]>,
    out: &mut [Float],
) {
    use std::arch::x86_64::*;

    let panel_bytes = kp * NR_I8;
    let panels = n.div_ceil(NR_I8);
    let ones = _mm256_set1_epi16(1);

    // One panel (8 output lanes) at a time; rows in tiles of MR_I8 with a
    // scalar-row tail.  Within a k-block, lane j's 4 bytes live at
    // `block[4j..4j+4]` — a full 256-bit load covers all 8 lanes × 4 k.
    for p in 0..panels {
        let j0 = p * NR_I8;
        let width = NR_I8.min(n - j0);
        let panel = packed.as_ptr().add(p * panel_bytes);

        let mut i0 = 0;
        while i0 < m {
            let tile = MR_I8.min(m - i0);
            let mut acc = [_mm256_setzero_si256(); MR_I8];
            for kb in 0..kp / KB_I8 {
                let b_vec = _mm256_loadu_si256(panel.add(kb * NR_I8 * KB_I8) as *const __m256i);
                for (r, acc_r) in acc.iter_mut().take(tile).enumerate() {
                    // Broadcast this row's 4-byte k group to every lane.
                    let a_dword = (a_q.as_ptr().add((i0 + r) * kp + kb * KB_I8) as *const i32)
                        .read_unaligned();
                    let a_vec = _mm256_set1_epi32(a_dword);
                    // maddubs needs u8 × i8: |a| × sign(b, a) == a × b.
                    let a_abs = _mm256_abs_epi8(a_vec);
                    let b_signed = _mm256_sign_epi8(b_vec, a_vec);
                    let pairs_i16 = _mm256_maddubs_epi16(a_abs, b_signed);
                    let quads_i32 = _mm256_madd_epi16(pairs_i16, ones);
                    *acc_r = _mm256_add_epi32(*acc_r, quads_i32);
                }
            }
            // Dequant epilogue: i32 → f32, scale, bias.
            let mut lanes = [0i32; NR_I8];
            for (r, acc_r) in acc.iter().take(tile).enumerate() {
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, *acc_r);
                let out_row = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let v = lanes[j] as Float * scales[j0 + j];
                    *o = match bias {
                        Some(b) => v + b[j0 + j],
                        None => v,
                    };
                }
            }
            i0 += tile;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    /// Naive i32 reference straight off the unpacked operands.
    fn naive_i8(a: &[i8], m: usize, k: usize, bt: &[i8], n: usize) -> Vec<i32> {
        let kp = padded_k(k);
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += a[i * kp + kk] as i32 * bt[j * k + kk] as i32;
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn random_i8(rng: &mut TensorRng, len: usize) -> Vec<i8> {
        (0..len)
            .map(|_| (rng.uniform(-127.0, 127.0)).round() as i8)
            .collect()
    }

    /// Random quantized LHS with padded stride.
    fn random_lhs(rng: &mut TensorRng, m: usize, k: usize) -> Vec<i8> {
        let kp = padded_k(k);
        let mut a = vec![0i8; m * kp];
        for i in 0..m {
            for kk in 0..k {
                a[i * kp + kk] = (rng.uniform(-127.0, 127.0)).round() as i8;
            }
        }
        a
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 3, 1),
        (2, 4, 8),
        (3, 5, 7),
        (4, 8, 8),
        (5, 9, 17),
        (7, 33, 9),
        (13, 64, 1),
        (16, 31, 24),
        (31, 47, 61),
        (64, 64, 64),
        (65, 63, 66),
    ];

    #[test]
    fn dispatch_matches_naive_reference_exactly_across_shapes_and_seeds() {
        for seed in [7u64, 21, 99] {
            let mut rng = TensorRng::new(seed);
            for &(m, k, n) in SHAPES {
                let a = random_lhs(&mut rng, m, k);
                let bt = random_i8(&mut rng, n * k);
                let mut packed = vec![0i8; packed_rhs_len(n, k)];
                pack_rhs_i8(&bt, n, k, &mut packed);

                let reference = naive_i8(&a, m, k, &bt, n);

                // Integer path.
                let mut c_i32 = vec![0i32; m * n];
                matmul_i8_i32_into(&a, m, k, &packed, n, &mut c_i32);
                assert_eq!(c_i32, reference, "i32 path at {m}x{k}x{n} seed {seed}");

                // Dequant path with unit scales must equal the i32 reference
                // cast to f32 (plus bias when supplied).
                let scales = vec![1.0; n];
                let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.25).collect();
                let mut out = Matrix::full(m, n, 42.0);
                matmul_i8_dequant_into(&a, m, k, &packed, n, &scales, Some(&bias), &mut out);
                for i in 0..m {
                    for j in 0..n {
                        assert_eq!(
                            out[(i, j)],
                            reference[i * n + j] as f32 + bias[j],
                            "dequant path at {m}x{k}x{n} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn extreme_values_do_not_saturate_the_vector_path() {
        // All-±127 operands maximise every intermediate the AVX2 path
        // produces; the result must still match exact integer math.
        for &(m, k, n) in &[(4, 64, 8), (5, 129, 9)] {
            let kp = padded_k(k);
            let mut a = vec![0i8; m * kp];
            for i in 0..m {
                for kk in 0..k {
                    a[i * kp + kk] = if (i + kk) % 2 == 0 { 127 } else { -127 };
                }
            }
            let bt: Vec<i8> = (0..n * k)
                .map(|x| if x % 3 == 0 { -127 } else { 127 })
                .collect();
            let mut packed = vec![0i8; packed_rhs_len(n, k)];
            pack_rhs_i8(&bt, n, k, &mut packed);
            let reference = naive_i8(&a, m, k, &bt, n);
            let scales = vec![1.0; n];
            let mut out = Matrix::zeros(m, n);
            matmul_i8_dequant_into(&a, m, k, &packed, n, &scales, None, &mut out);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(out[(i, j)], reference[i * n + j] as f32, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn quantize_value_saturates_and_is_nan_free() {
        let inv = 1.0; // scale 1
        assert_eq!(quantize_value(0.4, inv), 0);
        assert_eq!(quantize_value(0.5, inv), 1); // round half away from zero
        assert_eq!(quantize_value(-0.5, inv), -1);
        assert_eq!(quantize_value(126.6, inv), 127);
        assert_eq!(quantize_value(1e9, inv), 127);
        assert_eq!(quantize_value(-1e9, inv), -127);
        assert_eq!(quantize_value(Float::INFINITY, inv), 127);
        assert_eq!(quantize_value(Float::NEG_INFINITY, inv), -127);
        assert_eq!(quantize_value(Float::NAN, inv), 0);
        // -128 is never produced.
        assert_eq!(quantize_value(-128.0, inv), -127);
    }

    #[test]
    fn quantize_slice_matches_scalar_reference_including_special_values() {
        let mut rng = TensorRng::new(31);
        for len in [1usize, 7, 31, 32, 33, 64, 257] {
            let mut src: Vec<Float> = (0..len).map(|_| rng.uniform(-300.0, 300.0)).collect();
            // Sprinkle in the special values at varying lane positions.
            for (i, v) in [
                Float::NAN,
                Float::INFINITY,
                Float::NEG_INFINITY,
                0.5,
                -0.5,
                127.49,
                -127.51,
            ]
            .into_iter()
            .enumerate()
            {
                if len > i * 5 {
                    src[i * 5 % len] = v;
                }
            }
            let scale = 0.37;
            let mut fast = vec![99i8; padded_k(len)];
            quantize_slice_into(&src, scale, &mut fast);
            let inv = 1.0 / scale;
            for (i, &x) in src.iter().enumerate() {
                assert_eq!(fast[i], quantize_value(x, inv), "lane {i} of {len} (x={x})");
            }
            assert!(fast[len..].iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn quantize_slice_pads_with_zeros() {
        let src = [1.0f32, -2.0, 3.5];
        let mut dst = vec![99i8; padded_k(3)];
        quantize_slice_into(&src, 0.5, &mut dst);
        assert_eq!(&dst[..3], &[2, -4, 7]);
        assert_eq!(dst[3], 0, "k padding must be zeroed");
    }

    #[test]
    fn zero_dimensions_are_noops() {
        let mut out = Matrix::zeros(0, 3);
        matmul_i8_dequant_into(&[], 0, 5, &[0; 160], 3, &[1.0; 3], None, &mut out);
        let mut out = Matrix::zeros(2, 0);
        matmul_i8_dequant_into(&[0; 8], 2, 4, &[], 0, &[], None, &mut out);
    }
}
