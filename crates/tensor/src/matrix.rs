//! Row-major dense matrix.
//!
//! A [`Matrix`] with `rows == 1` doubles as a vector; most model code works
//! with batches where each row is one vertex / edge / message, matching the
//! batched execution model of the accelerator (a processing batch of `Nb`
//! edges flows through the Memory Update Unit and Embedding Unit together).

use crate::Float;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Float>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: Float) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Float>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows (convenient in tests).
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Float>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a single-row matrix (a row vector) from a slice.
    pub fn row_vector(values: &[Float]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Float) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Float] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Float] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<Float> {
        self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Float] {
        debug_assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Float] {
        debug_assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies row `i` into a new `Vec`.
    pub fn row_to_vec(&self, i: usize) -> Vec<Float> {
        self.row(i).to_vec()
    }

    /// Copies column `j` into a new `Vec`.
    pub fn col_to_vec(&self, j: usize) -> Vec<Float> {
        assert!(
            j < self.cols,
            "col {} out of bounds ({} cols)",
            j,
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites row `i` with `values`.
    pub fn set_row(&mut self, i: usize, values: &[Float]) {
        assert_eq!(values.len(), self.cols, "set_row: length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(Float) -> Float) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(Float) -> Float) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally-shaped matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(Float, Float) -> Float) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Returns a new matrix holding the selected rows, in the given order.
    /// Indices may repeat (gather semantics).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "gather_rows: index {} out of bounds", src);
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat: row count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Horizontal concatenation of many matrices with equal row counts.
    pub fn hconcat_all(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hconcat_all: empty input");
        let rows = parts[0].rows;
        let total_cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        for i in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hconcat_all: row count mismatch");
                out.row_mut(i)[offset..offset + p.cols].copy_from_slice(p.row(i));
                offset += p.cols;
            }
        }
        out
    }

    /// Vertical concatenation (stacks `other` below `self`).
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vconcat: column count mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns the column slice `[start, end)` as a new matrix.
    pub fn columns(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "columns: bad range {}..{}",
            start,
            end
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> Float {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> Float {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as Float
        }
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> Float {
        self.data.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> Float {
        self.data.iter().map(|&x| x * x).sum::<Float>().sqrt()
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Float;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Float {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({}, {}) out of bounds",
            i,
            j
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Float {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({}, {}) out of bounds",
            i,
            j
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matches_kronecker_delta() {
        let eye = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(eye[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as Float);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (5, 3));
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn hconcat_and_columns_roundtrip() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as Float);
        let b = Matrix::from_fn(3, 4, |i, j| (i * j) as Float);
        let c = a.hconcat(&b);
        assert_eq!(c.shape(), (3, 6));
        assert_eq!(c.columns(0, 2), a);
        assert_eq!(c.columns(2, 6), b);
    }

    #[test]
    fn hconcat_all_matches_pairwise() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as Float);
        let b = Matrix::from_fn(2, 1, |i, _| i as Float);
        let c = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as Float);
        let all = Matrix::hconcat_all(&[&a, &b, &c]);
        assert_eq!(all, a.hconcat(&b).hconcat(&c));
    }

    #[test]
    fn vconcat_stacks_rows() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as Float);
        let b = Matrix::from_fn(1, 3, |_, j| j as Float);
        let c = a.vconcat(&b);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.row(2), b.row(0));
    }

    #[test]
    fn gather_rows_allows_repeats() {
        let m = Matrix::from_fn(4, 2, |i, _| i as Float);
        let g = m.gather_rows(&[3, 0, 3]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as Float);
        let doubled = a.map(|x| 2.0 * x);
        assert_eq!(doubled[(1, 1)], 4.0);
        let summed = a.zip(&doubled, |x, y| x + y);
        assert_eq!(summed[(1, 1)], 6.0);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(m.sum(), -2.0);
        assert_eq!(m.mean(), -0.5);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - (30.0f32).sqrt()).abs() < 1e-6);
        assert!(m.all_finite());
    }

    #[test]
    fn set_row_and_col_to_vec() {
        let mut m = Matrix::zeros(3, 2);
        m.set_row(1, &[7.0, 8.0]);
        assert_eq!(m.col_to_vec(1), vec![0.0, 8.0, 0.0]);
    }
}
