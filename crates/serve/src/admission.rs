//! Multi-tenant admission control: bounded per-tenant ingress queues, a
//! weighted-fair scheduler, and per-tenant overload policies.
//!
//! A single unbounded FIFO with one implicit tenant stops working the moment
//! offered load exceeds pipeline capacity: either memory grows without bound
//! or one aggressive producer starves everyone else.  This module is the
//! front end that fixes both, sitting *before* the micro-batcher so the
//! sample/memory/GNN/update stages are completely unchanged:
//!
//! ```text
//!   submit_for(tenant, event)
//!        │  per-tenant chronology check + OverloadPolicy at the bound
//!        ▼
//!   [tenant 0: bounded VecDeque]──┐
//!   [tenant 1: bounded VecDeque]──┤   weighted round-robin
//!   [tenant …: bounded VecDeque]──┼──► [scheduler worker] ──► batcher SPSC
//!   [tenant N: bounded VecDeque]──┘    (drains ≤ weight events
//!                                       per tenant per visit)
//! ```
//!
//! * **Bounded ingress** — each tenant owns a FIFO of at most
//!   `ingress_capacity` pending events.  What happens at the bound is the
//!   tenant's [`OverloadPolicy`]: `Block`/`Late` exert backpressure on the
//!   submitter, `DropNewest` rejects the incoming event, `DropOldest`
//!   evicts the queue head, and `ServeStale` answers from the serving
//!   layer's bounded-staleness embedding cache (see [`crate::cache`]) —
//!   the result comes back through `poll` flagged
//!   [`Disposition`]`::Stale` with its
//!   age in epochs, and a cache miss degrades to a `DropNewest`-style
//!   shed.  Drops can happen **only** here — an event the
//!   scheduler has handed to the batcher is sealed and will be served.
//! * **Weighted-fair draining** — the scheduler worker visits non-empty
//!   tenants round-robin and takes up to `weight` events per visit
//!   (deficit round robin with unit event cost), so under sustained
//!   overload each backlogged tenant's service rate converges to
//!   `weight / Σ weights` of pipeline capacity regardless of how skewed
//!   the offered load is.  An idle tenant costs nothing; its unused share
//!   is redistributed to the backlogged ones by construction.
//! * **Per-tenant chronology** — each tenant's stream must be
//!   chronological; *across* tenants the scheduler may interleave freely
//!   (that is what fairness means), so the merged stream is only
//!   per-tenant ordered.  The shared temporal state observes cross-tenant
//!   reordering through the commit log (`ServeReport::commit_log_clean`),
//!   which stays clean when tenants touch disjoint vertex sets — the
//!   natural deployment shape, one sub-graph per tenant.  See
//!   `ARCHITECTURE.md` for the full ordering contract.
//!
//! The submit path and the scheduler communicate through one mutex +
//! two condvars (`space` for blocked submitters, `ready` for the idle
//! scheduler); the scheduler never blocks on the downstream SPSC queue
//! while holding the lock, so drop policies keep making progress even
//! when the pipeline is saturated.
//!
//! Configuring two tenants with different weights and policies:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use tgnn_serve::{OverloadPolicy, ServeConfig, StreamServer, TenantId, TenantSpec};
//! # let graph = Arc::new(tgnn_data::generate(&tgnn_data::tiny(3)));
//! # let cfg = tgnn_core::ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
//! # let model = tgnn_core::TgnModel::new(cfg, &mut tgnn_tensor::TensorRng::new(3));
//! let config = ServeConfig {
//!     tenants: vec![
//!         // A paying tenant: 4× the fair share, backpressure on overload.
//!         TenantSpec::new("premium").with_weight(4).with_capacity(512),
//!         // A best-effort feed: shed the newest events when its queue fills,
//!         // and flag anything slower than 50 ms as late.
//!         TenantSpec::new("best-effort")
//!             .with_capacity(64)
//!             .with_policy(OverloadPolicy::DropNewest)
//!             .with_deadline(Duration::from_millis(50)),
//!     ],
//!     ..ServeConfig::default()
//! };
//! let mut server = StreamServer::new(model, graph.clone(), config);
//! for (i, &event) in graph.events().iter().enumerate() {
//!     let tenant = TenantId(i as u32 % 2);
//!     let outcome = server.submit_for(tenant, event).unwrap();
//!     // DropNewest may reject best-effort events under overload:
//!     let _admitted = outcome.is_admitted();
//!     while let Some(batch) = server.poll() {
//!         for (event, meta) in batch.events.iter().zip(&batch.metas) {
//!             // meta.tenant says who submitted it; meta.disposition
//!             // whether it met its deadline.
//!             let _ = (event, meta.tenant, meta.disposition.is_late());
//!         }
//!     }
//! }
//! let report = server.drain();
//! assert_eq!(report.tenants.len(), 2);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tgnn_core::tenancy::{Disposition, OverloadPolicy, ResultMeta, TenantId};
use tgnn_core::BackendKind;
use tgnn_durable::{AdmitDisposition, Wal, WalRecord};
use tgnn_graph::{InteractionEvent, Timestamp};

use crate::cache::EmbeddingCache;
use crate::metrics::SloHandle;
use crate::pipeline::{Collector, ServedBatch};
use crate::server::SubmitError;

/// Burn-rate gate consulted by the submit path: returns `true` while an SLO
/// objective fires, flipping `ServeStale` tenants into cache serving before
/// their queue is hard-full.  Injectable so tests can force it.
pub(crate) type BurnGate = Arc<dyn Fn() -> bool + Send + Sync>;

/// Configuration of one tenant's admission behaviour.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name used in reports and the bench JSON.
    pub name: String,
    /// Weighted-fair share: the scheduler drains up to `weight` events from
    /// this tenant per round-robin visit, so a backlogged tenant's service
    /// rate is proportional to its weight.  Must be ≥ 1.
    pub weight: u32,
    /// Bound of this tenant's ingress queue (events).  The overload policy
    /// decides what happens when it is full.  Must be ≥ 1.
    pub ingress_capacity: usize,
    /// Behaviour at the ingress bound; see [`OverloadPolicy`].
    pub policy: OverloadPolicy,
    /// Admission-to-completion latency budget used by
    /// [`OverloadPolicy::Late`] to flag results as late.  `None` means no
    /// deadline (nothing is ever flagged).
    pub deadline: Option<Duration>,
    /// Token-bucket rate limit in events per second, applied at `submit_for`
    /// *before* the queue-bound policy.  `None` means unlimited.  Unlike the
    /// WRR `weight` — which divides pipeline capacity *proportionally* under
    /// contention — a rate cap bounds a tenant *absolutely*, so capping the
    /// best-effort tenants is how a premium tenant buys a throughput floor.
    /// When the bucket is empty, `Block`/`Late` tenants wait for a token
    /// (counted in [`AdmissionCounters::throttled`]); drop-policy tenants
    /// lose the event ([`AdmissionCounters::dropped_throttled`]).
    pub rate_eps: Option<f64>,
    /// Token-bucket capacity (maximum burst, events).  `None` defaults to
    /// one second's worth of tokens (`max(rate_eps, 1)`).  Clamped to at
    /// least 1 — admission spends a whole token per event, so a smaller
    /// bucket could never admit anything.
    pub rate_burst: Option<f64>,
    /// Which compute backend serves this tenant's sealed batches.  `None`
    /// means the server default: the one backend a homogeneous server runs
    /// (f32, or int8 when the model carries an attached quantized weight
    /// set).  Declaring a backend on *any* tenant switches the server into
    /// heterogeneous routing — per-backend GNN dispatch queues and worker
    /// pools over one shared temporal-state trajectory.  The server
    /// resolves `None` to the concrete default at build time, so every
    /// admitted event is stamped with a concrete kind.
    pub backend: Option<BackendKind>,
    /// Per-tenant staleness bound (epochs) for
    /// [`OverloadPolicy::ServeStale`] answers, overriding the shared
    /// cache's global bound for this tenant's lookups.  The effective bound
    /// is `min(tenant, global)` — the cache sweeps entries past the global
    /// bound, so a tenant cannot see *older* answers than the cache keeps;
    /// it can only demand fresher ones.  `None` means the global bound.
    pub staleness_bound_epochs: Option<u64>,
}

impl TenantSpec {
    /// A weight-1, `Block`-policy tenant with a 1024-event ingress bound and
    /// no deadline — the same semantics the single-tenant server always had.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1,
            ingress_capacity: 1024,
            policy: OverloadPolicy::Block,
            deadline: None,
            rate_eps: None,
            rate_burst: None,
            backend: None,
            staleness_bound_epochs: None,
        }
    }

    /// Sets the weighted-fair share (builder style).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the ingress queue bound (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.ingress_capacity = capacity;
        self
    }

    /// Sets the overload policy (builder style).
    pub fn with_policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the `Late` deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the token-bucket rate limit in events/second (builder style).
    ///
    /// # Panics
    /// Panics if `rate_eps` is not finite and positive.
    pub fn with_rate_eps(mut self, rate_eps: f64) -> Self {
        assert!(
            rate_eps.is_finite() && rate_eps > 0.0,
            "TenantSpec: rate_eps must be finite and positive"
        );
        self.rate_eps = Some(rate_eps);
        self
    }

    /// Sets the token-bucket burst capacity in events (builder style).
    ///
    /// # Panics
    /// Panics if `burst` is not finite or is below 1.0: admission spends a
    /// whole token per event, and `refill_tokens` caps the bucket at the
    /// burst — a capacity under one token could never be spent, so the
    /// tenant would block (or drop) forever.
    pub fn with_rate_burst(mut self, burst: f64) -> Self {
        assert!(
            burst.is_finite() && burst >= 1.0,
            "TenantSpec: rate_burst must be finite and >= 1 (admission needs a whole token per event)"
        );
        self.rate_burst = Some(burst);
        self
    }

    /// Declares the compute backend this tenant is served on (builder
    /// style); see the `backend` field for the routing contract.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the per-tenant `ServeStale` staleness bound in epochs (builder
    /// style); see the `staleness_bound_epochs` field.
    pub fn with_staleness_bound(mut self, epochs: u64) -> Self {
        self.staleness_bound_epochs = Some(epochs);
        self
    }

    /// Effective bucket capacity: the explicit burst, or one second's worth
    /// of tokens — clamped to at least 1 either way, because a bucket that
    /// can never hold a whole token can never admit anything (the clamp
    /// covers a `rate_burst` field written directly, bypassing the
    /// builder's assert).
    pub(crate) fn effective_burst(&self) -> f64 {
        self.rate_burst
            .unwrap_or_else(|| self.rate_eps.unwrap_or(1.0))
            .max(1.0)
    }
}

/// What `submit_for` did with the event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The event is queued and will be served exactly once.
    Admitted,
    /// The tenant's queue was full under [`OverloadPolicy::DropNewest`]:
    /// the event was rejected and will never produce a result.
    Dropped,
    /// The tenant ran [`OverloadPolicy::ServeStale`] at a full queue (or an
    /// empty token bucket) and every touched vertex was in the embedding
    /// cache within its staleness bound: the event did **not** enter the
    /// pipeline, but a result flagged
    /// [`Disposition::Stale`](tgnn_core::tenancy::Disposition) is already
    /// queued and will come back through `poll`.
    ServedStale,
}

impl SubmitOutcome {
    /// True when the event entered the pipeline (`ServedStale` answers
    /// without entering it, so it is *not* "admitted" — but unlike
    /// `Dropped` it does produce a result).
    pub fn is_admitted(self) -> bool {
        matches!(self, SubmitOutcome::Admitted)
    }
}

/// An event the admission layer accepted, stamped with everything the
/// pipeline needs to attribute and grade its result.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdmittedEvent {
    pub event: InteractionEvent,
    pub meta: EventMeta,
}

/// Per-event metadata carried through the pipeline alongside the event
/// itself (the stages never look at it; the reorder worker turns it into
/// the served batch's `ResultMeta`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct EventMeta {
    pub tenant: TenantId,
    pub admitted_at: Instant,
    /// When the scheduler drained the event out of its ingress queue —
    /// initialized to `admitted_at` and re-stamped per burst, so the causal
    /// trace's ingress-wait segment measures real queue residency.
    pub picked_up_at: Instant,
    pub deadline: Option<Duration>,
    /// The concrete backend this event's tenant is routed to — stamped at
    /// admission (from the resolved `TenantSpec::backend`) so the batcher
    /// can seal per-backend batches without consulting the tenant table.
    pub backend: BackendKind,
}

/// Monotonic counters of one tenant's admission activity, snapshotted into
/// the serve report's `TenantStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionCounters {
    /// `submit_for` calls that returned `Ok` (admitted + dropped-newest);
    /// calls failing with an error are not part of the accounting.  After a
    /// drain, `submitted == served + dropped()` holds for every policy.
    pub submitted: u64,
    /// Events that entered the ingress queue.
    pub admitted: u64,
    /// Incoming events rejected by [`OverloadPolicy::DropNewest`].
    pub dropped_newest: u64,
    /// Queued events evicted by [`OverloadPolicy::DropOldest`].
    pub dropped_oldest: u64,
    /// Incoming events rejected by an empty token bucket (drop policies).
    pub dropped_throttled: u64,
    /// Events answered from the embedding cache by
    /// [`OverloadPolicy::ServeStale`] — overflow that produced a (stale)
    /// result instead of a drop.  Counted toward `served`, not `dropped()`:
    /// after a drain `submitted == served + dropped()` still holds.
    pub served_stale: u64,
    /// `submit_for` calls that had to block on a full queue
    /// (`Block`/`Late` backpressure).
    pub blocked_submits: u64,
    /// `submit_for` calls that had to wait for a rate-limit token
    /// (`Block`/`Late` policies).
    pub throttled: u64,
    /// [`OverloadPolicy::ServeStale`] answers triggered by the SLO
    /// burn-rate gate while the queue still had space (a subset of
    /// `served_stale`) — overload pre-empted before the hard bound.
    pub preempt_stale: u64,
    /// Highest ingress queue depth observed.
    pub max_depth: usize,
}

impl AdmissionCounters {
    /// Total events this tenant lost to its drop policy or rate limit.
    pub fn dropped(&self) -> u64 {
        self.dropped_newest + self.dropped_oldest + self.dropped_throttled
    }
}

struct TenantIngress {
    spec: TenantSpec,
    queue: VecDeque<AdmittedEvent>,
    /// Deficit-round-robin credit carried across visits (unit event cost).
    deficit: u64,
    counters: AdmissionCounters,
    last_timestamp: Timestamp,
    /// Token-bucket state (only meaningful when `spec.rate_eps` is set).
    tokens: f64,
    last_refill: Instant,
}

impl TenantIngress {
    /// Refills the bucket from elapsed wall time and returns whether a token
    /// is available (always true for unlimited tenants).
    fn refill_tokens(&mut self, now: Instant) -> bool {
        let Some(rate) = self.spec.rate_eps else {
            return true;
        };
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * rate).min(self.spec.effective_burst());
        self.tokens >= 1.0
    }
}

struct AdmissionState {
    tenants: Vec<TenantIngress>,
    /// Round-robin cursor: index of the next tenant the scheduler visits.
    cursor: usize,
    closed: bool,
}

/// Everything the submit path needs to answer an overload event from the
/// embedding cache instead of shedding it ([`OverloadPolicy::ServeStale`]).
/// The stale output queue is drained by `StreamServer::poll` *ahead of*
/// pipeline results — stale batches never pass through the pipeline (and
/// therefore need no durability seal gate).
pub(crate) struct StaleServing {
    /// The shared embedding cache (population and invalidation happen in
    /// the pipeline; admission only reads).
    pub cache: Arc<EmbeddingCache>,
    /// Synthesized stale batches awaiting `poll`.
    pub out: Arc<Mutex<VecDeque<ServedBatch>>>,
    /// The pipeline's completion-side collector: stale answers count as
    /// served events so `submitted == served + dropped()` keeps holding.
    pub collector: Arc<Collector>,
}

/// The shared admission front end: per-tenant bounded queues plus the
/// weighted-fair drain the scheduler worker runs.  One instance per
/// `StreamServer`, shared between the submitting thread and the scheduler.
pub(crate) struct AdmissionControl {
    state: Mutex<AdmissionState>,
    /// Signalled when a queue gains space (wakes `Block`/`Late` submitters).
    space: Condvar,
    /// Signalled when work arrives or the layer closes (wakes the scheduler).
    ready: Condvar,
    /// Durability: every submit outcome (admit/drop/evict) is appended here
    /// under the admission lock, *before* the event becomes visible to the
    /// scheduler — so no event can be sealed without a durable admit
    /// preceding it in the log.  Lock order: admission lock, then the WAL's
    /// internal mutex (the batcher and poll take only the latter).
    wal: Option<Arc<Wal>>,
    /// `ServeStale` support; `None` when no tenant runs that policy.  The
    /// cache shard locks and the stale output lock are leaf locks taken
    /// under the admission lock (nothing is acquired while they are held).
    stale: Option<StaleServing>,
    /// SLO recording handle: every submit outcome feeds the drop-rate
    /// objective (a no-op `Default` without configured objectives).
    slo: SloHandle,
    /// Burn-rate preemption gate (`ServeConfig::slo.preempt_stale`): while
    /// it returns `true`, `ServeStale` tenants answer from the cache even
    /// with queue space left.  Lock-free atomics only — it is consulted
    /// under the admission lock.
    burn_gate: Option<BurnGate>,
    /// Deterministic test clock: when set, `now()` returns this instant
    /// instead of wall time, so the token-bucket and deadline tests advance
    /// time explicitly rather than sleeping (no flaky timing asserts).
    #[cfg(test)]
    test_now: Mutex<Option<Instant>>,
}

impl AdmissionControl {
    /// Builds the queues from the tenant table.
    ///
    /// # Panics
    /// Panics if the table is empty or any spec has a zero weight or
    /// capacity.
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        assert!(!specs.is_empty(), "admission: need at least one tenant");
        let tenants = specs
            .into_iter()
            .map(|spec| {
                assert!(spec.weight >= 1, "admission: tenant weight must be >= 1");
                assert!(
                    spec.ingress_capacity >= 1,
                    "admission: tenant ingress capacity must be >= 1"
                );
                let tokens = spec.effective_burst();
                TenantIngress {
                    queue: VecDeque::with_capacity(spec.ingress_capacity),
                    spec,
                    deficit: 0,
                    counters: AdmissionCounters::default(),
                    last_timestamp: Timestamp::NEG_INFINITY,
                    tokens,
                    last_refill: Instant::now(),
                }
            })
            .collect();
        Self {
            state: Mutex::new(AdmissionState {
                tenants,
                cursor: 0,
                closed: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            wal: None,
            stale: None,
            slo: SloHandle::default(),
            burn_gate: None,
            #[cfg(test)]
            test_now: Mutex::new(None),
        }
    }

    /// Attaches the write-ahead log (builder style, before sharing).
    pub fn with_wal(mut self, wal: Option<Arc<Wal>>) -> Self {
        self.wal = wal;
        self
    }

    /// Attaches the `ServeStale` machinery (builder style, before sharing).
    pub fn with_stale(mut self, stale: Option<StaleServing>) -> Self {
        self.stale = stale;
        self
    }

    /// Attaches the SLO recording handle (builder style, before sharing).
    pub fn with_slo(mut self, slo: SloHandle) -> Self {
        self.slo = slo;
        self
    }

    /// Attaches the burn-rate preemption gate (builder style, before
    /// sharing).
    pub fn with_burn_gate(mut self, gate: Option<BurnGate>) -> Self {
        self.burn_gate = gate;
        self
    }

    /// The admission clock: wall time in production, the frozen test clock
    /// when a test installed one.  Every time read on the submit path —
    /// token-bucket refills and the `admitted_at` deadline stamp — goes
    /// through here so tests can advance time deterministically.
    fn now(&self) -> Instant {
        #[cfg(test)]
        if let Some(t) = *self.test_now.lock().unwrap() {
            return t;
        }
        Instant::now()
    }

    /// Freezes the admission clock at the current instant (tests only).
    #[cfg(test)]
    fn freeze_clock(&self) -> Instant {
        let now = Instant::now();
        *self.test_now.lock().unwrap() = Some(now);
        now
    }

    /// Advances the frozen clock and wakes throttled waiters so they
    /// re-check the bucket against the new time (tests only).
    #[cfg(test)]
    fn advance_clock(&self, by: Duration) {
        let mut clock = self.test_now.lock().unwrap();
        let t = clock.expect("advance_clock requires freeze_clock first");
        *clock = Some(t + by);
        drop(clock);
        self.space.notify_all();
    }

    /// Appends a WAL record for a submit outcome.  A WAL that cannot accept
    /// writes voids the durability contract, so failure is fatal.
    fn log(&self, rec: &WalRecord) {
        if let Some(wal) = &self.wal {
            wal.append(rec).expect("admission WAL append failed");
        }
    }

    /// Number of configured tenants.
    pub fn num_tenants(&self) -> usize {
        self.state.lock().unwrap().tenants.len()
    }

    /// Attempts to answer an overload event from the embedding cache
    /// ([`OverloadPolicy::ServeStale`]).  On a hit — every touched vertex
    /// cached within the staleness bound — a [`ServedBatch`] flagged
    /// [`Disposition::Stale`] is queued for `poll` and the answer's age (in
    /// epochs) is returned; `None` on a miss, and the caller sheds the event
    /// like a drop policy would.  The batch's embeddings are exactly the
    /// cached (i.e. originally served) values; `cache_epochs` records the
    /// serving epoch of each so clients and the bench can verify
    /// bit-identity against history.
    ///
    /// `bound` is the tenant's staleness override
    /// ([`TenantSpec::staleness_bound_epochs`], `None` = the cache's global
    /// bound); `backend` is the tenant's declared backend, stamped on the
    /// stale result's metadata.
    fn serve_stale(
        &self,
        tenant: TenantId,
        event: InteractionEvent,
        bound: Option<u64>,
        backend: BackendKind,
    ) -> Option<u64> {
        let stale = self.stale.as_ref()?;
        let (entries, age) = stale.cache.get_event_bounded(event.src, event.dst, bound)?;
        stale.cache.record_stale_serve(age);
        let mut embeddings = Vec::with_capacity(entries.len());
        let mut cache_epochs = Vec::with_capacity(entries.len());
        for (v, emb, epoch) in entries {
            embeddings.push((v, emb));
            cache_epochs.push(epoch);
        }
        // A stale answer is delivered, so it counts as a served event (the
        // drain invariant `submitted == served + dropped()` depends on it),
        // but it bypasses the pipeline: zero pipeline latency, and it is
        // excluded from the tenant's admission-to-completion distribution.
        stale
            .collector
            .record_batch(1, embeddings.len(), Duration::ZERO);
        stale.collector.record_stale_event(tenant);
        let now = Instant::now();
        stale.out.lock().unwrap().push_back(ServedBatch {
            epoch: 0,
            events: vec![event],
            metas: vec![ResultMeta {
                tenant,
                disposition: Disposition::Stale { age_epochs: age },
                backend,
                trace_id: 0,
            }],
            embeddings,
            cache_epochs,
            backend,
            modeled_latency: None,
            latency: Duration::ZERO,
            admitted_at: now,
            reordered_at: now,
        });
        Some(age)
    }

    /// Submits one event for a tenant, applying its overload policy at the
    /// queue bound.  Blocks only under `Block`/`Late` backpressure.
    ///
    /// Counter invariant: `submitted` is bumped only on the `Ok` paths
    /// (admitted or dropped-newest), so after a drain
    /// `submitted == served + dropped()` holds exactly for every policy —
    /// calls that fail with an error are not part of the accounting.
    pub fn submit(
        &self,
        tenant: TenantId,
        event: InteractionEvent,
    ) -> Result<SubmitOutcome, SubmitError> {
        let idx = tenant.index();
        let mut state = self.state.lock().unwrap();
        if idx >= state.tenants.len() {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        if state.closed {
            return Err(SubmitError::Closed);
        }
        {
            let t = &mut state.tenants[idx];
            if event.timestamp < t.last_timestamp {
                return Err(SubmitError::OutOfOrder {
                    previous: t.last_timestamp,
                    submitted: event.timestamp,
                });
            }
            t.last_timestamp = event.timestamp;
        }
        // Token bucket, before the queue-bound policy: blocking policies
        // wait for a token, drop policies shed the event, `ServeStale`
        // answers from the cache (or sheds on a miss).
        if !state.tenants[idx].refill_tokens(self.now()) {
            match state.tenants[idx].spec.policy {
                OverloadPolicy::Block | OverloadPolicy::Late => {
                    state.tenants[idx].counters.throttled += 1;
                    loop {
                        if state.closed {
                            return Err(SubmitError::Closed);
                        }
                        let t = &mut state.tenants[idx];
                        if t.refill_tokens(self.now()) {
                            break;
                        }
                        let rate = t.spec.rate_eps.expect("throttled without a rate limit");
                        let wait = Duration::from_secs_f64(((1.0 - t.tokens) / rate).max(1e-4));
                        state = self.space.wait_timeout(state, wait).unwrap().0;
                    }
                }
                OverloadPolicy::ServeStale => {
                    let spec = &state.tenants[idx].spec;
                    let (bound, backend) = (
                        spec.staleness_bound_epochs,
                        spec.backend.unwrap_or_default(),
                    );
                    let served = self.serve_stale(tenant, event, bound, backend);
                    let t = &mut state.tenants[idx];
                    t.counters.submitted += 1;
                    return match served {
                        Some(_) => {
                            t.counters.served_stale += 1;
                            self.slo.record_submit(false);
                            self.log(&WalRecord::Admit {
                                tenant: tenant.0,
                                event,
                                disposition: AdmitDisposition::ServedStale,
                            });
                            Ok(SubmitOutcome::ServedStale)
                        }
                        None => {
                            t.counters.dropped_throttled += 1;
                            self.slo.record_submit(true);
                            self.log(&WalRecord::Admit {
                                tenant: tenant.0,
                                event,
                                disposition: AdmitDisposition::DroppedThrottled,
                            });
                            Ok(SubmitOutcome::Dropped)
                        }
                    };
                }
                OverloadPolicy::DropNewest | OverloadPolicy::DropOldest => {
                    let t = &mut state.tenants[idx];
                    t.counters.submitted += 1;
                    t.counters.dropped_throttled += 1;
                    self.slo.record_submit(true);
                    self.log(&WalRecord::Admit {
                        tenant: tenant.0,
                        event,
                        disposition: AdmitDisposition::DroppedThrottled,
                    });
                    return Ok(SubmitOutcome::Dropped);
                }
            }
        }
        if state.tenants[idx].spec.rate_eps.is_some() {
            state.tenants[idx].tokens -= 1.0;
        }
        // SLO burn-rate preemption: while an objective fires, a `ServeStale`
        // tenant answers from the cache even though its queue still has
        // space — shedding load *before* the hard bound turns drops into
        // stale answers.  A cache miss falls through to normal admission
        // (the queue has space), so preemption never sheds an event the
        // queue would have served.
        if state.tenants[idx].spec.policy == OverloadPolicy::ServeStale
            && state.tenants[idx].queue.len() < state.tenants[idx].spec.ingress_capacity
            && self.burn_gate.as_ref().is_some_and(|g| g())
            && self
                .serve_stale(
                    tenant,
                    event,
                    state.tenants[idx].spec.staleness_bound_epochs,
                    state.tenants[idx].spec.backend.unwrap_or_default(),
                )
                .is_some()
        {
            let t = &mut state.tenants[idx];
            t.counters.submitted += 1;
            t.counters.served_stale += 1;
            t.counters.preempt_stale += 1;
            self.slo.record_submit(false);
            self.log(&WalRecord::Admit {
                tenant: tenant.0,
                event,
                disposition: AdmitDisposition::ServedStale,
            });
            return Ok(SubmitOutcome::ServedStale);
        }
        // One drop-objective sample per submit: an admit that cost a
        // `DropOldest` eviction counts as the eviction's loss, not as a
        // clean admit.
        let mut evicted_for_space = false;
        let needs_wait = {
            let t = &mut state.tenants[idx];
            // Policy at the bound.
            if t.queue.len() >= t.spec.ingress_capacity {
                match t.spec.policy {
                    OverloadPolicy::Block | OverloadPolicy::Late => {
                        t.counters.blocked_submits += 1;
                        true
                    }
                    OverloadPolicy::DropNewest => {
                        t.counters.submitted += 1;
                        t.counters.dropped_newest += 1;
                        self.slo.record_submit(true);
                        self.log(&WalRecord::Admit {
                            tenant: tenant.0,
                            event,
                            disposition: AdmitDisposition::DroppedNewest,
                        });
                        return Ok(SubmitOutcome::Dropped);
                    }
                    OverloadPolicy::ServeStale => {
                        let bound = t.spec.staleness_bound_epochs;
                        let backend = t.spec.backend.unwrap_or_default();
                        // `t` borrows `state`; release it for the helper and
                        // re-take for the counters.
                        let _ = t;
                        let served = self.serve_stale(tenant, event, bound, backend);
                        let t = &mut state.tenants[idx];
                        t.counters.submitted += 1;
                        return match served {
                            Some(_) => {
                                t.counters.served_stale += 1;
                                self.slo.record_submit(false);
                                self.log(&WalRecord::Admit {
                                    tenant: tenant.0,
                                    event,
                                    disposition: AdmitDisposition::ServedStale,
                                });
                                Ok(SubmitOutcome::ServedStale)
                            }
                            // Miss: shed like DropNewest — the cache never
                            // answers beyond its staleness bound.
                            None => {
                                t.counters.dropped_newest += 1;
                                self.slo.record_submit(true);
                                self.log(&WalRecord::Admit {
                                    tenant: tenant.0,
                                    event,
                                    disposition: AdmitDisposition::DroppedNewest,
                                });
                                Ok(SubmitOutcome::Dropped)
                            }
                        };
                    }
                    OverloadPolicy::DropOldest => {
                        if let Some(evicted) = t.queue.pop_front() {
                            t.counters.dropped_oldest += 1;
                            evicted_for_space = true;
                            self.log(&WalRecord::Evict {
                                tenant: tenant.0,
                                event: evicted.event,
                            });
                        }
                        false
                    }
                }
            } else {
                false
            }
        };
        if needs_wait {
            // The wait releases the state lock, so the tenant borrow is
            // re-taken on every wakeup.
            while state.tenants[idx].queue.len() >= state.tenants[idx].spec.ingress_capacity {
                if state.closed {
                    return Err(SubmitError::Closed);
                }
                state = self.space.wait(state).unwrap();
            }
            // Space freed *and* closed can be observed together (e.g. the
            // scheduler drained a burst and then died): admitting now would
            // strand the event in a layer nothing will ever drain again, so
            // the closed check must be repeated after the wait.
            if state.closed {
                return Err(SubmitError::Closed);
            }
        }
        // The admit is made durable *before* the event becomes visible to
        // the scheduler (the state lock is still held), so a durable seal
        // always has a durable admit before it in the log.
        self.log(&WalRecord::Admit {
            tenant: tenant.0,
            event,
            disposition: AdmitDisposition::Admitted,
        });
        // `admitted_at` is stamped *here* — after any `Block`/`Late`
        // backpressure or token wait — because the deadline contract budgets
        // admission-to-completion latency: time an event spends parked in
        // `submit_for` before admission is backpressure on the caller, not
        // pipeline delay, and must not count toward `Disposition::Late`
        // (pinned by `late_deadline_window_starts_at_admission_not_submit`).
        let admitted_at = self.now();
        self.slo.record_submit(evicted_for_space);
        let t = &mut state.tenants[idx];
        t.queue.push_back(AdmittedEvent {
            event,
            meta: EventMeta {
                tenant,
                admitted_at,
                picked_up_at: admitted_at,
                deadline: t.spec.deadline,
                backend: t.spec.backend.unwrap_or_default(),
            },
        });
        t.counters.submitted += 1;
        t.counters.admitted += 1;
        t.counters.max_depth = t.counters.max_depth.max(t.queue.len());
        drop(state);
        self.ready.notify_one();
        Ok(SubmitOutcome::Admitted)
    }

    /// Recovery: puts a reconstructed ingress tail back into a tenant's
    /// queue and reimposes the tenant's durable chronology floor.  Bypasses
    /// the overload policy, rate limit, and chronology check — these events
    /// were already admitted (durably) in a previous life, and for the same
    /// reason they are *not* WAL-logged again.
    pub fn restore(&self, tenant: TenantId, events: &[InteractionEvent], floor: Timestamp) {
        let mut state = self.state.lock().unwrap();
        let t = &mut state.tenants[tenant.index()];
        if t.last_timestamp < floor {
            t.last_timestamp = floor;
        }
        for &event in events {
            let now = Instant::now();
            t.queue.push_back(AdmittedEvent {
                event,
                meta: EventMeta {
                    tenant,
                    admitted_at: now,
                    picked_up_at: now,
                    deadline: t.spec.deadline,
                    backend: t.spec.backend.unwrap_or_default(),
                },
            });
            t.counters.submitted += 1;
            t.counters.admitted += 1;
        }
        t.counters.max_depth = t.counters.max_depth.max(t.queue.len());
        let nonempty = !events.is_empty();
        drop(state);
        if nonempty {
            self.ready.notify_one();
        }
    }

    /// Scheduler side: blocks until work is available, then fills `out`
    /// with the next weighted-fair burst — up to `weight + carried deficit`
    /// events from the next non-empty tenant in round-robin order.  Returns
    /// `false` once the layer is closed *and* every queue is drained (the
    /// no-drop drain guarantee: close never discards admitted events).
    pub fn next_burst(&self, out: &mut Vec<AdmittedEvent>) -> bool {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.tenants.iter().any(|t| !t.queue.is_empty()) {
                break;
            }
            if state.closed {
                return false;
            }
            state = self.ready.wait(state).unwrap();
        }
        let n = state.tenants.len();
        let cursor = state.cursor;
        for step in 0..n {
            let i = (cursor + step) % n;
            let t = &mut state.tenants[i];
            if t.queue.is_empty() {
                // An idle tenant accumulates no credit: its share is
                // redistributed, and it cannot burst later on stale credit.
                t.deficit = 0;
                continue;
            }
            t.deficit += u64::from(t.spec.weight);
            let take = (t.deficit as usize).min(t.queue.len());
            out.extend(t.queue.drain(..take));
            t.deficit -= take as u64;
            if t.queue.is_empty() {
                t.deficit = 0;
            }
            state.cursor = (i + 1) % n;
            drop(state);
            // Wake every blocked submitter — possibly several tenants' worth.
            self.space.notify_all();
            return true;
        }
        unreachable!("a non-empty tenant queue disappeared under the lock");
    }

    /// Raises every tenant's chronology floor to `t` (used after a warm-up
    /// replay: no tenant may submit events older than the absorbed prefix).
    pub fn set_timestamp_floor(&self, t: Timestamp) {
        let mut state = self.state.lock().unwrap();
        for tenant in &mut state.tenants {
            if tenant.last_timestamp < t {
                tenant.last_timestamp = t;
            }
        }
    }

    /// Closes admission: future submits fail with `Closed`, blocked
    /// submitters wake and fail, and the scheduler drains the remaining
    /// queued events before `next_burst` returns `false`.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.space.notify_all();
        self.ready.notify_all();
    }

    /// Snapshot of one tenant's spec and counters (for the serve report).
    pub fn tenant_snapshot(&self, index: usize) -> (TenantSpec, AdmissionCounters) {
        let state = self.state.lock().unwrap();
        let t = &state.tenants[index];
        (t.spec.clone(), t.counters)
    }
}

/// The scheduler worker: weighted-fair bursts out of the tenant queues into
/// the batcher's SPSC queue.  The downstream `send` blocks when the pipeline
/// is saturated — that blocking happens *outside* the admission lock, so
/// submitters (and their drop policies) keep running meanwhile.  If the
/// batcher is gone (pipeline shutdown or worker death), admission is closed
/// so submitters unblock with `Closed` instead of hanging.
pub(crate) fn scheduler_loop(
    admission: std::sync::Arc<AdmissionControl>,
    tx: crate::queue::Sender<AdmittedEvent>,
    obs: crate::metrics::StageObs,
    sampling: u64,
) {
    let sampling = sampling.max(1);
    let mut burst = Vec::new();
    let mut bursts = 0u64;
    while admission.next_burst(&mut burst) {
        // Scheduler spans are pre-epoch (no batch exists yet), so they
        // carry epoch 0; one span covers forwarding one fair burst.  An
        // unpaced feed degenerates to one-event bursts, so the timeline
        // write is sampled 1-in-`sampling`
        // (`ServeConfig::metrics_sampling`) — busy time still counts every
        // burst.
        let record = bursts.is_multiple_of(sampling);
        bursts += 1;
        let span = obs.enter_sampled(0, record);
        // Stamp pickup once per burst: the causal trace's ingress-wait
        // segment is the anchor event's admitted→picked-up residency.
        let picked_up_at = Instant::now();
        for mut ev in burst.drain(..) {
            ev.meta.picked_up_at = picked_up_at;
            if tx.send(ev).is_err() {
                admission.close();
                obs.exit_sampled(0, span, record);
                return;
            }
        }
        obs.exit_sampled(0, span, record);
    }
    // Closed and fully drained: dropping `tx` seals the batcher's tail.
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(t: f64) -> InteractionEvent {
        InteractionEvent::new(0, 1, 0, t)
    }

    fn drain_order(ac: &AdmissionControl) -> Vec<TenantId> {
        ac.close();
        let mut order = Vec::new();
        let mut burst = Vec::new();
        while ac.next_burst(&mut burst) {
            order.extend(burst.drain(..).map(|e| e.meta.tenant));
        }
        order
    }

    #[test]
    fn weighted_round_robin_serves_in_weight_proportion() {
        // Four backlogged tenants, weights 8:4:2:1, each with exactly
        // `weight × 20` events queued — the drain order must interleave so
        // that every window of Σw = 15 served events contains exactly w_i
        // events of tenant i (exact DRR with unit cost), for all 20 rounds
        // until the queues empty simultaneously.
        let weights = [8u32, 4, 2, 1];
        let rounds = 20usize;
        let ac = AdmissionControl::new(
            weights
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    TenantSpec::new(format!("t{i}"))
                        .with_weight(w)
                        .with_capacity(512)
                })
                .collect(),
        );
        for (i, &w) in weights.iter().enumerate() {
            for k in 0..(w as usize * rounds) {
                ac.submit(TenantId(i as u32), ev(k as f64)).unwrap();
            }
        }
        let order = drain_order(&ac);
        let total_w: u32 = weights.iter().sum();
        assert_eq!(order.len(), total_w as usize * rounds);
        // Every round serves exactly the weight vector.
        for (round, chunk) in order.chunks(total_w as usize).enumerate() {
            for (i, &w) in weights.iter().enumerate() {
                let got = chunk.iter().filter(|t| t.index() == i).count();
                assert_eq!(
                    got, w as usize,
                    "round {round}: tenant {i} served {got}, weight {w}"
                );
            }
        }
    }

    #[test]
    fn idle_tenants_do_not_accumulate_credit() {
        let ac = AdmissionControl::new(vec![
            TenantSpec::new("busy").with_weight(1).with_capacity(64),
            TenantSpec::new("idle").with_weight(100).with_capacity(64),
        ]);
        // The idle tenant submits nothing for many rounds, then bursts.
        for k in 0..32 {
            ac.submit(TenantId(0), ev(k as f64)).unwrap();
        }
        let mut burst = Vec::new();
        for _ in 0..8 {
            assert!(ac.next_burst(&mut burst));
        }
        burst.clear();
        for k in 0..64 {
            ac.submit(TenantId(1), ev(k as f64)).unwrap();
        }
        // The first burst for the idle tenant is bounded by its weight —
        // no credit hoarded from the rounds it sat out.
        let mut first_idle_burst = None;
        let mut b = Vec::new();
        while ac.next_burst(&mut b) {
            if b.first().is_some_and(|e| e.meta.tenant == TenantId(1)) {
                first_idle_burst = Some(b.len());
                break;
            }
            b.clear();
        }
        assert!(first_idle_burst.is_some_and(|n| n <= 100));
    }

    #[test]
    fn drop_newest_rejects_at_the_bound_and_preserves_queue() {
        let ac = AdmissionControl::new(vec![TenantSpec::new("t")
            .with_capacity(3)
            .with_policy(OverloadPolicy::DropNewest)]);
        for k in 0..3 {
            assert_eq!(
                ac.submit(TenantId::DEFAULT, ev(k as f64)).unwrap(),
                SubmitOutcome::Admitted
            );
        }
        for k in 3..8 {
            assert_eq!(
                ac.submit(TenantId::DEFAULT, ev(k as f64)).unwrap(),
                SubmitOutcome::Dropped
            );
        }
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.submitted, 8);
        assert_eq!(c.admitted, 3);
        assert_eq!(c.dropped_newest, 5);
        assert_eq!(c.max_depth, 3);
        // The oldest (first-admitted) events survive.
        ac.close();
        let mut b = Vec::new();
        assert!(ac.next_burst(&mut b));
        let kept: Vec<f64> = b.iter().map(|e| e.event.timestamp).collect();
        assert_eq!(kept, vec![0.0]); // weight 1: one event per burst
    }

    #[test]
    fn drop_oldest_evicts_the_head_to_admit_the_newest() {
        let ac = AdmissionControl::new(vec![TenantSpec::new("t")
            .with_capacity(3)
            .with_weight(16)
            .with_policy(OverloadPolicy::DropOldest)]);
        for k in 0..8 {
            assert_eq!(
                ac.submit(TenantId::DEFAULT, ev(k as f64)).unwrap(),
                SubmitOutcome::Admitted
            );
        }
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.admitted, 8);
        assert_eq!(c.dropped_oldest, 5);
        ac.close();
        let mut b = Vec::new();
        assert!(ac.next_burst(&mut b));
        let kept: Vec<f64> = b.iter().map(|e| e.event.timestamp).collect();
        assert_eq!(kept, vec![5.0, 6.0, 7.0], "freshest events survive");
    }

    #[test]
    fn per_tenant_chronology_is_independent() {
        let ac = AdmissionControl::new(vec![
            TenantSpec::new("a").with_capacity(8),
            TenantSpec::new("b").with_capacity(8),
        ]);
        ac.submit(TenantId(0), ev(10.0)).unwrap();
        // A different tenant may be behind in time...
        ac.submit(TenantId(1), ev(1.0)).unwrap();
        // ...but each tenant's own stream must be chronological.
        let err = ac.submit(TenantId(0), ev(5.0)).unwrap_err();
        assert!(matches!(err, SubmitError::OutOfOrder { .. }));
        assert!(matches!(
            ac.submit(TenantId(9), ev(0.0)).unwrap_err(),
            SubmitError::UnknownTenant(TenantId(9))
        ));
    }

    #[test]
    fn close_drains_admitted_events_then_ends_and_rejects_submits() {
        let ac = AdmissionControl::new(vec![TenantSpec::new("t").with_capacity(8)]);
        for k in 0..5 {
            ac.submit(TenantId::DEFAULT, ev(k as f64)).unwrap();
        }
        ac.close();
        assert!(matches!(
            ac.submit(TenantId::DEFAULT, ev(9.0)),
            Err(SubmitError::Closed)
        ));
        let mut got = 0;
        let mut b = Vec::new();
        while ac.next_burst(&mut b) {
            got += b.drain(..).count();
        }
        assert_eq!(got, 5, "close must drain, never discard, admitted events");
    }

    #[test]
    fn blocked_submitter_unblocks_when_scheduler_drains() {
        let ac = Arc::new(AdmissionControl::new(vec![TenantSpec::new("t")
            .with_capacity(1)
            .with_policy(OverloadPolicy::Block)]));
        ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap();
        let submitter = {
            let ac = ac.clone();
            std::thread::spawn(move || ac.submit(TenantId::DEFAULT, ev(1.0)))
        };
        std::thread::sleep(Duration::from_millis(20));
        let mut b = Vec::new();
        assert!(ac.next_burst(&mut b)); // frees the slot
        assert_eq!(
            submitter.join().unwrap().unwrap(),
            SubmitOutcome::Admitted,
            "blocked submit must complete once space frees"
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.blocked_submits, 1);
    }

    #[test]
    fn token_bucket_sheds_beyond_burst_and_readmits_after_refill() {
        let ac = AdmissionControl::new(vec![TenantSpec::new("capped")
            .with_capacity(64)
            .with_policy(OverloadPolicy::DropNewest)
            .with_rate_eps(500.0) // one token every 2 ms
            .with_rate_burst(3.0)]);
        // Frozen clock: no refill can sneak in between submits however
        // slowly the test machine runs.
        ac.freeze_clock();
        // The initial bucket holds exactly the burst.
        for k in 0..3 {
            assert_eq!(
                ac.submit(TenantId::DEFAULT, ev(k as f64)).unwrap(),
                SubmitOutcome::Admitted,
                "within burst"
            );
        }
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(3.0)).unwrap(),
            SubmitOutcome::Dropped,
            "bucket empty"
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.dropped_throttled, 1);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.admitted, 3);
        // Refill restores admission: 20 ms at 500 eps earns 10 tokens.
        ac.advance_clock(Duration::from_millis(20));
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(4.0)).unwrap(),
            SubmitOutcome::Admitted,
            "refilled"
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.submitted, 5);
        assert_eq!(c.admitted, 4);
    }

    #[test]
    fn token_bucket_caps_accumulated_credit_at_burst() {
        let ac = AdmissionControl::new(vec![TenantSpec::new("capped")
            .with_capacity(64)
            .with_policy(OverloadPolicy::DropOldest)
            .with_rate_eps(1000.0)
            .with_rate_burst(2.0)]);
        ac.freeze_clock();
        // Idle long enough to earn 30 tokens at the rate — the burst cap
        // must clamp the bucket to 2.
        ac.advance_clock(Duration::from_millis(30));
        assert!(ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap().is_admitted());
        assert!(ac.submit(TenantId::DEFAULT, ev(1.0)).unwrap().is_admitted());
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(2.0)).unwrap(),
            SubmitOutcome::Dropped,
            "credit beyond burst must not accumulate"
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.dropped_throttled, 1);
        assert_eq!(c.dropped_oldest, 0, "rate drops are not queue evictions");
    }

    #[test]
    #[should_panic(expected = "rate_burst must be finite and >= 1")]
    fn sub_token_burst_is_rejected_by_the_builder() {
        // A burst in (0, 1) clamps the bucket below one token forever:
        // Block/Late tenants would wait at submit indefinitely and drop
        // tenants would shed every event.
        let _ = TenantSpec::new("t")
            .with_rate_eps(10.0)
            .with_rate_burst(0.5);
    }

    #[test]
    fn effective_burst_clamps_direct_field_writes_to_one_token() {
        // The pub field can bypass the builder's assert; the clamp keeps the
        // tenant able to earn a whole token regardless.
        let mut spec = TenantSpec::new("t").with_rate_eps(10.0);
        spec.rate_burst = Some(0.25);
        assert_eq!(spec.effective_burst(), 1.0);
        // The rate_eps-derived default is clamped the same way.
        let slow = TenantSpec::new("slow").with_rate_eps(0.01);
        assert_eq!(slow.effective_burst(), 1.0);
    }

    #[test]
    fn blocking_tenant_waits_for_token_instead_of_dropping() {
        let ac = Arc::new(AdmissionControl::new(vec![TenantSpec::new("blocked")
            .with_capacity(64)
            .with_policy(OverloadPolicy::Block)
            .with_rate_eps(200.0) // 5 ms per token
            .with_rate_burst(1.0)]));
        ac.freeze_clock();
        assert!(ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap().is_admitted());
        // The bucket is empty and the clock is frozen: the second submit
        // *must* park in the token wait — it can only complete once the test
        // advances the clock, which replaces the old wall-clock elapsed
        // assertion with a deterministic ordering proof.
        let submitter = {
            let ac = ac.clone();
            std::thread::spawn(move || ac.submit(TenantId::DEFAULT, ev(1.0)))
        };
        while ac.tenant_snapshot(0).1.throttled == 0 {
            std::thread::yield_now();
        }
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.admitted, 1, "the waiter must not admit on a dry bucket");
        // One token's worth of time ends the wait.
        ac.advance_clock(Duration::from_millis(5));
        assert!(
            submitter.join().unwrap().unwrap().is_admitted(),
            "blocking policy must admit after the wait, never drop"
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.throttled, 1);
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.admitted, 2);
    }

    #[test]
    fn late_deadline_window_starts_at_admission_not_submit() {
        // The rustdoc contract on `TenantSpec::deadline` budgets
        // *admission-to-completion* latency: time a submitter spends parked
        // in `submit_for` under `Block`/`Late` backpressure is the caller's
        // backpressure, not pipeline delay, and must not eat the deadline.
        // Park a submitter for 10× its deadline and assert the admit stamp
        // post-dates the park, so grading at completion cannot flag it late.
        let deadline = Duration::from_millis(50);
        let ac = Arc::new(AdmissionControl::new(vec![TenantSpec::new("late")
            .with_capacity(1)
            .with_policy(OverloadPolicy::Late)
            .with_deadline(deadline)]));
        let t0 = ac.freeze_clock();
        ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap();
        let submitter = {
            let ac = ac.clone();
            std::thread::spawn(move || ac.submit(TenantId::DEFAULT, ev(1.0)))
        };
        while ac.tenant_snapshot(0).1.blocked_submits == 0 {
            std::thread::yield_now();
        }
        // The event has now been parked "before admission" for 500 ms.
        ac.advance_clock(Duration::from_millis(500));
        let mut b = Vec::new();
        assert!(ac.next_burst(&mut b)); // frees the slot → the waiter admits
        assert!(submitter.join().unwrap().unwrap().is_admitted());
        b.clear();
        assert!(ac.next_burst(&mut b));
        let admitted = &b[0];
        assert_eq!(admitted.event.timestamp, 1.0);
        assert_eq!(admitted.meta.deadline, Some(deadline));
        assert!(
            admitted.meta.admitted_at >= t0 + Duration::from_millis(500),
            "admitted_at must be stamped after the backpressure wait ended"
        );
        // Grading "now" (= the admit instant on the frozen clock): the
        // admit-to-complete window is empty, so the 500 ms park must not
        // have made the event late.
        let now = ac.now();
        let in_window = now.saturating_duration_since(admitted.meta.admitted_at);
        let late = admitted.meta.deadline.is_some_and(|d| in_window > d);
        assert!(
            !late,
            "time parked in submit_for counted against the deadline (window {in_window:?})"
        );
    }

    fn stale_fixture(
        spec: TenantSpec,
        bound: u64,
    ) -> (
        AdmissionControl,
        Arc<EmbeddingCache>,
        Arc<Mutex<VecDeque<ServedBatch>>>,
    ) {
        let cache = Arc::new(EmbeddingCache::new(
            crate::cache::CacheConfig {
                capacity: 64,
                staleness_bound_epochs: bound,
            },
            2,
        ));
        let out = Arc::new(Mutex::new(VecDeque::new()));
        let ac = AdmissionControl::new(vec![spec]).with_stale(Some(StaleServing {
            cache: cache.clone(),
            out: out.clone(),
            collector: Arc::new(Collector::new(1)),
        }));
        (ac, cache, out)
    }

    #[test]
    fn serve_stale_answers_from_cache_at_the_bound() {
        let (ac, cache, out) = stale_fixture(
            TenantSpec::new("stale")
                .with_capacity(1)
                .with_policy(OverloadPolicy::ServeStale),
            4,
        );
        // The events touch src 0 / dst 1 (see `ev`); both are cached.
        cache.insert(0, 3, &[0.5, -1.0]);
        cache.insert(1, 5, &[2.0]);
        cache.on_shard_committed(0, 6);
        assert!(ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap().is_admitted());
        // Queue full → answered stale, max age across the two vertices.
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(1.0)).unwrap(),
            SubmitOutcome::ServedStale
        );
        let b = out.lock().unwrap().pop_front().expect("stale batch queued");
        assert_eq!(b.epoch, 0, "stale batches carry the epoch-0 marker");
        assert_eq!(b.metas[0].disposition, Disposition::Stale { age_epochs: 3 });
        assert_eq!(
            b.embeddings,
            vec![(0, vec![0.5, -1.0]), (1, vec![2.0])],
            "stale answer must be exactly the cached (served) embeddings"
        );
        assert_eq!(b.cache_epochs, vec![3, 5]);
        // Expire vertex 0 past the bound: the next overflow misses and is
        // shed DropNewest-style.
        cache.on_shard_committed(0, 8);
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(2.0)).unwrap(),
            SubmitOutcome::Dropped
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.submitted, 3);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.served_stale, 1);
        assert_eq!(c.dropped_newest, 1);
        assert_eq!(c.dropped(), 1, "stale serves are not drops");
    }

    #[test]
    fn burn_gate_preempts_serve_stale_before_the_queue_is_full() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (ac, cache, out) = stale_fixture(
            TenantSpec::new("stale")
                .with_capacity(64)
                .with_policy(OverloadPolicy::ServeStale),
            8,
        );
        let fired = Arc::new(AtomicBool::new(false));
        let gate = fired.clone();
        let ac = ac.with_burn_gate(Some(Arc::new(move || gate.load(Ordering::Relaxed))));
        cache.insert(0, 1, &[1.0]);
        cache.insert(1, 1, &[2.0]);
        // Gate quiet: normal admission even though the cache could answer.
        assert!(ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap().is_admitted());
        // Gate fired: answered stale with 63 queue slots still free.
        fired.store(true, Ordering::Relaxed);
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(1.0)).unwrap(),
            SubmitOutcome::ServedStale
        );
        assert_eq!(out.lock().unwrap().len(), 1);
        // Gate fired but cache expired: falls through to normal admission —
        // preemption never sheds what the queue would have served.
        cache.on_shard_committed(0, 100);
        cache.on_shard_committed(1, 100);
        assert!(ac.submit(TenantId::DEFAULT, ev(2.0)).unwrap().is_admitted());
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.submitted, 3);
        assert_eq!(c.admitted, 2);
        assert_eq!(c.served_stale, 1);
        assert_eq!(c.preempt_stale, 1);
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn serve_stale_covers_the_throttle_path_too() {
        let (ac, cache, out) = stale_fixture(
            TenantSpec::new("stale")
                .with_capacity(64)
                .with_policy(OverloadPolicy::ServeStale)
                .with_rate_eps(100.0)
                .with_rate_burst(1.0),
            8,
        );
        ac.freeze_clock();
        cache.insert(0, 1, &[1.0]);
        cache.insert(1, 1, &[2.0]);
        assert!(ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap().is_admitted());
        // Bucket dry: answered from cache instead of dropping.
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(1.0)).unwrap(),
            SubmitOutcome::ServedStale
        );
        assert_eq!(out.lock().unwrap().len(), 1);
        // Bucket dry *and* cache expired: dropped-throttled.
        cache.on_shard_committed(0, 100);
        cache.on_shard_committed(1, 100);
        assert_eq!(
            ac.submit(TenantId::DEFAULT, ev(2.0)).unwrap(),
            SubmitOutcome::Dropped
        );
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.served_stale, 1);
        assert_eq!(c.dropped_throttled, 1);
    }

    #[test]
    fn throttled_blocked_submitter_fails_when_admission_closes() {
        let ac = Arc::new(AdmissionControl::new(vec![TenantSpec::new("t")
            .with_capacity(8)
            .with_policy(OverloadPolicy::Block)
            .with_rate_eps(0.5) // 2 s per token: the test would time out if the close were missed
            .with_rate_burst(1.0)]));
        ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap();
        let submitter = {
            let ac = ac.clone();
            std::thread::spawn(move || ac.submit(TenantId::DEFAULT, ev(1.0)))
        };
        std::thread::sleep(Duration::from_millis(20));
        ac.close();
        assert!(matches!(
            submitter.join().unwrap(),
            Err(SubmitError::Closed)
        ));
    }

    #[test]
    fn restore_bypasses_policy_and_reimposes_floor() {
        let ac = AdmissionControl::new(vec![TenantSpec::new("t")
            .with_capacity(2) // smaller than the restored tail
            .with_policy(OverloadPolicy::DropNewest)
            .with_rate_eps(1e-3)]); // bucket effectively empty forever
        let tail = vec![ev(1.0), ev(2.0), ev(3.0)];
        ac.restore(TenantId::DEFAULT, &tail, 3.0);
        let (_, c) = ac.tenant_snapshot(0);
        assert_eq!(c.admitted, 3, "restore ignores capacity and rate limits");
        assert_eq!(c.dropped(), 0);
        // The durable chronology floor holds.
        assert!(matches!(
            ac.submit(TenantId::DEFAULT, ev(2.5)).unwrap_err(),
            SubmitError::OutOfOrder { .. }
        ));
        ac.close();
        let mut got = Vec::new();
        let mut b = Vec::new();
        while ac.next_burst(&mut b) {
            got.extend(b.drain(..).map(|e| e.event));
        }
        assert_eq!(got, tail, "restored tail drains in admit order");
    }

    #[test]
    fn blocked_submitter_fails_closed_when_admission_closes() {
        let ac = Arc::new(AdmissionControl::new(vec![TenantSpec::new("t")
            .with_capacity(1)
            .with_policy(OverloadPolicy::Late)]));
        ac.submit(TenantId::DEFAULT, ev(0.0)).unwrap();
        let submitter = {
            let ac = ac.clone();
            std::thread::spawn(move || ac.submit(TenantId::DEFAULT, ev(1.0)))
        };
        std::thread::sleep(Duration::from_millis(20));
        ac.close();
        assert!(matches!(
            submitter.join().unwrap(),
            Err(SubmitError::Closed)
        ));
    }
}
