//! Live observability of the serve pipeline: stage spans, queue depths,
//! latency histograms, and the flight recorder.
//!
//! Everything here is *continuous* — unlike [`ServeReport`](crate::server::ServeReport),
//! which is a drain-time artifact, [`StreamServer::metrics`](crate::StreamServer::metrics)
//! can be called at any moment (under load, after a graceful drain, or while
//! the pipeline is unwinding from a worker panic) and assembles a typed
//! [`MetricsSnapshot`] from lock-free counters.  The recording side is built
//! on `tgnn-obs`: every worker gets a `StageObs` handle at spawn, and each
//! epoch's pass through a stage costs two `Instant` reads, two relaxed
//! counter adds, and two flight-recorder ring writes — measured at ≤ 2 % of
//! `serve_bench` throughput, and a handful of branch-predicted no-ops with
//! [`ServeConfig::metrics`](crate::server::ServeConfig::metrics) off.
//!
//! The **flight recorder** is the post-mortem half: a bounded seqlock ring
//! shared by `Arc`, so it survives `UnwindPoolOnPanic` and the epoch-gate
//! poisons.  After a GNN worker dies mid-epoch, [`MetricsHub::flight_dump`]
//! still returns the poisoned epoch's partial timeline — the `Enter` with no
//! matching `Exit` pinpoints the stage that was holding the epoch.

use crate::admission::AdmissionControl;
use crate::cache::{CacheStats, EmbeddingCache};
use crate::durability::Durability;
use crate::pipeline::Collector;
use crate::queue::QueueStats;
use crate::server::LatencySummary;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tgnn_core::profiling::{Stage, StageTimings};
use tgnn_core::BackendKind;
use tgnn_obs::{
    bucket_index, BurnState, Counter, FlightRecorder, Histogram, SloEngine, SloSpec, SloStatus,
    SpanKind, TraceSlab, TraceView,
};

pub use crate::admission::AdmissionCounters;

/// The pipeline stages visible to the flight recorder and the stage table.
///
/// `Deliver` is a point event (the `poll` handoff to the caller), not a
/// worker; every other variant names one worker loop (`Gnn` covers the whole
/// data-parallel pool — records carry the worker index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Weighted-fair admission scheduler (pre-epoch: spans carry epoch 0).
    Scheduler,
    /// Micro-batcher (seals epochs; spans cover sort + WAL append + send).
    Batcher,
    /// Neighbor sampler.
    Sampler,
    /// Memory/GRU stage (also gathers and dispatches the GNN sub-jobs).
    Memory,
    /// Data-parallel GNN pool worker.
    Gnn,
    /// State write-back / epoch committer.
    Update,
    /// Part merge + epoch reorder.
    Reorder,
    /// WAL group-commit fsync worker.
    WalSync,
    /// Background snapshot writer.
    SnapWriter,
    /// Result handed to the caller by `poll` (a `Mark`, not a span).
    Deliver,
}

/// Number of [`StageId`] variants (flight-recorder stage codes are indices).
pub const NUM_STAGES: usize = 10;

/// The worker stages (everything but `Deliver`), in pipeline order.
pub(crate) const WORKER_STAGES: [StageId; 9] = [
    StageId::Scheduler,
    StageId::Batcher,
    StageId::Sampler,
    StageId::Memory,
    StageId::Gnn,
    StageId::Update,
    StageId::Reorder,
    StageId::WalSync,
    StageId::SnapWriter,
];

impl StageId {
    /// Stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            StageId::Scheduler => "scheduler",
            StageId::Batcher => "batcher",
            StageId::Sampler => "sampler",
            StageId::Memory => "memory",
            StageId::Gnn => "gnn",
            StageId::Update => "update",
            StageId::Reorder => "reorder",
            StageId::WalSync => "wal-sync",
            StageId::SnapWriter => "snap-writer",
            StageId::Deliver => "deliver",
        }
    }

    pub(crate) fn code(self) -> u8 {
        match self {
            StageId::Scheduler => 0,
            StageId::Batcher => 1,
            StageId::Sampler => 2,
            StageId::Memory => 3,
            StageId::Gnn => 4,
            StageId::Update => 5,
            StageId::Reorder => 6,
            StageId::WalSync => 7,
            StageId::SnapWriter => 8,
            StageId::Deliver => 9,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<StageId> {
        Some(match c {
            0 => StageId::Scheduler,
            1 => StageId::Batcher,
            2 => StageId::Sampler,
            3 => StageId::Memory,
            4 => StageId::Gnn,
            5 => StageId::Update,
            6 => StageId::Reorder,
            7 => StageId::WalSync,
            8 => StageId::SnapWriter,
            9 => StageId::Deliver,
            _ => return None,
        })
    }
}

/// Epochs the causal-trace slab keeps live (ring-evicted beyond this).
/// Tail exemplars are copied out of the slab at delivery, so eviction only
/// bounds how far back [`MetricsHub::trace_dump`] can see.
pub(crate) const TRACE_CAPACITY: usize = 1024;

/// How many tail exemplars / head samples the hub retains.
const EXEMPLAR_RING: usize = 8;

/// How many of an epoch's GNN sub-jobs record their informational
/// `GnnSubWait`/`GnnSubCompute` trace segments.  Wide pools would otherwise
/// exhaust the per-trace segment cap
/// ([`MAX_TRACE_SEGMENTS`](tgnn_obs::MAX_TRACE_SEGMENTS)) and evict the
/// additive delivery-side segments the conservation check depends on.
pub(crate) const GNN_SUB_TRACE_PARTS: usize = 8;

/// SLO lane index of the admit→deliver latency objective.
pub(crate) const SLO_LANE_LATENCY: usize = 0;
/// SLO lane index of the drop-rate objective.
pub(crate) const SLO_LANE_DROPS: usize = 1;

/// The serve pipeline's causal-trace segment taxonomy.
///
/// The **additive** segments tile a traced epoch's admit→deliver wall time
/// without gaps or overlap, so their sum reconciles with the measured
/// [`Total`](SegmentId::Total) (asserted within epsilon by the serve
/// crate's trace-conservation tests).  The two `GnnSub*` codes are
/// *informational*: one pair per data-parallel sub-job, overlapping the
/// epoch-level [`Gnn`](SegmentId::Gnn) wall-time segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SegmentId {
    /// First admit of the epoch → scheduler pickup (ingress queue wait).
    IngressWait,
    /// Scheduler pickup → epoch sealed by the batcher (size/deadline wait,
    /// chronological sort, WAL `Seal` append).
    SealWait,
    /// Neighbor sampling.
    Sample,
    /// Memory/GRU stage, including the gather and GNN sub-job dispatch.
    Memory,
    /// GNN pool wall time: dispatch → the *last* sub-part finished (the
    /// parts run in parallel; this is the epoch-level envelope).
    Gnn,
    /// Last part finished → epoch merged back into order by the reorder
    /// worker (barrier wait on earlier epochs plus the merge itself).
    ReorderBarrier,
    /// Time delivery was observed blocked on the WAL group-commit
    /// watermark (zero without durability or when the fsync won the race).
    WalSyncWait,
    /// Reorder completion → `poll` handoff, minus the WAL-sync wait.
    Deliver,
    /// One GNN sub-job's dispatch→start wait (informational, not additive).
    GnnSubWait,
    /// One GNN sub-job's compute time (informational, not additive).
    GnnSubCompute,
    /// The measured admit→deliver latency the additive segments reconcile
    /// against (recorded once, at delivery).
    Total,
}

impl SegmentId {
    /// Every segment code, in code order.
    pub const ALL: [SegmentId; 11] = [
        SegmentId::IngressWait,
        SegmentId::SealWait,
        SegmentId::Sample,
        SegmentId::Memory,
        SegmentId::Gnn,
        SegmentId::ReorderBarrier,
        SegmentId::WalSyncWait,
        SegmentId::Deliver,
        SegmentId::GnnSubWait,
        SegmentId::GnnSubCompute,
        SegmentId::Total,
    ];

    /// The stable wire code stored in trace segments.
    pub fn code(self) -> u8 {
        match self {
            SegmentId::IngressWait => 0,
            SegmentId::SealWait => 1,
            SegmentId::Sample => 2,
            SegmentId::Memory => 3,
            SegmentId::Gnn => 4,
            SegmentId::ReorderBarrier => 5,
            SegmentId::WalSyncWait => 6,
            SegmentId::Deliver => 7,
            SegmentId::GnnSubWait => 8,
            SegmentId::GnnSubCompute => 9,
            SegmentId::Total => 10,
        }
    }

    /// Decodes a trace-segment code.
    pub fn from_code(c: u8) -> Option<SegmentId> {
        SegmentId::ALL.get(c as usize).copied()
    }

    /// Stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SegmentId::IngressWait => "ingress-wait",
            SegmentId::SealWait => "seal-wait",
            SegmentId::Sample => "sample",
            SegmentId::Memory => "memory",
            SegmentId::Gnn => "gnn",
            SegmentId::ReorderBarrier => "reorder-barrier",
            SegmentId::WalSyncWait => "wal-sync-wait",
            SegmentId::Deliver => "deliver",
            SegmentId::GnnSubWait => "gnn-sub-wait",
            SegmentId::GnnSubCompute => "gnn-sub-compute",
            SegmentId::Total => "total",
        }
    }

    /// Whether this segment is part of the additive admit→deliver
    /// decomposition (the conservation sum includes exactly these).
    pub fn is_additive(self) -> bool {
        self.code() <= SegmentId::Deliver.code()
    }
}

/// Declared service-level objectives (`ServeConfig::slo`).
///
/// Two objectives are evaluated over fast (5 s) / slow (60 s) burn-rate
/// windows (see [`tgnn_obs::SloEngine`]): **latency** — the fraction of
/// delivered batches whose admit→deliver latency exceeds
/// `latency_objective` must stay within `latency_budget` — and **drops** —
/// the fraction of submit outcomes lost to drop policies must stay within
/// `drop_budget`.  Their evaluated [`SloStatus`] rides every
/// [`MetricsSnapshot`]; with `preempt_stale` set, a fired objective
/// additionally flips `ServeStale` tenants into cache serving *before*
/// their ingress queue is hard-full.
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    /// Admit→deliver latency threshold: a delivered batch slower than this
    /// is "bad" for the latency objective.
    pub latency_objective: Duration,
    /// Error budget of the latency objective (allowed bad fraction).
    pub latency_budget: f64,
    /// Error budget of the drop-rate objective (allowed dropped fraction).
    pub drop_budget: f64,
    /// Burn rate at or above which an objective fires (both windows).
    pub fire_burn_rate: f64,
    /// Let a fired objective pre-emptively serve `ServeStale` tenants from
    /// the cache while their queues still have space (counted in
    /// [`AdmissionCounters::preempt_stale`]).
    pub preempt_stale: bool,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_objective: Duration::from_millis(50),
            latency_budget: 0.01,
            drop_budget: 0.01,
            fire_burn_rate: 1.0,
            preempt_stale: false,
        }
    }
}

/// Builds the burn-rate engine for a declared [`SloConfig`]: lane
/// [`SLO_LANE_LATENCY`] grades delivered batches, lane [`SLO_LANE_DROPS`]
/// grades submit outcomes.
pub(crate) fn new_slo_engine(c: &SloConfig) -> Arc<SloEngine> {
    Arc::new(SloEngine::new(vec![
        SloSpec::new("latency", c.latency_budget, c.fire_burn_rate),
        SloSpec::new("drops", c.drop_budget, c.fire_burn_rate),
    ]))
}

/// Cloneable recording handle onto the SLO engine; a no-op `Default` when
/// no objectives are configured, so callers never branch on configuration.
#[derive(Clone, Default)]
pub(crate) struct SloHandle {
    engine: Option<Arc<SloEngine>>,
    latency_objective: Duration,
}

impl SloHandle {
    pub fn new(engine: Option<Arc<SloEngine>>, cfg: Option<&SloConfig>) -> Self {
        SloHandle {
            engine,
            latency_objective: cfg.map(|c| c.latency_objective).unwrap_or_default(),
        }
    }

    /// Grades one delivered batch of `events` against the latency objective.
    #[inline]
    pub fn record_batch_latency(&self, latency: Duration, events: u64) {
        if let Some(e) = &self.engine {
            if latency <= self.latency_objective {
                e.record_many(SLO_LANE_LATENCY, events, 0);
            } else {
                e.record_many(SLO_LANE_LATENCY, 0, events);
            }
        }
    }

    /// Feeds one submit outcome into the drop-rate objective.
    #[inline]
    pub fn record_submit(&self, dropped: bool) {
        if let Some(e) = &self.engine {
            e.record(SLO_LANE_DROPS, !dropped);
        }
    }

    /// Whether any objective currently fires (cached per 100 ms tick).
    #[inline]
    pub fn fired(&self) -> bool {
        self.engine.as_ref().is_some_and(|e| e.fired())
    }
}

/// Per-worker recording handle, registered once at pipeline spawn.  With
/// metrics off every method is a branch-predicted no-op; with metrics on,
/// an `enter`/`exit` pair costs two ring writes plus two relaxed adds.
#[derive(Clone)]
pub(crate) struct StageObs {
    enabled: bool,
    stage: StageId,
    worker: u16,
    recorder: Arc<FlightRecorder>,
    busy_ns: Counter,
    batches: Counter,
    /// The shared causal-trace slab; `None` with metrics off.
    trace: Option<Arc<TraceSlab>>,
}

impl StageObs {
    /// Marks the start of this worker's work on `epoch` (0 = pre-epoch).
    #[inline]
    pub fn enter(&self, epoch: u64) -> Option<Instant> {
        self.enter_sampled(epoch, true)
    }

    /// Marks the end of the span opened by [`Self::enter`] — including the
    /// downstream handoff, so busy time counts backpressure blocking (idle
    /// is strictly "waiting for input").
    #[inline]
    pub fn exit(&self, epoch: u64, span: Option<Instant>) {
        self.exit_sampled(epoch, span, true);
    }

    /// [`Self::enter`] with the flight-ring write gated on `record`.  Busy
    /// time and batch counts still accumulate on every call — only the
    /// timeline event is skipped.  For stages whose unit of work is one
    /// *event* rather than one epoch (the admission scheduler forwarding
    /// per-event bursts), recording every span would both dominate the
    /// stage's own cost and flood the bounded ring, evicting the per-epoch
    /// timeline the recorder exists to keep.
    #[inline]
    pub fn enter_sampled(&self, epoch: u64, record: bool) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        if record {
            self.recorder
                .record(self.stage.code(), self.worker, epoch, SpanKind::Enter);
        }
        Some(Instant::now())
    }

    /// [`Self::exit`] with the flight-ring write gated on `record` (pair it
    /// with the same `record` the matching [`Self::enter_sampled`] used, or
    /// the dump shows unbalanced spans).
    #[inline]
    pub fn exit_sampled(&self, epoch: u64, span: Option<Instant>, record: bool) {
        let Some(t0) = span else { return };
        self.busy_ns.add(t0.elapsed().as_nanos() as u64);
        self.batches.inc();
        if record {
            self.recorder
                .record(self.stage.code(), self.worker, epoch, SpanKind::Exit);
        }
    }

    /// Whether recording is compiled in *and* enabled for this session.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Claims the trace slot for `epoch` (the batcher calls this once, at
    /// seal time, before any stage records segments).
    #[inline]
    pub fn trace_begin(&self, epoch: u64) {
        if let Some(t) = &self.trace {
            t.begin(epoch);
        }
    }

    /// Appends one causal-trace segment to `epoch`'s trace.
    #[inline]
    pub fn trace_record(&self, epoch: u64, seg: SegmentId, duration: Duration) {
        if let Some(t) = &self.trace {
            t.record(epoch, seg.code(), duration);
        }
    }
}

/// The durability workers' observability bundle, attached to the shared
/// [`Durability`] handle after construction (it is created before the hub).
pub(crate) struct DurabilityObs {
    /// Span handle of the `tgnn-serve-wal-sync` worker.
    pub syncer: StageObs,
    /// Span handle of the `tgnn-serve-snap` writer.
    pub snap: StageObs,
    /// Latency of each group-commit `fsync`, in microseconds.
    pub fsync_us: Histogram,
}

/// Construction parameters of [`MetricsHub`] (internal).
pub(crate) struct HubConfig {
    pub enabled: bool,
    pub flight_capacity: usize,
    pub queues: Vec<Box<dyn Fn() -> QueueStats + Send + Sync>>,
    pub collector: Arc<Collector>,
    pub admission: Arc<AdmissionControl>,
    pub durability: Option<Arc<Durability>>,
    pub cache: Option<Arc<EmbeddingCache>>,
    pub next_epoch: Arc<AtomicU64>,
    pub gnn_workers: usize,
    /// `ServeConfig::metrics_sampling`: 1-in-N flight-ring sampling for
    /// per-event stages, shared with trace head-sample retention.
    pub metrics_sampling: u64,
    /// The burn-rate engine (from [`new_slo_engine`]) — built by the server
    /// before the hub so admission control shares the same lanes.
    pub slo_engine: Option<Arc<SloEngine>>,
}

struct HubInner {
    enabled: bool,
    started: Instant,
    recorder: Arc<FlightRecorder>,
    /// Busy-nanoseconds and completed-batch counters, indexed by
    /// `StageId::code()`; the GNN pool's workers share one pair.
    stage_busy_ns: Vec<Counter>,
    stage_batches: Vec<Counter>,
    stage_workers: Vec<u16>,
    /// Seal-to-embeddings latency, recorded by the reorder worker (µs).
    batch_latency_us: Histogram,
    /// Group-commit fsync latency, recorded by the WAL syncer (µs).
    wal_fsync_us: Histogram,
    queues: Vec<Box<dyn Fn() -> QueueStats + Send + Sync>>,
    collector: Arc<Collector>,
    admission: Arc<AdmissionControl>,
    durability: Option<Arc<Durability>>,
    cache: Option<Arc<EmbeddingCache>>,
    next_epoch: Arc<AtomicU64>,
    /// The per-epoch causal-trace slab (allocated even with metrics off —
    /// the worker handles just never write to it then).
    trace: Arc<TraceSlab>,
    /// The burn-rate engine, when objectives are declared.
    slo: Option<Arc<SloEngine>>,
    /// Admit→deliver latency of traced deliveries (µs) — the tail-exemplar
    /// reference distribution, distinct from the seal-to-embeddings
    /// `batch_latency_us`.
    delivery_latency_us: Histogram,
    /// Tail exemplars: full traces of deliveries that landed in the top
    /// (p99) bucket of `delivery_latency_us`.
    exemplars: Mutex<VecDeque<TraceExemplar>>,
    /// Head samples: every `metrics_sampling`-th delivered epoch's trace.
    head_samples: Mutex<VecDeque<TraceExemplar>>,
    metrics_sampling: u64,
}

/// Cloneable, `Send + Sync` handle to a server's live metrics.  Obtained
/// from [`StreamServer::metrics_hub`](crate::StreamServer::metrics_hub); it
/// does not borrow the server, so a sampler thread (or a panic handler) can
/// keep snapshotting while the owning thread is busy — or gone.
#[derive(Clone)]
pub struct MetricsHub {
    inner: Arc<HubInner>,
}

impl MetricsHub {
    pub(crate) fn new(cfg: HubConfig) -> Self {
        let mut stage_workers = vec![1u16; NUM_STAGES];
        stage_workers[StageId::Gnn.code() as usize] = cfg.gnn_workers as u16;
        let slo = cfg.slo_engine;
        MetricsHub {
            inner: Arc::new(HubInner {
                enabled: cfg.enabled,
                started: Instant::now(),
                recorder: Arc::new(FlightRecorder::new(cfg.flight_capacity)),
                stage_busy_ns: (0..NUM_STAGES).map(|_| Counter::new()).collect(),
                stage_batches: (0..NUM_STAGES).map(|_| Counter::new()).collect(),
                stage_workers,
                batch_latency_us: Histogram::new(),
                wal_fsync_us: Histogram::new(),
                queues: cfg.queues,
                collector: cfg.collector,
                admission: cfg.admission,
                durability: cfg.durability,
                cache: cfg.cache,
                next_epoch: cfg.next_epoch,
                trace: Arc::new(TraceSlab::new(TRACE_CAPACITY)),
                slo,
                delivery_latency_us: Histogram::new(),
                exemplars: Mutex::new(VecDeque::new()),
                head_samples: Mutex::new(VecDeque::new()),
                metrics_sampling: cfg.metrics_sampling.max(1),
            }),
        }
    }

    /// The recording handle a worker loop carries.
    pub(crate) fn stage_obs(&self, stage: StageId, worker: u16) -> StageObs {
        let code = stage.code() as usize;
        StageObs {
            enabled: self.inner.enabled,
            stage,
            worker,
            recorder: self.inner.recorder.clone(),
            busy_ns: self.inner.stage_busy_ns[code].clone(),
            batches: self.inner.stage_batches[code].clone(),
            trace: self.inner.enabled.then(|| self.inner.trace.clone()),
        }
    }

    /// The observability bundle for the durability workers.
    pub(crate) fn durability_obs(&self) -> DurabilityObs {
        DurabilityObs {
            syncer: self.stage_obs(StageId::WalSync, 0),
            snap: self.stage_obs(StageId::SnapWriter, 0),
            fsync_us: self.inner.wal_fsync_us.clone(),
        }
    }

    /// The reorder worker's seal-to-embeddings latency histogram.
    pub(crate) fn batch_latency_hist(&self) -> Histogram {
        self.inner.batch_latency_us.clone()
    }

    /// Records delivery of an epoch's results to the caller (`poll`) and —
    /// for traced epochs — finalizes the epoch's causal trace with its
    /// delivery-side segments:
    ///
    /// * `total` — the measured admit→deliver latency ([`SegmentId::Total`],
    ///   the reconciliation reference);
    /// * `wal_wait` — time delivery was observed blocked on the WAL
    ///   group-commit watermark ([`SegmentId::WalSyncWait`]);
    /// * `since_reorder` — reorder completion → this handoff; minus
    ///   `wal_wait` it becomes [`SegmentId::Deliver`].
    ///
    /// `traced` is false for results that never ran the pipeline in this
    /// session (stale cache answers, recovery re-serves) — their epochs own
    /// no trace slot, and writing would only inflate the conflict counter.
    ///
    /// A traced delivery whose `total` lands in the top (p99) bucket of the
    /// admit→deliver histogram has its full trace retained as a **tail
    /// exemplar**; every `metrics_sampling`-th epoch is retained as a
    /// **head sample**.  Both rings ride the [`MetricsSnapshot`].
    pub(crate) fn record_delivery(
        &self,
        epoch: u64,
        traced: bool,
        total: Duration,
        wal_wait: Duration,
        since_reorder: Duration,
    ) {
        let inner = &self.inner;
        if !inner.enabled {
            return;
        }
        inner
            .recorder
            .record(StageId::Deliver.code(), 0, epoch, SpanKind::Mark);
        if !traced {
            return;
        }
        inner
            .trace
            .record(epoch, SegmentId::WalSyncWait.code(), wal_wait);
        inner.trace.record(
            epoch,
            SegmentId::Deliver.code(),
            since_reorder.saturating_sub(wal_wait),
        );
        inner.trace.record(epoch, SegmentId::Total.code(), total);
        let us = total.as_micros() as u64;
        inner.delivery_latency_us.record(us);
        // Tail test: the sample was just recorded, so on the very first
        // delivery p99 is the sample's own bucket — at least one exemplar
        // is always captured.
        let tail = bucket_index(us) >= bucket_index(inner.delivery_latency_us.percentile(0.99));
        let head = epoch.is_multiple_of(inner.metrics_sampling);
        if !tail && !head {
            return;
        }
        let Some(view) = inner.trace.snapshot(epoch) else {
            return;
        };
        let push = |ring: &Mutex<VecDeque<TraceExemplar>>, ex: TraceExemplar| {
            let mut ring = ring.lock().unwrap();
            if ring.len() >= EXEMPLAR_RING {
                ring.pop_front();
            }
            ring.push_back(ex);
        };
        let ex = TraceExemplar { epoch, total, view };
        if tail {
            push(&inner.exemplars, ex.clone());
        }
        if head {
            push(&inner.head_samples, ex);
        }
    }

    /// Decodes every trace still live in the slab (the most recent
    /// [`TRACE_CAPACITY`](crate::metrics) epochs), sorted by epoch — the
    /// post-drain feed of the bench's blame table and `--trace-out` dump.
    pub fn trace_dump(&self) -> Vec<TraceView> {
        self.inner.trace.dump()
    }

    /// Live per-queue statistics, scheduler→batcher first.
    pub(crate) fn queue_stats(&self) -> Vec<QueueStats> {
        self.inner.queues.iter().map(|q| q()).collect()
    }

    /// Table-I-shaped busy-time breakdown from the worker span counters:
    /// sampler → `sample`, memory → `memory`, GNN pool (summed) → `gnn`,
    /// update → `update`.  The serve-path mirror of what
    /// `InferenceEngine` reports through `core::profiling`.
    pub(crate) fn stage_timings(&self) -> StageTimings {
        let busy =
            |s: StageId| Duration::from_nanos(self.inner.stage_busy_ns[s.code() as usize].get());
        let mut t = StageTimings::default();
        t.add(Stage::Sample, busy(StageId::Sampler));
        t.add(Stage::Memory, busy(StageId::Memory));
        t.add(Stage::Gnn, busy(StageId::Gnn));
        t.add(Stage::Update, busy(StageId::Update));
        t
    }

    /// Whether this session records metrics (`ServeConfig::metrics`).
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Assembles a point-in-time [`MetricsSnapshot`].  Lock-free on the hot
    /// counters; the queue depths and tenant counters take their short
    /// registration locks.  Callable at any moment — including while the
    /// pipeline is poisoned.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        let uptime = inner.started.elapsed();
        let stages = WORKER_STAGES
            .iter()
            .map(|&s| {
                let code = s.code() as usize;
                let busy = Duration::from_nanos(inner.stage_busy_ns[code].get());
                let workers = inner.stage_workers[code];
                StageSnapshot {
                    stage: s,
                    workers,
                    busy,
                    batches: inner.stage_batches[code].get(),
                    busy_frac: if uptime.is_zero() {
                        0.0
                    } else {
                        busy.as_secs_f64() / (uptime.as_secs_f64() * workers as f64)
                    },
                }
            })
            .collect();
        let lat = inner.batch_latency_us.snapshot();
        let us = 1e3; // µs per ms
        let batch_latency = LatencySummary {
            mean_ms: lat.mean() / us,
            p50_ms: lat.percentile(0.50) as f64 / us,
            p95_ms: lat.percentile(0.95) as f64 / us,
            p99_ms: lat.percentile(0.99) as f64 / us,
            max_ms: lat.max() as f64 / us,
        };
        let mut admission = AdmissionTotals::default();
        let mut tenants = Vec::with_capacity(inner.admission.num_tenants());
        for i in 0..inner.admission.num_tenants() {
            let (spec, counters) = inner.admission.tenant_snapshot(i);
            admission.submitted += counters.submitted;
            admission.admitted += counters.admitted;
            admission.dropped_newest += counters.dropped_newest;
            admission.dropped_oldest += counters.dropped_oldest;
            admission.dropped_throttled += counters.dropped_throttled;
            admission.blocked_submits += counters.blocked_submits;
            admission.throttled += counters.throttled;
            admission.served_stale += counters.served_stale;
            let tc = &inner.collector.tenants[i];
            tenants.push(TenantMetrics {
                name: spec.name,
                counters,
                served: tc.served.load(Ordering::Relaxed),
                served_stale: tc.served_stale.load(Ordering::Relaxed),
                late: tc.late.load(Ordering::Relaxed),
            });
        }
        let backends: Vec<BackendMetrics> = BackendKind::ALL
            .into_iter()
            .filter_map(|k| {
                let c = &inner.collector.backends[k.code()];
                let served_batches = c.served_batches.load(Ordering::Relaxed);
                if served_batches == 0 {
                    return None;
                }
                let modeled = c.modeled_latencies.lock().unwrap();
                Some(BackendMetrics {
                    kind: k,
                    served_batches,
                    served_events: c.served_events.load(Ordering::Relaxed),
                    modeled_latency: (!modeled.is_empty())
                        .then(|| LatencySummary::from_latencies(&modeled)),
                })
            })
            .collect();
        let epochs = inner.next_epoch.load(Ordering::SeqCst);
        let durability = inner.durability.as_ref().map(|d| {
            let stats = d.stats();
            let f = inner.wal_fsync_us.snapshot();
            DurabilityMetrics {
                snapshot_lag_epochs: epochs.saturating_sub(stats.last_snapshot_epoch),
                snapshot_lag_seconds: d.snapshot_lag_seconds(),
                fsync_p50_us: f.percentile(0.50),
                fsync_p99_us: f.percentile(0.99),
                fsync_mean_us: f.mean(),
                stats,
            }
        });
        let dl = inner.delivery_latency_us.snapshot();
        let trace = TraceStats {
            capacity: inner.trace.capacity(),
            begun: inner.trace.begun(),
            conflicts: inner.trace.conflicts(),
            overflows: inner.trace.overflows(),
            delivery_p99_ms: dl.percentile(0.99) as f64 / 1e3,
            exemplars: inner.exemplars.lock().unwrap().iter().cloned().collect(),
            head_samples: inner.head_samples.lock().unwrap().iter().cloned().collect(),
        };
        let slo = inner.slo.as_ref().map(|e| e.status()).unwrap_or_default();
        MetricsSnapshot {
            enabled: inner.enabled,
            uptime,
            epochs,
            batches_served: inner.collector.batches.load(Ordering::Relaxed) as u64,
            events_served: inner.collector.events.load(Ordering::Relaxed) as u64,
            embeddings: inner.collector.embeddings.load(Ordering::Relaxed) as u64,
            queues: self.queue_stats(),
            stages,
            stage_timings: self.stage_timings(),
            batch_latency,
            admission,
            tenants,
            backends,
            durability,
            cache: inner.cache.as_ref().map(|c| c.stats()),
            flight: FlightStats {
                capacity: inner.recorder.capacity(),
                recorded: inner.recorder.recorded(),
                dropped: inner.recorder.dropped(),
            },
            slo,
            trace,
        }
    }

    /// Dumps the flight recorder: the last N enter/exit/mark events across
    /// every worker, in recording order.  Works concurrently with the
    /// pipeline and after a panic/poison — the ring is shared by `Arc` and
    /// written with seqlock stores, so no dying worker can corrupt or lock
    /// it.  A poisoned epoch shows up as an `Enter` without a matching
    /// `Exit` on the stage that was holding it.
    pub fn flight_dump(&self) -> Vec<SpanRecord> {
        self.inner
            .recorder
            .dump()
            .into_iter()
            .filter_map(|r| {
                Some(SpanRecord {
                    seq: r.seq,
                    at: Duration::from_nanos(r.tick_ns),
                    stage: StageId::from_code(r.stage)?,
                    worker: r.worker,
                    epoch: r.epoch,
                    kind: r.kind,
                })
            })
            .collect()
    }

    /// Spawns a sampler thread that appends one [`MetricsSnapshot`] JSON
    /// line to `path` every `interval` (plus a final line at stop), for
    /// offline timeline analysis.  The file is created (truncated) up
    /// front so configuration errors surface here, not in the thread.
    /// Dropping the returned [`MetricsLogger`] stops the thread and joins
    /// it.
    pub fn spawn_jsonl_sampler(
        &self,
        path: &Path,
        interval: Duration,
    ) -> std::io::Result<MetricsLogger> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        let stop = Arc::new(AtomicBool::new(false));
        let hub = self.clone();
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("tgnn-metrics-sampler".into())
            .spawn(move || loop {
                let line = hub.snapshot().to_json_line();
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
                if flag.load(Ordering::Acquire) {
                    return;
                }
                // Sleep in short slices so stop() returns promptly even with
                // a long sampling interval.
                let t0 = Instant::now();
                while t0.elapsed() < interval {
                    if flag.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25).min(interval));
                }
            })
            .expect("metrics: failed to spawn sampler thread");
        Ok(MetricsLogger {
            stop,
            handle: Some(handle),
        })
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("enabled", &self.inner.enabled)
            .field("flight_capacity", &self.inner.recorder.capacity())
            .finish()
    }
}

/// Stops the JSONL sampler thread when dropped (writing one final line).
#[derive(Debug)]
pub struct MetricsLogger {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsLogger {
    /// Stops the sampler and waits for its final line to be flushed.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsLogger {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One decoded flight-recorder event, with the stage resolved to a
/// [`StageId`] and the tick converted to a [`Duration`] since pipeline
/// spawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global sequence number (gaps mean ring overwrite).
    pub seq: u64,
    /// Time since the pipeline was spawned.
    pub at: Duration,
    /// Which stage recorded the event.
    pub stage: StageId,
    /// Worker index within the stage (GNN pool workers are 0..N-1).
    pub worker: u16,
    /// The epoch the event belongs to (0 = pre-epoch scheduler work).
    pub epoch: u64,
    /// Enter, exit, or mark.
    pub kind: SpanKind,
}

/// Per-stage slice of a [`MetricsSnapshot`].
#[derive(Clone, Copy, Debug)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: StageId,
    /// Number of workers the stage runs (1 except the GNN pool).
    pub workers: u16,
    /// Cumulative busy time across the stage's workers (includes downstream
    /// backpressure blocking; excludes waiting for input).
    pub busy: Duration,
    /// Spans completed (≈ epochs processed; sub-jobs for the GNN pool).
    pub batches: u64,
    /// `busy / (uptime × workers)` — the stage's utilization; idle is
    /// `1 - busy_frac`.
    pub busy_frac: f64,
}

/// Admission counters summed over every tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmissionTotals {
    /// `submit_for` calls that returned `Ok`.
    pub submitted: u64,
    /// Events that entered an ingress queue.
    pub admitted: u64,
    /// Drops by [`OverloadPolicy::DropNewest`](tgnn_core::tenancy::OverloadPolicy).
    pub dropped_newest: u64,
    /// Evictions by [`OverloadPolicy::DropOldest`](tgnn_core::tenancy::OverloadPolicy).
    pub dropped_oldest: u64,
    /// Rate-limit drops (empty token bucket, drop policies).
    pub dropped_throttled: u64,
    /// Blocked `submit_for` calls (Block/Late backpressure).
    pub blocked_submits: u64,
    /// Rate-limited `submit_for` waits (Block/Late policies).
    pub throttled: u64,
    /// Events answered from the embedding cache
    /// ([`OverloadPolicy::ServeStale`](tgnn_core::tenancy::OverloadPolicy)).
    pub served_stale: u64,
}

/// Per-tenant slice of a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct TenantMetrics {
    /// Display name from the tenant's spec.
    pub name: String,
    /// Admission-side counters (see [`AdmissionCounters`]).
    pub counters: AdmissionCounters,
    /// Events whose results were delivered (including stale cache answers).
    pub served: u64,
    /// Events answered from the embedding cache under overload (subset of
    /// `served`; excluded from the latency distribution).
    pub served_stale: u64,
    /// Served events graded late.
    pub late: u64,
}

/// Per-backend slice of a [`MetricsSnapshot`]: which compute backends are
/// serving batches and, for modeled backends (hwsim), the distribution of
/// modeled service latencies.  Only backends that have served at least one
/// batch appear.
#[derive(Clone, Debug)]
pub struct BackendMetrics {
    /// Which datapath this row describes.
    pub kind: BackendKind,
    /// Pipeline-served micro-batches this backend computed.
    pub served_batches: u64,
    /// Events inside those batches.
    pub served_events: u64,
    /// Modeled service-latency distribution (one sample per served batch);
    /// `None` for backends that really execute where they are measured.
    pub modeled_latency: Option<LatencySummary>,
}

/// Durability slice of a [`MetricsSnapshot`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityMetrics {
    /// WAL/snapshot lifetime counters (same shape as the serve report's).
    pub stats: crate::durability::DurabilityStats,
    /// Epochs sealed since the last completed snapshot — how much WAL
    /// replay a crash right now would cost.
    pub snapshot_lag_epochs: u64,
    /// Wall-clock seconds since the last completed snapshot (since the
    /// durability handle was opened when none has completed yet) — makes a
    /// stalled snapshot writer visible even when epochs stop advancing.
    pub snapshot_lag_seconds: f64,
    /// Median group-commit fsync latency, µs.
    pub fsync_p50_us: u64,
    /// p99 group-commit fsync latency, µs.
    pub fsync_p99_us: u64,
    /// Mean group-commit fsync latency, µs.
    pub fsync_mean_us: f64,
}

/// Flight-recorder occupancy.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlightStats {
    /// Ring capacity in events.
    pub capacity: usize,
    /// Events recorded over the session (including overwritten).
    pub recorded: u64,
    /// Events lost to ring wrap-around.
    pub dropped: u64,
}

/// One retained trace: a delivered epoch's full causal decomposition plus
/// its measured admit→deliver latency.
#[derive(Clone, Debug)]
pub struct TraceExemplar {
    /// The traced epoch.
    pub epoch: u64,
    /// Measured admit→deliver latency (anchored at the epoch's first
    /// admitted event).
    pub total: Duration,
    /// The decoded trace; segment codes map to [`SegmentId`].
    pub view: TraceView,
}

/// Causal-tracing slice of a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Trace-slab ring capacity (epochs kept live).
    pub capacity: usize,
    /// Traces begun (one per sealed epoch with metrics on).
    pub begun: u64,
    /// Segment writes dropped because their epoch's slot was ring-evicted.
    pub conflicts: u64,
    /// Segment writes dropped by the per-trace segment cap.
    pub overflows: u64,
    /// p99 of the admit→deliver latency distribution backing tail-exemplar
    /// selection, in milliseconds.
    pub delivery_p99_ms: f64,
    /// Tail exemplars: traces whose admit→deliver latency landed in the top
    /// (p99) histogram bucket, most recent last.
    pub exemplars: Vec<TraceExemplar>,
    /// Head samples: every `metrics_sampling`-th delivered epoch's trace,
    /// most recent last.
    pub head_samples: Vec<TraceExemplar>,
}

/// A typed point-in-time view of the serve pipeline, assembled by
/// [`StreamServer::metrics`](crate::StreamServer::metrics) /
/// [`MetricsHub::snapshot`].  Renderable as a human table
/// ([`Self::render_table`]), Prometheus-style text ([`Self::to_prometheus`]),
/// or a JSONL line ([`Self::to_json_line`]).
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Whether the session records metrics (`false` ⇒ counters are zeros).
    pub enabled: bool,
    /// Time since the pipeline was spawned.
    pub uptime: Duration,
    /// Highest epoch assigned so far (warm-up chunks + sealed batches).
    pub epochs: u64,
    /// Micro-batches that completed the pipeline.
    pub batches_served: u64,
    /// Events in those batches.
    pub events_served: u64,
    /// Embeddings produced.
    pub embeddings: u64,
    /// Live per-queue statistics (depth is the instantaneous occupancy).
    pub queues: Vec<QueueStats>,
    /// Per-stage busy/idle and span counts, pipeline order.
    pub stages: Vec<StageSnapshot>,
    /// The Table-I-shaped sample/memory/GNN/update busy breakdown — the
    /// serve-path counterpart of the engine's `core::profiling` report.
    pub stage_timings: StageTimings,
    /// Seal-to-embeddings latency percentiles from the log-linear histogram
    /// (≤ 6.25 % relative error; `max_ms` is the top non-empty bucket).
    pub batch_latency: LatencySummary,
    /// Admission counters summed over tenants (drops broken out by policy).
    pub admission: AdmissionTotals,
    /// Per-tenant admission + completion counters.
    pub tenants: Vec<TenantMetrics>,
    /// Per-backend serving counters, [`BackendKind::code`] order; empty
    /// until a backend serves its first batch.
    pub backends: Vec<BackendMetrics>,
    /// WAL fsync count/latency and snapshot-writer lag; `None` without
    /// durability.
    pub durability: Option<DurabilityMetrics>,
    /// Embedding-cache counters (hits, misses, stale serves, occupancy);
    /// `None` when no cache is configured.
    pub cache: Option<CacheStats>,
    /// Flight-recorder occupancy.
    pub flight: FlightStats,
    /// Evaluated SLO burn-rate verdicts (empty without `ServeConfig::slo`).
    pub slo: Vec<SloStatus>,
    /// Causal-trace slab counters plus retained tail/head exemplars.
    pub trace: TraceStats,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        push(
            &mut out,
            format!(
                "uptime {:8.2}s   epochs {}   batches {}   events {}   embeddings {}{}",
                self.uptime.as_secs_f64(),
                self.epochs,
                self.batches_served,
                self.events_served,
                self.embeddings,
                if self.enabled { "" } else { "   [metrics off]" }
            ),
        );
        push(
            &mut out,
            format!(
                "batch latency  p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms   max {:.3} ms",
                self.batch_latency.p50_ms,
                self.batch_latency.p95_ms,
                self.batch_latency.p99_ms,
                self.batch_latency.max_ms
            ),
        );
        push(
            &mut out,
            format!(
                "{:<22} {:>5} {:>5} {:>9} {:>10} {:>8}",
                "queue", "depth", "max", "mean", "pushes", "blocked"
            ),
        );
        for q in &self.queues {
            push(
                &mut out,
                format!(
                    "{:<22} {:>5} {:>5} {:>9.2} {:>10} {:>8}",
                    q.name, q.depth, q.max_depth, q.mean_depth, q.pushes, q.blocked_sends
                ),
            );
        }
        push(
            &mut out,
            format!(
                "{:<22} {:>7} {:>12} {:>7} {:>10}",
                "stage", "workers", "busy", "busy%", "spans"
            ),
        );
        for s in &self.stages {
            if s.batches == 0 && s.busy.is_zero() {
                continue;
            }
            push(
                &mut out,
                format!(
                    "{:<22} {:>7} {:>10.3}ms {:>6.1}% {:>10}",
                    s.stage.label(),
                    s.workers,
                    s.busy.as_secs_f64() * 1e3,
                    s.busy_frac * 100.0,
                    s.batches
                ),
            );
        }
        for t in &self.tenants {
            push(
                &mut out,
                format!(
                    "tenant {:<15} submitted {:>8}  admitted {:>8}  dropped {:>6}  served {:>8}  stale {:>6}  late {:>6}",
                    t.name,
                    t.counters.submitted,
                    t.counters.admitted,
                    t.counters.dropped(),
                    t.served,
                    t.served_stale,
                    t.late
                ),
            );
        }
        for b in &self.backends {
            let modeled = match &b.modeled_latency {
                Some(m) => format!(
                    "  modeled p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
                    m.p50_ms, m.p99_ms, m.max_ms
                ),
                None => String::new(),
            };
            push(
                &mut out,
                format!(
                    "backend {:<6} batches {:>8}  events {:>8}{}",
                    b.kind.label(),
                    b.served_batches,
                    b.served_events,
                    modeled
                ),
            );
        }
        if let Some(c) = &self.cache {
            push(
                &mut out,
                format!(
                    "cache  hits {}  misses {}  hit-rate {:.1}%  served-stale {}  entries {}  evictions {}  expired {}  bound {} epochs",
                    c.hits,
                    c.misses,
                    c.hit_rate() * 100.0,
                    c.served_stale,
                    c.entries,
                    c.evictions,
                    c.expired,
                    c.staleness_bound
                ),
            );
        }
        if let Some(d) = &self.durability {
            push(
                &mut out,
                format!(
                    "wal  records {}  fsyncs {}  fsync p50/p99 {}/{} µs   snapshots {}  lag {} epochs / {:.1}s",
                    d.stats.wal_records,
                    d.stats.wal_fsyncs,
                    d.fsync_p50_us,
                    d.fsync_p99_us,
                    d.stats.snapshots,
                    d.snapshot_lag_epochs,
                    d.snapshot_lag_seconds
                ),
            );
        }
        let burn = |b: Option<f64>| match b {
            Some(v) => format!("{v:.2}"),
            None => "-".to_string(),
        };
        for s in &self.slo {
            push(
                &mut out,
                format!(
                    "slo {:<10} budget {:.3}  burn fast {} / slow {}  [{}]",
                    s.name,
                    s.error_budget,
                    burn(s.fast_burn),
                    burn(s.slow_burn),
                    burn_state_label(s.state)
                ),
            );
        }
        if self.trace.begun > 0 {
            push(
                &mut out,
                format!(
                    "traces  begun {}  conflicts {}  overflows {}  deliver p99 {:.3} ms  tail exemplars {}  head samples {}",
                    self.trace.begun,
                    self.trace.conflicts,
                    self.trace.overflows,
                    self.trace.delivery_p99_ms,
                    self.trace.exemplars.len(),
                    self.trace.head_samples.len()
                ),
            );
        }
        push(
            &mut out,
            format!(
                "flight recorder  {} / {} events ({} overwritten)",
                self.flight.recorded.min(self.flight.capacity as u64),
                self.flight.capacity,
                self.flight.dropped
            ),
        );
        out
    }

    /// Renders the snapshot as Prometheus-style text exposition.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut scalar = |name: &str, kind: &str, v: String| {
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
        };
        scalar(
            "tgnn_uptime_seconds",
            "gauge",
            format!("{:.3}", self.uptime.as_secs_f64()),
        );
        scalar("tgnn_epochs_total", "counter", self.epochs.to_string());
        scalar(
            "tgnn_batches_served_total",
            "counter",
            self.batches_served.to_string(),
        );
        scalar(
            "tgnn_events_served_total",
            "counter",
            self.events_served.to_string(),
        );
        scalar(
            "tgnn_embeddings_total",
            "counter",
            self.embeddings.to_string(),
        );
        out.push_str("# TYPE tgnn_queue_depth gauge\n");
        for q in &self.queues {
            out.push_str(&format!(
                "tgnn_queue_depth{{queue=\"{}\"}} {}\n",
                q.name, q.depth
            ));
        }
        out.push_str("# TYPE tgnn_queue_pushes_total counter\n");
        for q in &self.queues {
            out.push_str(&format!(
                "tgnn_queue_pushes_total{{queue=\"{}\"}} {}\n",
                q.name, q.pushes
            ));
        }
        out.push_str("# TYPE tgnn_queue_blocked_sends_total counter\n");
        for q in &self.queues {
            out.push_str(&format!(
                "tgnn_queue_blocked_sends_total{{queue=\"{}\"}} {}\n",
                q.name, q.blocked_sends
            ));
        }
        out.push_str("# TYPE tgnn_stage_busy_seconds_total counter\n");
        for s in &self.stages {
            out.push_str(&format!(
                "tgnn_stage_busy_seconds_total{{stage=\"{}\"}} {:.6}\n",
                s.stage.label(),
                s.busy.as_secs_f64()
            ));
        }
        out.push_str("# TYPE tgnn_stage_spans_total counter\n");
        for s in &self.stages {
            out.push_str(&format!(
                "tgnn_stage_spans_total{{stage=\"{}\"}} {}\n",
                s.stage.label(),
                s.batches
            ));
        }
        out.push_str("# TYPE tgnn_batch_latency_ms summary\n");
        for (q, v) in [
            (0.5, self.batch_latency.p50_ms),
            (0.95, self.batch_latency.p95_ms),
            (0.99, self.batch_latency.p99_ms),
        ] {
            out.push_str(&format!(
                "tgnn_batch_latency_ms{{quantile=\"{q}\"}} {v:.3}\n"
            ));
        }
        out.push_str(&format!(
            "tgnn_batch_latency_ms_count {}\n",
            self.batches_served
        ));
        out.push_str("# TYPE tgnn_admission_dropped_total counter\n");
        for (policy, v) in [
            ("newest", self.admission.dropped_newest),
            ("oldest", self.admission.dropped_oldest),
            ("throttled", self.admission.dropped_throttled),
        ] {
            out.push_str(&format!(
                "tgnn_admission_dropped_total{{policy=\"{policy}\"}} {v}\n"
            ));
        }
        let mut scalar = |name: &str, kind: &str, v: String| {
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
        };
        scalar(
            "tgnn_admission_submitted_total",
            "counter",
            self.admission.submitted.to_string(),
        );
        scalar(
            "tgnn_admission_blocked_submits_total",
            "counter",
            self.admission.blocked_submits.to_string(),
        );
        out.push_str("# TYPE tgnn_tenant_served_total counter\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "tgnn_tenant_served_total{{tenant=\"{}\"}} {}\n",
                t.name, t.served
            ));
        }
        out.push_str("# TYPE tgnn_tenant_served_stale_total counter\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "tgnn_tenant_served_stale_total{{tenant=\"{}\"}} {}\n",
                t.name, t.served_stale
            ));
        }
        out.push_str("# TYPE tgnn_tenant_late_total counter\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "tgnn_tenant_late_total{{tenant=\"{}\"}} {}\n",
                t.name, t.late
            ));
        }
        if !self.backends.is_empty() {
            out.push_str("# TYPE tgnn_backend_served_batches_total counter\n");
            for b in &self.backends {
                out.push_str(&format!(
                    "tgnn_backend_served_batches_total{{backend=\"{}\"}} {}\n",
                    b.kind.label(),
                    b.served_batches
                ));
            }
            out.push_str("# TYPE tgnn_backend_served_events_total counter\n");
            for b in &self.backends {
                out.push_str(&format!(
                    "tgnn_backend_served_events_total{{backend=\"{}\"}} {}\n",
                    b.kind.label(),
                    b.served_events
                ));
            }
            if self.backends.iter().any(|b| b.modeled_latency.is_some()) {
                out.push_str("# TYPE tgnn_backend_modeled_latency_ms summary\n");
                for b in &self.backends {
                    let Some(m) = &b.modeled_latency else {
                        continue;
                    };
                    for (q, v) in [(0.5, m.p50_ms), (0.95, m.p95_ms), (0.99, m.p99_ms)] {
                        out.push_str(&format!(
                            "tgnn_backend_modeled_latency_ms{{backend=\"{}\",quantile=\"{q}\"}} {v:.6}\n",
                            b.kind.label()
                        ));
                    }
                }
            }
        }
        if let Some(c) = &self.cache {
            let mut scalar = |name: &str, kind: &str, v: String| {
                out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
            };
            scalar("tgnn_cache_hits_total", "counter", c.hits.to_string());
            scalar("tgnn_cache_misses_total", "counter", c.misses.to_string());
            scalar(
                "tgnn_cache_insertions_total",
                "counter",
                c.insertions.to_string(),
            );
            scalar(
                "tgnn_cache_evictions_total",
                "counter",
                c.evictions.to_string(),
            );
            scalar("tgnn_cache_expired_total", "counter", c.expired.to_string());
            scalar(
                "tgnn_cache_served_stale_total",
                "counter",
                c.served_stale.to_string(),
            );
            scalar("tgnn_cache_entries", "gauge", c.entries.to_string());
            scalar(
                "tgnn_cache_staleness_bound_epochs",
                "gauge",
                c.staleness_bound.to_string(),
            );
        }
        if let Some(d) = &self.durability {
            let mut scalar = |name: &str, kind: &str, v: String| {
                out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
            };
            scalar(
                "tgnn_wal_fsyncs_total",
                "counter",
                d.stats.wal_fsyncs.to_string(),
            );
            scalar(
                "tgnn_wal_records_total",
                "counter",
                d.stats.wal_records.to_string(),
            );
            scalar("tgnn_wal_fsync_p99_us", "gauge", d.fsync_p99_us.to_string());
            scalar(
                "tgnn_snapshot_lag_epochs",
                "gauge",
                d.snapshot_lag_epochs.to_string(),
            );
            scalar(
                "tgnn_snapshot_lag_seconds",
                "gauge",
                format!("{:.3}", d.snapshot_lag_seconds),
            );
        }
        if !self.slo.is_empty() {
            out.push_str("# TYPE tgnn_slo_burn_rate gauge\n");
            for s in &self.slo {
                for (window, v) in [("fast", s.fast_burn), ("slow", s.slow_burn)] {
                    if let Some(v) = v {
                        out.push_str(&format!(
                            "tgnn_slo_burn_rate{{slo=\"{}\",window=\"{window}\"}} {v:.4}\n",
                            s.name
                        ));
                    }
                }
            }
            out.push_str("# TYPE tgnn_slo_fired gauge\n");
            for s in &self.slo {
                out.push_str(&format!(
                    "tgnn_slo_fired{{slo=\"{}\"}} {}\n",
                    s.name,
                    u8::from(s.state == BurnState::Fired)
                ));
            }
        }
        let mut scalar = |name: &str, kind: &str, v: String| {
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
        };
        scalar(
            "tgnn_traces_begun_total",
            "counter",
            self.trace.begun.to_string(),
        );
        scalar(
            "tgnn_trace_conflicts_total",
            "counter",
            self.trace.conflicts.to_string(),
        );
        scalar(
            "tgnn_trace_delivery_p99_ms",
            "gauge",
            format!("{:.3}", self.trace.delivery_p99_ms),
        );
        out
    }

    /// Renders the snapshot as one JSON line (the JSONL sampler format).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str(&format!(
            "\"uptime_s\":{:.3},\"enabled\":{},\"epochs\":{},\"batches\":{},\"events\":{},\"embeddings\":{}",
            self.uptime.as_secs_f64(),
            self.enabled,
            self.epochs,
            self.batches_served,
            self.events_served,
            self.embeddings
        ));
        s.push_str(&format!(
            ",\"latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3},\"max\":{:.3}}}",
            self.batch_latency.p50_ms,
            self.batch_latency.p95_ms,
            self.batch_latency.p99_ms,
            self.batch_latency.max_ms
        ));
        s.push_str(",\"queues\":[");
        for (i, q) in self.queues.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"depth\":{},\"max\":{},\"mean\":{:.3},\"pushes\":{},\"blocked\":{}}}",
                q.name, q.depth, q.max_depth, q.mean_depth, q.pushes, q.blocked_sends
            ));
        }
        s.push_str("],\"stages\":[");
        let mut first = true;
        for st in &self.stages {
            if st.batches == 0 && st.busy.is_zero() {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"busy_ms\":{:.3},\"busy_frac\":{:.4},\"spans\":{}}}",
                st.stage.label(),
                st.busy.as_secs_f64() * 1e3,
                st.busy_frac,
                st.batches
            ));
        }
        s.push_str("],\"admission\":{");
        s.push_str(&format!(
            "\"submitted\":{},\"admitted\":{},\"dropped_newest\":{},\"dropped_oldest\":{},\"dropped_throttled\":{},\"blocked\":{}}}",
            self.admission.submitted,
            self.admission.admitted,
            self.admission.dropped_newest,
            self.admission.dropped_oldest,
            self.admission.dropped_throttled,
            self.admission.blocked_submits
        ));
        s.push_str(",\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"served\":{},\"served_stale\":{},\"late\":{},\"dropped\":{}}}",
                json_escape(&t.name),
                t.served,
                t.served_stale,
                t.late,
                t.counters.dropped()
            ));
        }
        s.push(']');
        if !self.backends.is_empty() {
            s.push_str(",\"backends\":[");
            for (i, b) in self.backends.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"backend\":\"{}\",\"batches\":{},\"events\":{}",
                    b.kind.label(),
                    b.served_batches,
                    b.served_events
                ));
                if let Some(m) = &b.modeled_latency {
                    s.push_str(&format!(
                        ",\"modeled_ms\":{{\"p50\":{:.6},\"p99\":{:.6},\"max\":{:.6}}}",
                        m.p50_ms, m.p99_ms, m.max_ms
                    ));
                }
                s.push('}');
            }
            s.push(']');
        }
        if let Some(c) = &self.cache {
            s.push_str(&format!(
                ",\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\"insertions\":{},\"evictions\":{},\"expired\":{},\"served_stale\":{},\"entries\":{},\"staleness_bound\":{}}}",
                c.hits,
                c.misses,
                c.hit_rate(),
                c.insertions,
                c.evictions,
                c.expired,
                c.served_stale,
                c.entries,
                c.staleness_bound
            ));
        }
        if let Some(d) = &self.durability {
            s.push_str(&format!(
                ",\"durability\":{{\"wal_records\":{},\"wal_fsyncs\":{},\"fsync_p50_us\":{},\"fsync_p99_us\":{},\"snapshots\":{},\"snapshot_lag_epochs\":{},\"snapshot_lag_seconds\":{:.3}}}",
                d.stats.wal_records,
                d.stats.wal_fsyncs,
                d.fsync_p50_us,
                d.fsync_p99_us,
                d.stats.snapshots,
                d.snapshot_lag_epochs,
                d.snapshot_lag_seconds
            ));
        }
        if !self.slo.is_empty() {
            s.push_str(",\"slo\":[");
            let json_burn = |b: Option<f64>| match b {
                Some(v) => format!("{v:.4}"),
                None => "null".to_string(),
            };
            for (i, o) in self.slo.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"name\":\"{}\",\"budget\":{},\"fast_burn\":{},\"slow_burn\":{},\"state\":\"{}\"}}",
                    json_escape(&o.name),
                    o.error_budget,
                    json_burn(o.fast_burn),
                    json_burn(o.slow_burn),
                    burn_state_label(o.state)
                ));
            }
            s.push(']');
        }
        s.push_str(&format!(
            ",\"trace\":{{\"begun\":{},\"conflicts\":{},\"overflows\":{},\"delivery_p99_ms\":{:.3},\"exemplars\":{},\"head_samples\":{}}}",
            self.trace.begun,
            self.trace.conflicts,
            self.trace.overflows,
            self.trace.delivery_p99_ms,
            self.trace.exemplars.len(),
            self.trace.head_samples.len()
        ));
        s.push_str(&format!(
            ",\"flight\":{{\"recorded\":{},\"dropped\":{}}}",
            self.flight.recorded, self.flight.dropped
        ));
        s.push('}');
        s
    }
}

/// Stable lower-case label of a [`BurnState`] (reports and JSON).
fn burn_state_label(b: BurnState) -> &'static str {
    match b {
        BurnState::NoData => "no-data",
        BurnState::Ok => "ok",
        BurnState::Fired => "fired",
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders a flight-recorder dump as a per-epoch, per-stage timeline — the
/// post-mortem view: each line is one epoch, each segment one stage span
/// (`enter→exit` in ms since pipeline spawn).  An open segment (`→…`) means
/// the stage entered the epoch and never exited — after a panic, that is
/// the poisoned stage; its duration-so-far (up to the dump's last tick) is
/// printed so the reader can see how long the epoch has been held.
///
/// Records are sorted by `(tick, seq)` before pairing, so same-tick
/// enter/exit races (coarse clocks, cross-worker ties) pair
/// deterministically in recording order rather than ring order.
pub fn render_flight_timeline(records: &[SpanRecord]) -> String {
    use std::collections::BTreeMap;
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut records: Vec<SpanRecord> = records.to_vec();
    records.sort_by_key(|r| (r.at, r.seq));
    // The dump's horizon: open spans report duration-so-far against the
    // last tick any worker recorded.
    let now = records.last().map(|r| r.at).unwrap_or_default();
    // epoch → (stage, worker) → (enter, exit) / marks, keeping stage order
    // of first appearance within the epoch.
    type Segment = ((StageId, u16), Option<Duration>, Option<Duration>);
    #[derive(Default)]
    struct EpochLine {
        segments: Vec<Segment>,
        marks: Vec<(StageId, Duration)>,
    }
    let mut epochs: BTreeMap<u64, EpochLine> = BTreeMap::new();
    for r in &records {
        let line = epochs.entry(r.epoch).or_default();
        match r.kind {
            SpanKind::Mark => line.marks.push((r.stage, r.at)),
            SpanKind::Enter => line.segments.push(((r.stage, r.worker), Some(r.at), None)),
            SpanKind::Exit => {
                // Close the open segment of this (stage, worker); an exit
                // whose enter was overwritten by the ring starts a
                // half-open segment.
                match line
                    .segments
                    .iter_mut()
                    .rev()
                    .find(|(k, _, exit)| *k == (r.stage, r.worker) && exit.is_none())
                {
                    Some(seg) => seg.2 = Some(r.at),
                    None => line.segments.push(((r.stage, r.worker), None, Some(r.at))),
                }
            }
        }
    }
    let mut out = String::new();
    for (epoch, line) in &epochs {
        if *epoch == 0 {
            out.push_str("pre-epoch   ");
        } else {
            out.push_str(&format!("epoch {epoch:>5} "));
        }
        for ((stage, worker), enter, exit) in &line.segments {
            let name = if *stage == StageId::Gnn {
                format!("{}[{}]", stage.label(), worker)
            } else {
                stage.label().to_string()
            };
            match (enter, exit) {
                (Some(a), Some(b)) => {
                    out.push_str(&format!("| {} {:.3}→{:.3} ", name, ms(*a), ms(*b)))
                }
                (Some(a), None) => out.push_str(&format!(
                    "| {} {:.3}→… {:.3}ms so far ",
                    name,
                    ms(*a),
                    ms(now.saturating_sub(*a))
                )),
                (None, Some(b)) => out.push_str(&format!("| {} …→{:.3} ", name, ms(*b))),
                (None, None) => {}
            }
        }
        for (stage, at) in &line.marks {
            out.push_str(&format!("| {} @{:.3} ", stage.label(), ms(*at)));
        }
        out.push('\n');
    }
    out
}
