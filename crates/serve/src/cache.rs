//! Bounded-staleness hot-vertex embedding cache — the quality axis of the
//! overload-policy spectrum.
//!
//! Production temporal-graph traffic is power-law: a small hot set of
//! vertices absorbs most reads.  Every other overload policy answers a full
//! ingress queue by delaying (`Block`/`Late`) or discarding
//! (`DropNewest`/`DropOldest`) work; [`OverloadPolicy::ServeStale`] instead
//! answers from this cache — the last embedding *actually served* for each
//! touched vertex, labelled with its age in epoch barriers.
//!
//! ## Placement and contracts
//!
//! * **Population** — the reorder worker (the pipeline's commit point for
//!   results) inserts every `(vertex, embedding)` pair of a [`ServedBatch`]
//!   under the batch's epoch, so a cache entry is by construction exactly
//!   the embedding a client saw at that epoch.  Nothing else writes
//!   embeddings into the cache; a hit is therefore bit-identical to the
//!   originally-served value (property-tested in `tests/cache.rs`).
//! * **Invalidation** — the update worker's epoch-barrier commit is the only
//!   place vertex state changes.  The cache hooks the *existing*
//!   `commit_epoch_with` observer (the same per-shard, under-the-shard-lock
//!   hook the snapshot writer uses): each shard commit advances the global
//!   committed-epoch watermark and sweeps that shard's expired entries.
//!   Entry age is `committed_epoch − entry.epoch`; [`EmbeddingCache::get`]
//!   re-checks the bound at lookup time, so even an entry the sweep has not
//!   reached yet can never be answered beyond the bound.  The watermark may
//!   run slightly ahead of a not-yet-committed shard's gate — that
//!   direction only *over*-ages entries, which is conservative: the bound
//!   cannot be violated, an answer can only be refused early.
//! * **Bounded memory** — per-shard FIFO insertion logs cap the entry count
//!   at the configured capacity; overflowing evicts oldest-inserted first.
//!
//! Recovery interplay: a recovered server cold-starts the cache (or seeds
//! it from the bit-exact re-served epochs) and raises the watermark to the
//! recovered epoch before serving, so a post-crash stale answer can never
//! reference pre-crash state beyond the bound.
//!
//! [`ServedBatch`]: crate::pipeline::ServedBatch
//! [`OverloadPolicy::ServeStale`]: tgnn_core::tenancy::OverloadPolicy::ServeStale

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tgnn_graph::sharded::shard_of;
use tgnn_graph::NodeId;
use tgnn_tensor::Float;

/// Configuration of the embedding cache (see [`ServeConfig::cache`]).
///
/// [`ServeConfig::cache`]: crate::server::ServeConfig::cache
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entry budget across all shards (vertices).  Overflow evicts the
    /// oldest-inserted entries first.
    pub capacity: usize,
    /// Maximum age, in committed epoch barriers, at which a cached
    /// embedding may still be served.  A hit's `age_epochs` never exceeds
    /// this; entries older than the bound are invisible to [`EmbeddingCache::get`]
    /// and swept at the next epoch-barrier commit of their shard.
    pub staleness_bound_epochs: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            staleness_bound_epochs: 64,
        }
    }
}

struct CacheEntry {
    epoch: u64,
    embedding: Vec<Float>,
}

#[derive(Default)]
struct CacheShard {
    map: HashMap<NodeId, CacheEntry>,
    /// Insertion order, `(vertex, epoch)`.  Epochs are non-decreasing front
    /// to back (inserters run in epoch order per shard), so expiry pops from
    /// the front.  A vertex re-inserted at a newer epoch leaves its old log
    /// entry behind; the sweep skips log entries whose epoch no longer
    /// matches the map.
    log: VecDeque<(NodeId, u64)>,
}

/// Point-in-time counters of the cache (see [`EmbeddingCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered within the staleness bound.
    pub hits: u64,
    /// Lookups that found nothing fresh enough (absent or beyond the bound).
    pub misses: u64,
    /// Entries written by the reorder/delivery path (including recovery
    /// seeding).
    pub insertions: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries removed by the epoch-barrier expiry sweep.
    pub expired: u64,
    /// Overload events answered stale (each may cover several vertex hits).
    pub served_stale: u64,
    /// Current entry count across all shards.
    pub entries: usize,
    /// The epoch-barrier watermark invalidation has advanced to.
    pub committed_epoch: u64,
    /// The configured staleness bound, echoed for report plumbing.
    pub staleness_bound: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A whole-event cache hit: the `(vertex, embedding, source_epoch)` rows in
/// order of first appearance, plus the answer's age (max across vertices).
pub(crate) type CachedEventHit = (Vec<(NodeId, Vec<Float>, u64)>, u64);

/// The sharded, bounded, epoch-aware embedding cache.  One instance per
/// [`StreamServer`](crate::StreamServer); shared by the reorder worker
/// (population), the update worker (invalidation at the epoch barrier), and
/// the admission layer (`ServeStale` lookups).  Cache shards are leaf locks:
/// nothing is acquired while one is held.
pub struct EmbeddingCache {
    shards: Vec<Mutex<CacheShard>>,
    per_shard_capacity: usize,
    staleness_bound: u64,
    /// Highest epoch any shard has committed at the barrier.
    committed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    served_stale: AtomicU64,
    /// Age (epochs) of every stale-served answer, for report percentiles.
    stale_ages: Mutex<Vec<u64>>,
}

impl EmbeddingCache {
    /// Builds an empty cache striped over `num_shards` shards (the
    /// pipeline's vertex-shard count, so the epoch-barrier observer for
    /// memory shard `s` sweeps exactly the vertices it owns).
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or `config.capacity == 0`.
    pub fn new(config: CacheConfig, num_shards: usize) -> Self {
        assert!(num_shards > 0, "cache: need at least one shard");
        assert!(config.capacity > 0, "cache: capacity must be >= 1");
        Self {
            shards: (0..num_shards).map(|_| Mutex::default()).collect(),
            per_shard_capacity: config.capacity.div_ceil(num_shards).max(1),
            staleness_bound: config.staleness_bound_epochs,
            committed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            served_stale: AtomicU64::new(0),
            stale_ages: Mutex::new(Vec::new()),
        }
    }

    /// The configured staleness bound in epochs.
    pub fn staleness_bound(&self) -> u64 {
        self.staleness_bound
    }

    /// The epoch-barrier watermark invalidation has advanced to.
    pub fn committed_epoch(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Epoch-barrier invalidation hook, called from the update worker's
    /// `commit_epoch_with` observer for every shard of every epoch — under
    /// the memory shard's lock, after the epoch's writes, before the gate
    /// bump (the snapshot writer's exact hook point).  Advances the global
    /// watermark and sweeps the shard's now-expired entries.
    pub(crate) fn on_shard_committed(&self, shard: usize, epoch: u64) {
        self.committed.fetch_max(epoch, Ordering::AcqRel);
        let watermark = self.committed.load(Ordering::Acquire);
        let mut s = self.shards[shard % self.shards.len()].lock().unwrap();
        let mut expired = 0u64;
        while let Some(&(v, e)) = s.log.front() {
            if e + self.staleness_bound >= watermark {
                break;
            }
            s.log.pop_front();
            // Only remove if the vertex was not re-inserted at a newer epoch
            // (the newer log entry still guards the newer map entry).
            if s.map.get(&v).is_some_and(|entry| entry.epoch == e) {
                s.map.remove(&v);
                expired += 1;
            }
        }
        if expired > 0 {
            self.expired.fetch_add(expired, Ordering::Relaxed);
        }
    }

    /// Recovery: raises the watermark to the recovered epoch so post-crash
    /// lookups age entries against the recovered timeline, never a stale
    /// pre-crash one.
    pub(crate) fn set_committed_floor(&self, epoch: u64) {
        self.committed.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Records the embedding served for `v` at `epoch` (the reorder worker's
    /// population path, and recovery's bit-exact re-served seeding).
    pub(crate) fn insert(&self, v: NodeId, epoch: u64, embedding: &[Float]) {
        let mut s = self.shards[shard_of(v, self.shards.len())].lock().unwrap();
        s.map.insert(
            v,
            CacheEntry {
                epoch,
                embedding: embedding.to_vec(),
            },
        );
        s.log.push_back((v, epoch));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while s.log.len() > self.per_shard_capacity {
            let (old_v, old_e) = s.log.pop_front().expect("log is non-empty");
            if s.map.get(&old_v).is_some_and(|entry| entry.epoch == old_e) {
                s.map.remove(&old_v);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Looks up `v`: `Some((embedding, epoch, age_epochs))` when an entry
    /// exists whose age — watermark minus entry epoch — is within the
    /// staleness bound, `None` otherwise.  The embedding is byte-for-byte
    /// the one inserted (i.e. the one served) at `epoch`.
    pub fn get(&self, v: NodeId) -> Option<(Vec<Float>, u64, u64)> {
        self.get_bounded(v, None)
    }

    /// [`Self::get`] under a per-lookup staleness override.  The effective
    /// bound is `min(bound, global)`: the barrier sweep removes entries past
    /// the global bound regardless, so an override can only demand *fresher*
    /// answers, never extend visibility (this is what makes per-tenant
    /// bounds safe on one shared cache).
    pub fn get_bounded(&self, v: NodeId, bound: Option<u64>) -> Option<(Vec<Float>, u64, u64)> {
        let effective = bound.map_or(self.staleness_bound, |b| b.min(self.staleness_bound));
        let watermark = self.committed.load(Ordering::Acquire);
        let s = self.shards[shard_of(v, self.shards.len())].lock().unwrap();
        match s.map.get(&v) {
            Some(entry) => {
                let age = watermark.saturating_sub(entry.epoch);
                if age > effective {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some((entry.embedding.clone(), entry.epoch, age))
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up every vertex an event touches (`src`, and `dst` when
    /// distinct).  All must hit for a stale answer to be possible; returns
    /// the `(vertex, embedding, epoch)` list in order of first appearance
    /// plus the answer's age — the *maximum* age across the vertices.
    #[cfg(test)]
    pub(crate) fn get_event(&self, src: NodeId, dst: NodeId) -> Option<CachedEventHit> {
        self.get_event_bounded(src, dst, None)
    }

    /// Event lookup under a per-lookup staleness override (the per-tenant
    /// `ServeStale` bound; see [`Self::get_bounded`] for the
    /// `min(bound, global)` contract).  `None` applies the global bound
    /// alone.
    pub(crate) fn get_event_bounded(
        &self,
        src: NodeId,
        dst: NodeId,
        bound: Option<u64>,
    ) -> Option<CachedEventHit> {
        let (emb_src, epoch_src, age_src) = self.get_bounded(src, bound)?;
        let mut out = vec![(src, emb_src, epoch_src)];
        let mut age = age_src;
        if dst != src {
            let (emb_dst, epoch_dst, age_dst) = self.get_bounded(dst, bound)?;
            out.push((dst, emb_dst, epoch_dst));
            age = age.max(age_dst);
        }
        Some((out, age))
    }

    /// Counts one overload event answered stale, at `age_epochs`.
    pub(crate) fn record_stale_serve(&self, age_epochs: u64) {
        self.served_stale.fetch_add(1, Ordering::Relaxed);
        self.stale_ages.lock().unwrap().push(age_epochs);
    }

    /// Snapshot of the ages of every stale-served answer so far (epochs).
    pub fn stale_ages(&self) -> Vec<u64> {
        self.stale_ages.lock().unwrap().clone()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            served_stale: self.served_stale.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().map.len())
                .sum(),
            committed_epoch: self.committed_epoch(),
            staleness_bound: self.staleness_bound,
        }
    }
}

impl std::fmt::Debug for EmbeddingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("staleness_bound", &self.staleness_bound)
            .field("committed_epoch", &self.committed_epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, bound: u64, shards: usize) -> EmbeddingCache {
        EmbeddingCache::new(
            CacheConfig {
                capacity,
                staleness_bound_epochs: bound,
            },
            shards,
        )
    }

    #[test]
    fn hit_returns_the_inserted_embedding_bit_for_bit() {
        let c = cache(16, 4, 2);
        let emb = vec![0.125f32, -3.5, 1e-7, f32::MIN_POSITIVE];
        c.insert(7, 3, &emb);
        c.on_shard_committed(0, 5);
        let (got, epoch, age) = c.get(7).expect("within bound");
        assert_eq!(got, emb, "hit must be bit-identical to the insert");
        assert_eq!(epoch, 3);
        assert_eq!(age, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn entries_beyond_the_staleness_bound_are_never_served() {
        let c = cache(16, 2, 1);
        c.insert(1, 1, &[1.0]);
        c.on_shard_committed(0, 3);
        assert!(c.get(1).is_some(), "age 2 == bound: still servable");
        c.on_shard_committed(0, 4);
        assert!(c.get(1).is_none(), "age 3 > bound: refused");
        let s = c.stats();
        assert_eq!(s.misses, 1);
        // The barrier sweep removed it too (epoch 1 + bound 2 < watermark 4).
        assert_eq!(s.expired, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn reinsertion_refreshes_age_and_survives_the_sweep() {
        let c = cache(16, 2, 1);
        c.insert(1, 1, &[1.0]);
        c.insert(1, 5, &[5.0]);
        // Sweeping at watermark 6 pops the stale (1, epoch 1) log entry but
        // must keep the fresher map entry.
        c.on_shard_committed(0, 6);
        let (emb, epoch, age) = c.get(1).expect("fresh entry survives");
        assert_eq!((emb, epoch, age), (vec![5.0], 5, 1));
        assert_eq!(c.stats().expired, 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest_inserted_first() {
        let c = cache(4, 100, 1);
        for v in 0..6u32 {
            c.insert(v, v as u64 + 1, &[v as Float]);
        }
        let s = c.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.evictions, 2);
        assert!(c.get(0).is_none() && c.get(1).is_none());
        assert!(c.get(5).is_some());
    }

    #[test]
    fn get_event_needs_every_touched_vertex_and_reports_max_age() {
        let c = cache(16, 10, 2);
        c.insert(1, 2, &[1.0]);
        c.insert(2, 6, &[2.0]);
        c.on_shard_committed(0, 8);
        let (pairs, age) = c.get_event(1, 2).expect("both cached");
        assert_eq!(pairs.len(), 2);
        assert_eq!(age, 6, "age is the max across touched vertices");
        // Self-loop touches one vertex once.
        let (pairs, _) = c.get_event(2, 2).expect("self-loop");
        assert_eq!(pairs.len(), 1);
        // A missing endpoint refuses the whole answer.
        assert!(c.get_event(1, 3).is_none());
    }

    #[test]
    fn bounded_lookup_tightens_but_never_extends_the_global_bound() {
        let c = cache(16, 4, 1);
        c.insert(1, 1, &[1.0]);
        c.on_shard_committed(0, 4); // age 3, global bound 4
        assert!(c.get_bounded(1, None).is_some(), "within global bound");
        assert!(
            c.get_bounded(1, Some(2)).is_none(),
            "tenant bound 2 refuses an age-3 entry"
        );
        assert!(
            c.get_bounded(1, Some(100)).is_some(),
            "a looser override still answers (clamped to the global bound)"
        );
        c.on_shard_committed(0, 6); // age 5 > global 4: swept/refused for all
        assert!(
            c.get_bounded(1, Some(100)).is_none(),
            "override must not see past the global bound"
        );
        // get_event_bounded applies the same override to every endpoint.
        c.insert(2, 6, &[2.0]);
        c.insert(3, 4, &[3.0]);
        assert!(c.get_event_bounded(2, 3, Some(2)).is_some(), "ages 0 and 2");
        c.on_shard_committed(0, 7);
        assert!(
            c.get_event_bounded(2, 3, Some(2)).is_none(),
            "one endpoint past the tenant bound refuses the whole answer"
        );
    }

    #[test]
    fn stats_track_stale_serves_and_hit_rate() {
        let c = cache(16, 4, 1);
        c.insert(1, 1, &[1.0]);
        c.on_shard_committed(0, 2);
        assert!(c.get(1).is_some());
        assert!(c.get(9).is_none());
        c.record_stale_serve(1);
        c.record_stale_serve(3);
        let s = c.stats();
        assert_eq!(s.served_stale, 2);
        assert_eq!(c.stale_ages(), vec![1, 3]);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
