//! `tgnn-serve` — a sharded, multi-queue streaming pipeline for continuous
//! TGN inference.
//!
//! The batch engine (`tgnn_core::InferenceEngine`) made the GNN compute stage
//! fast, but it is driven one synchronous batch at a time: sampling, memory
//! update, compute, and write-back run strictly sequentially.  The source
//! paper's FPGA design hides exactly this latency by overlapping the stages
//! in a hardware pipeline; this crate is the software-schedulable rendition
//! of that idea (cf. FlowGNN's multi-queue dataflow and GraphAGILE's
//! partitioned overlay):
//!
//! * [`StreamServer`] accepts a continuous chronological feed of
//!   [`InteractionEvent`](tgnn_graph::InteractionEvent)s, micro-batches them
//!   by size/deadline in an admission queue, and executes them through a
//!   pipeline whose stages run as separate workers connected by bounded
//!   queues — batch *k+1* samples while batch *k* computes.  The dominant
//!   GNN compute stage is data-parallel (`ServeConfig::gnn_workers`): each
//!   batch is split into independently computable sub-jobs served from a
//!   shared MPMC dispatch queue by a pool of workers, and a reorder stage
//!   merges the parts and restores epoch order, so the output stream is the
//!   same for every worker count.
//! * The vertex state is partitioned (`node_id % N`) behind
//!   [`tgnn_graph::ShardedNeighborTable`] and
//!   [`tgnn_core::ShardedMemory`]: per-shard locks plus an epoch-barrier
//!   commit protocol keep concurrent stage access safe *and* chronological,
//!   so the pipelined output is **bit-identical** to `ExecMode::Serial` on
//!   the same batch sequence (asserted by this crate's property tests and by
//!   `serve_bench`).
//! * The admission front end is **multi-tenant** ([`admission`]): each
//!   tenant owns a bounded ingress queue drained by a weighted-fair
//!   scheduler, and a per-tenant [`OverloadPolicy`] — `Block`,
//!   `DropNewest`, `DropOldest`, `Late`, or `ServeStale` — governs what
//!   happens when sustained overload fills the queue.  `ServeStale` answers
//!   read-style overload from the [`cache`] — a bounded, sharded embedding
//!   cache invalidated at the epoch barrier — returning the last *served*
//!   embeddings flagged [`Disposition::Stale`] with their age in epochs
//!   instead of dropping.  Single-tenant configurations
//!   (the default) serve bit-identical results with the same
//!   never-drop `Block` semantics as before (see
//!   [`ServeConfig::tenants`](server::ServeConfig) for the one buffering
//!   nuance).
//! * [`ServeReport`] exposes the backpressure picture: throughput, queue
//!   depths, p50/p95/p99 batch latency, and per-tenant [`TenantStats`]
//!   (drop counts, late counts, admission-to-completion percentiles).
//!
//! The end-to-end narrative of the system — admission through shards,
//! stages, the quantized engine, and results — lives in the repository's
//! `ARCHITECTURE.md`.
//!
//! The canonical submit/poll/drain loop (runs in seconds on the tiny
//! preset — scale the dataset up for real measurements):
//!
//! ```
//! use std::sync::Arc;
//! use tgnn_serve::{ServeConfig, StreamServer};
//! # let graph = tgnn_data::generate(&tgnn_data::tiny(1));
//! # let cfg = tgnn_core::ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
//! # let model = tgnn_core::TgnModel::new(cfg, &mut tgnn_tensor::TensorRng::new(1));
//! let graph = Arc::new(graph);
//! let mut server = StreamServer::new(model, graph.clone(), ServeConfig::default());
//! let mut embeddings = 0;
//! for &event in graph.events() {
//!     server.submit(event).unwrap();
//!     while let Some(batch) = server.poll() {
//!         // embeddings of batch.events' touched vertices
//!         embeddings += batch.embeddings.len();
//!     }
//! }
//! let report = server.drain();
//! while let Some(batch) = server.poll() {
//!     embeddings += batch.embeddings.len();
//! }
//! assert_eq!(report.num_events, graph.num_events());
//! assert!(report.commit_log_clean);
//! println!("{:.0} edges/sec, p99 {:.2} ms", report.throughput_eps, report.latency.p99_ms);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod durability;
pub mod metrics;
pub mod pipeline;
pub mod queue;
pub mod server;

pub use admission::{AdmissionCounters, SubmitOutcome, TenantSpec};
pub use cache::{CacheConfig, CacheStats, EmbeddingCache};
pub use durability::{DurabilityStats, RecoveryReport};
pub use metrics::{
    render_flight_timeline, BackendMetrics, MetricsHub, MetricsLogger, MetricsSnapshot, SegmentId,
    SloConfig, SpanRecord, StageId, TraceExemplar, TraceStats,
};
pub use pipeline::{GnnFaultHook, ServedBatch};
pub use queue::QueueStats;
pub use server::{
    BackendStats, CacheReport, LatencySummary, ServeConfig, ServeReport, StaleAgeSummary,
    StreamServer, SubmitError, TenantStats,
};
pub use tgnn_core::tenancy::{Disposition, OverloadPolicy, ResultMeta, TenantId};
pub use tgnn_core::{BackendKind, ComputeBackend, F32Backend, Int8Backend};
pub use tgnn_durable::{wal_fault_hook, DurabilityConfig, DurableError, FsyncPolicy, WalFaultHook};
pub use tgnn_hwsim::HwSimBackend;
pub use tgnn_obs::{
    Blame, BurnState, CriticalPath, SloStatus, SpanKind, TraceSegment, TraceView,
    MAX_TRACE_SEGMENTS,
};
