//! `tgnn-serve` — a sharded, multi-queue streaming pipeline for continuous
//! TGN inference.
//!
//! The batch engine (`tgnn_core::InferenceEngine`) made the GNN compute stage
//! fast, but it is driven one synchronous batch at a time: sampling, memory
//! update, compute, and write-back run strictly sequentially.  The source
//! paper's FPGA design hides exactly this latency by overlapping the stages
//! in a hardware pipeline; this crate is the software-schedulable rendition
//! of that idea (cf. FlowGNN's multi-queue dataflow and GraphAGILE's
//! partitioned overlay):
//!
//! * [`StreamServer`] accepts a continuous chronological feed of
//!   [`InteractionEvent`](tgnn_graph::InteractionEvent)s, micro-batches them
//!   by size/deadline in an admission queue, and executes them through a
//!   pipeline whose stages run as separate workers connected by bounded
//!   queues — batch *k+1* samples while batch *k* computes.  The dominant
//!   GNN compute stage is data-parallel (`ServeConfig::gnn_workers`): each
//!   batch is split into independently computable sub-jobs served from a
//!   shared MPMC dispatch queue by a pool of workers, and a reorder stage
//!   merges the parts and restores epoch order, so the output stream is the
//!   same for every worker count.
//! * The vertex state is partitioned (`node_id % N`) behind
//!   [`tgnn_graph::ShardedNeighborTable`] and
//!   [`tgnn_core::ShardedMemory`]: per-shard locks plus an epoch-barrier
//!   commit protocol keep concurrent stage access safe *and* chronological,
//!   so the pipelined output is **bit-identical** to `ExecMode::Serial` on
//!   the same batch sequence (asserted by this crate's property tests and by
//!   `serve_bench`).
//! * [`ServeReport`] exposes the backpressure picture: throughput, queue
//!   depths, and p50/p95/p99 batch latency.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tgnn_serve::{ServeConfig, StreamServer};
//! # let graph = tgnn_data::generate(&tgnn_data::tiny(1));
//! # let cfg = tgnn_core::ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
//! # let model = tgnn_core::TgnModel::new(cfg, &mut tgnn_tensor::TensorRng::new(1));
//! let graph = Arc::new(graph);
//! let mut server = StreamServer::new(model, graph.clone(), ServeConfig::default());
//! for &event in graph.events() {
//!     server.submit(event).unwrap();
//!     while let Some(batch) = server.poll() {
//!         // embeddings of batch.events' touched vertices
//!         let _ = batch.embeddings;
//!     }
//! }
//! let report = server.drain();
//! println!("{:.0} edges/sec, p99 {:.2} ms", report.throughput_eps, report.latency.p99_ms);
//! ```

pub mod pipeline;
pub mod queue;
pub mod server;

pub use pipeline::{GnnFaultHook, ServedBatch};
pub use queue::QueueStats;
pub use server::{LatencySummary, ServeConfig, ServeReport, StreamServer, SubmitError};
