//! The pipeline worker loops and the job types flowing between them.
//!
//! ```text
//!       per-tenant bounded ingress queues (OverloadPolicy at the bound)
//!                         │  weighted round-robin
//!                  [scheduler worker]      — see `admission`
//!                         │  AdmittedEvent (SPSC)
//!                   [batcher worker]
//!                         │  SealedBatch
//!                   [sampler worker] ──── waits: neighbor-table shards @ epoch k-1
//!                         │  SampledJob
//!                   [memory worker]  ──── waits: memory shards @ epoch k-1
//!               │         │              │
//!      UpdateJob│         │GnnBatchHeader│GnnSubJob × P   (owned, self-contained)
//!               ▼         │              ▼  (MPMC dispatch)
//!        [update worker]  │     [gnn worker 0..N-1]
//!         commits epoch k │              │  GnnSubResult (MPMC)
//!         (releases k+1)  ▼              ▼
//!                      [reorder worker] ── merges parts, restores epoch order
//!                         │  ServedBatch
//!                         ▼
//!                      results
//! ```
//!
//! The memory worker emits the update job *before* the GNN work, so batch
//! *k*'s write-back (cheap) runs concurrently with batch *k*'s GNN compute
//! (dominant) — and, once the epoch gates open, with batch *k+1*'s sampling
//! and memory stages.  That overlap is the software rendition of the paper's
//! hardware pipeline; the epoch gates are what keep it bit-identical to the
//! serial engine.
//!
//! The GNN stage — the dominant cost per the paper's co-design analysis — is
//! data-parallel: the memory worker splits each batch's owned
//! [`GnnJobBatch`] into `P ≤ gnn_workers` contiguous sub-jobs and pushes
//! them onto one shared MPMC dispatch queue that `N` identical workers
//! consume (work-sharing: an idle worker takes the next sub-job, whatever
//! its epoch).  Because [`GnnJobBatch::run`] is row-independent, computing
//! the parts on any workers in any order and concatenating the results in
//! part order is bitwise-equal to the unsplit run.  The reorder worker —
//! single consumer of the sub-result queue — holds each epoch's parts until
//! complete and emits [`ServedBatch`]es strictly in epoch order (headers
//! arrive on an SPSC queue from the memory worker, which is already
//! chronological), so the client-visible stream is identical for every
//! worker count, including `N = 1`.
//!
//! Ordering argument, stage by stage (epochs are 1-based batch numbers):
//! * **sample(k)** reads only neighbor-table shards at epoch `k-1` — the gate
//!   blocks until the update worker committed batch `k-1`'s interactions.
//! * **memory(k)** reads memory rows / clocks / mailbox at epoch `k-1`
//!   (gated), consumes mailbox messages and caches new ones (fields no other
//!   in-flight stage touches), and gathers every value the GNN needs into an
//!   owned job *before* the update job is emitted — so update(k) can never
//!   race the gather.
//! * **gnn(k, p)** is pure compute over the owned sub-job, on any worker.
//! * **reorder** commits completed batches downstream in epoch order.
//! * **update(k)** is the only writer of memory rows and the neighbor table,
//!   and processes epochs in queue order.

use crate::admission::{AdmittedEvent, EventMeta};
use crate::durability::Durability;
use crate::metrics::{SegmentId, StageObs};
use crate::queue::{MpmcReceiver, MpmcSender, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tgnn_core::memory::Message;
use tgnn_core::stages::{run_memory_stage, GnnJobBatch, SampledBatch};
use tgnn_core::tenancy::{Disposition, ResultMeta, TenantId};
use tgnn_core::{BackendKind, ComputeBackend, ShardedMemory, TgnModel, NUM_BACKEND_KINDS};
use tgnn_graph::chronology::CommitLog;
use tgnn_graph::sharded::shard_of;
use tgnn_graph::{
    EventBatch, InteractionEvent, NodeId, ShardedNeighborTable, TemporalGraph, Timestamp,
};
use tgnn_tensor::{Float, Workspace};

/// A micro-batch sealed by the admission batcher.  `metas` is aligned with
/// the batch's events and carries each event's tenant/deadline stamp.
/// Every event in a sealed batch shares one `backend` — the batcher
/// partitions mixed pendings per backend at seal time, so a batch is the
/// unit of backend routing.
#[derive(Debug)]
pub(crate) struct SealedBatch {
    pub epoch: u64,
    pub batch: EventBatch,
    pub metas: Vec<EventMeta>,
    pub backend: BackendKind,
    pub sealed_at: Instant,
}

/// A sealed batch with its neighbor samples.
#[derive(Debug)]
pub(crate) struct SampledJob {
    pub epoch: u64,
    pub sampled: SampledBatch,
    pub metas: Vec<EventMeta>,
    pub backend: BackendKind,
    pub sealed_at: Instant,
    /// When the sampler finished — the causal-trace anchor the memory
    /// stage's segment starts from.
    pub sampled_at: Instant,
}

/// Per-batch metadata sent to the reorder worker ahead of the batch's
/// sub-jobs; headers arrive in epoch order on an SPSC queue, which is what
/// fixes the output order regardless of how the sub-jobs race.
#[derive(Debug)]
pub(crate) struct GnnBatchHeader {
    pub epoch: u64,
    pub num_parts: usize,
    pub events: Vec<InteractionEvent>,
    pub metas: Vec<EventMeta>,
    /// The backend whose dispatch queue this batch's sub-jobs went to; the
    /// reorder worker stamps it onto every result's `ResultMeta`.
    pub backend: BackendKind,
    pub sealed_at: Instant,
    /// When the memory stage finished its gather and dispatched the
    /// sub-jobs — the anchor the epoch-level GNN trace segment starts from.
    pub mem_done_at: Instant,
}

/// One independently computable slice of a batch's GNN work, dispatched to
/// whichever worker is free.
#[derive(Debug)]
pub(crate) struct GnnSubJob {
    pub epoch: u64,
    pub part: usize,
    pub job: GnnJobBatch,
    /// When the memory worker pushed this part onto the dispatch queue —
    /// what the worker's `GnnSubWait` trace segment measures from.
    pub dispatched_at: Instant,
}

/// One sub-job's output: `(vertex, embedding)` pairs in the sub-job's
/// vertex order.
pub(crate) type PartEmbeddings = Vec<(NodeId, Vec<Float>)>;

/// A computed sub-job, routed back to the reorder worker.
#[derive(Debug)]
pub(crate) struct GnnSubResult {
    pub epoch: u64,
    pub part: usize,
    pub embeddings: PartEmbeddings,
    /// Service latency the backend *models* for this part (hwsim-style
    /// backends only; `None` for backends that execute where they are
    /// measured).  The reorder worker takes the max over parts as the
    /// batch's modeled latency.
    pub modeled_latency: Option<Duration>,
    /// When the worker finished this part; the reorder worker takes the max
    /// over parts as the end of the epoch-level GNN trace segment.
    pub completed_at: Instant,
}

/// Test-only fault-injection hook: every GNN worker calls it with
/// `(epoch, part)` before computing a sub-job and panics when it returns
/// `true`.  The concurrency hardening tests use this to verify that a dying
/// worker poisons the epoch gates and unwinds `submit`/`poll`/`drain`
/// instead of hanging the pipeline.
pub type GnnFaultHook = Arc<dyn Fn(u64, usize) -> bool + Send + Sync>;

/// The state write-back of one batch.
#[derive(Debug)]
pub(crate) struct UpdateJob {
    pub epoch: u64,
    pub writes: Vec<(NodeId, Vec<Float>, Timestamp)>,
    pub events: Vec<InteractionEvent>,
}

/// One completed micro-batch, as returned by `StreamServer::poll`.
#[derive(Clone, Debug)]
pub struct ServedBatch {
    /// 1-based batch sequence number (the pipeline epoch) — or **0** for a
    /// cache-served stale answer
    /// ([`tgnn_core::tenancy::OverloadPolicy::ServeStale`]): stale batches never enter the
    /// pipeline, carry `Disposition::Stale` metas, and fill `cache_epochs`.
    pub epoch: u64,
    /// The events the batch contained, in admission order.
    pub events: Vec<InteractionEvent>,
    /// Per-event result metadata aligned with `events`: the tenant each
    /// event belongs to and whether its result met the tenant's deadline.
    /// Dispositions never change the embedding values — a `Late` result is
    /// bitwise-identical to the on-time result of the same batch sequence,
    /// and a `Stale` result is bitwise-identical to the embedding served at
    /// its `cache_epochs` entry.
    pub metas: Vec<ResultMeta>,
    /// Embeddings of every touched vertex, in order of first appearance —
    /// bit-identical to `ExecMode::Serial` on the same batch sequence.
    pub embeddings: Vec<(NodeId, Vec<Float>)>,
    /// For a stale batch (`epoch == 0`): the pipeline epoch each entry of
    /// `embeddings` was originally served at, aligned index-for-index —
    /// what lets a client (or the bench's identity check) verify a stale
    /// answer against served history.  Empty for pipeline-served batches.
    pub cache_epochs: Vec<u64>,
    /// The compute backend that served this batch (every event of a sealed
    /// batch shares one backend; a stale cache answer carries the declared
    /// backend of the tenant it answers for).  Redundant with each
    /// `metas[i].backend` — hoisted here so clients need not inspect metas
    /// to route on it.
    pub backend: BackendKind,
    /// Service latency a modeled backend (hwsim) predicted for this batch's
    /// GNN work on its simulated datapath — the max across the batch's
    /// sub-jobs, since the parts run in parallel on the modeled hardware
    /// just as they do on the worker pool.  `None` for backends that really
    /// execute where they are measured.
    pub modeled_latency: Option<Duration>,
    /// Seal-to-embeddings pipeline latency (zero for stale batches).
    pub latency: Duration,
    /// Admission time of the batch's causal-trace anchor event (the first
    /// event in sealed order) — what `poll` measures the admit→deliver
    /// [`SegmentId::Total`](crate::SegmentId) against.  For batches that
    /// never ran the pipeline this session (stale cache answers, recovery
    /// re-serves) it is the batch's construction time.
    pub admitted_at: Instant,
    /// When the reorder worker committed the batch downstream — the anchor
    /// the delivery-side trace segments start from.
    pub reordered_at: Instant,
}

/// Per-tenant completion-side counters fed by the reorder worker:
/// served/late event counts and admission-to-completion latencies (the
/// client-visible queueing + compute delay the overload policies bound).
#[derive(Debug, Default)]
pub(crate) struct TenantCollector {
    pub served: AtomicU64,
    pub late: AtomicU64,
    /// Overload events answered from the embedding cache (`ServeStale`) —
    /// included in `served`, excluded from `latencies` (they bypass the
    /// pipeline, so their admission-to-completion delay is ~zero and would
    /// skew the distribution the deadline budgets).
    pub served_stale: AtomicU64,
    pub latencies: Mutex<Vec<Duration>>,
}

/// Per-backend completion-side counters fed by the reorder worker: how many
/// batches/events each compute backend served, and — for modeled backends —
/// the distribution of modeled service latencies.
#[derive(Debug, Default)]
pub(crate) struct BackendCollector {
    pub served_batches: AtomicU64,
    pub served_events: AtomicU64,
    /// Modeled per-batch service latencies (hwsim backends only).
    pub modeled_latencies: Mutex<Vec<Duration>>,
}

/// Aggregate counters the reorder (terminal) worker feeds.
#[derive(Debug)]
pub(crate) struct Collector {
    pub latencies: Mutex<Vec<Duration>>,
    pub events: AtomicUsize,
    pub embeddings: AtomicUsize,
    pub batches: AtomicUsize,
    pub first_submit: Mutex<Option<Instant>>,
    pub last_complete: Mutex<Option<Instant>>,
    pub tenants: Vec<TenantCollector>,
    /// Indexed by [`BackendKind::code`].  Counts only pipeline-served
    /// batches — stale cache answers are served by the cache, not a
    /// backend, and are tracked by the tenant/cache counters instead.
    pub backends: [BackendCollector; NUM_BACKEND_KINDS],
}

impl Collector {
    pub fn new(num_tenants: usize) -> Self {
        Self {
            latencies: Mutex::new(Vec::new()),
            events: AtomicUsize::new(0),
            embeddings: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            first_submit: Mutex::new(None),
            last_complete: Mutex::new(None),
            tenants: (0..num_tenants)
                .map(|_| TenantCollector::default())
                .collect(),
            backends: Default::default(),
        }
    }

    /// Records one pipeline-served batch for its backend.
    pub fn record_backend_batch(
        &self,
        kind: BackendKind,
        events: usize,
        modeled: Option<Duration>,
    ) {
        let b = &self.backends[kind.code()];
        b.served_batches.fetch_add(1, Ordering::Relaxed);
        b.served_events.fetch_add(events as u64, Ordering::Relaxed);
        if let Some(d) = modeled {
            b.modeled_latencies.lock().unwrap().push(d);
        }
    }

    pub fn record_batch(&self, events: usize, embeddings: usize, latency: Duration) {
        self.latencies.lock().unwrap().push(latency);
        self.events.fetch_add(events, Ordering::Relaxed);
        self.embeddings.fetch_add(embeddings, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        *self.last_complete.lock().unwrap() = Some(Instant::now());
    }

    /// Records one event's completion for its tenant.
    pub fn record_event(&self, tenant: TenantId, late: bool, admit_latency: Duration) {
        let t = &self.tenants[tenant.index()];
        t.served.fetch_add(1, Ordering::Relaxed);
        if late {
            t.late.fetch_add(1, Ordering::Relaxed);
        }
        t.latencies.lock().unwrap().push(admit_latency);
    }

    /// Records one overload event answered from the embedding cache: it is
    /// served (the drain invariant counts it) but never late and never part
    /// of the pipeline latency distribution.
    pub fn record_stale_event(&self, tenant: TenantId) {
        let t = &self.tenants[tenant.index()];
        t.served.fetch_add(1, Ordering::Relaxed);
        t.served_stale.fetch_add(1, Ordering::Relaxed);
    }
}

/// Micro-batcher: accumulates admitted events and seals a micro-batch when
/// `max_batch` events are pending or the oldest pending event is `deadline`
/// old, whichever comes first.  Once an event reaches this worker it is
/// guaranteed to be served — the overload drop policies act strictly
/// upstream, in the tenant ingress queues.
///
/// With durability on, the batch's `Seal` record is appended *before* the
/// batch is sent downstream and its fsync is requested from the group-commit
/// syncer; `poll` holds the epoch's results until the seal is durable.  A
/// batch can therefore only ever be *delivered* with a durable seal, which
/// is what lets recovery re-serve sealed-but-unacked epochs bit-identically
/// — while the batcher itself never waits on the disk.
pub(crate) fn batcher_loop(
    rx: Receiver<AdmittedEvent>,
    tx: Sender<SealedBatch>,
    max_batch: usize,
    deadline: Duration,
    next_epoch: Arc<AtomicU64>,
    durability: Option<Arc<Durability>>,
    obs: StageObs,
) {
    let mut pending: Vec<InteractionEvent> = Vec::new();
    let mut metas: Vec<EventMeta> = Vec::new();
    let mut first_at: Option<Instant> = None;
    let seal_one =
        |pending: &mut Vec<InteractionEvent>, metas: &mut Vec<EventMeta>, backend: BackendKind| {
            let epoch = next_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            // The batcher's span covers the seal work (sort + WAL append +
            // downstream send), not the accumulation wait — idle time is
            // "waiting for admitted events".
            let span = obs.enter(epoch);
            // The weighted-fair merge is only per-tenant chronological, but the
            // engine consumes each batch as a chronological stream (Algorithm 1),
            // so restore global order inside the sealed batch.  The sort is
            // stable, so each tenant's own order survives, and the single-tenant
            // feed — already sorted — is untouched.
            if pending.windows(2).any(|w| w[0].timestamp > w[1].timestamp) {
                let mut items: Vec<(InteractionEvent, EventMeta)> =
                    pending.drain(..).zip(metas.drain(..)).collect();
                items.sort_by(|a, b| a.0.timestamp.total_cmp(&b.0.timestamp));
                for (e, m) in items {
                    pending.push(e);
                    metas.push(m);
                }
            }
            // Claim the epoch's causal-trace slot and record the admission-side
            // segments, anchored on the first event in sealed order (the same
            // anchor `poll` measures `Total` against).  This runs after the
            // chronological sort so the anchor is stable from here on.
            obs.trace_begin(epoch);
            if let Some(m) = metas.first() {
                obs.trace_record(
                    epoch,
                    SegmentId::IngressWait,
                    m.picked_up_at.saturating_duration_since(m.admitted_at),
                );
            }
            if let Some(d) = &durability {
                if let Some(hook) = &d.wal_fault {
                    if hook(epoch) {
                        // Crash injection: freeze the WAL first so records still
                        // in its user-space buffer are lost exactly as a real
                        // process death would lose them, then die.
                        d.wal.freeze();
                        panic!("injected WAL fault at epoch {epoch}");
                    }
                }
                d.wal
                    .append(&tgnn_durable::WalRecord::Seal {
                        epoch,
                        events: pending
                            .iter()
                            .zip(metas.iter())
                            .map(|(e, m)| (m.tenant.0, *e))
                            .collect(),
                    })
                    .expect("batcher: WAL seal append failed");
                // Group commit: request (don't await) the seal fsync — the
                // reorder worker holds the epoch until the synced watermark
                // covers it, so sealing proceeds at compute speed while the
                // durable-before-delivered contract still holds.
                d.request_seal_sync(epoch);
            }
            let sealed_at = Instant::now();
            if let Some(m) = metas.first() {
                obs.trace_record(
                    epoch,
                    SegmentId::SealWait,
                    sealed_at.saturating_duration_since(m.picked_up_at),
                );
            }
            let ok = tx
                .send(SealedBatch {
                    epoch,
                    batch: EventBatch::new(std::mem::take(pending)),
                    metas: std::mem::take(metas),
                    backend,
                    sealed_at,
                })
                .is_ok();
            obs.exit(epoch, span);
            ok
        };
    // Seal everything pending.  A homogeneous pending set (every event on
    // the same backend — always the case on a single-backend server) seals
    // as one batch, exactly as before backends existed.  A mixed set seals
    // one batch per backend kind, in `code()` order (deterministic),
    // arrival order preserved within each kind — the sealed batch is the
    // unit of backend routing, so it must be single-backend.  The split
    // reorders events only *across* tenants (tenants are single-backend),
    // which the weighted-fair merge already permits.
    let seal = |pending: &mut Vec<InteractionEvent>,
                metas: &mut Vec<EventMeta>,
                first_at: &mut Option<Instant>| {
        if pending.is_empty() {
            return true;
        }
        *first_at = None;
        let first = metas[0].backend;
        if metas.iter().all(|m| m.backend == first) {
            return seal_one(pending, metas, first);
        }
        let items: Vec<(InteractionEvent, EventMeta)> =
            pending.drain(..).zip(metas.drain(..)).collect();
        for kind in BackendKind::ALL {
            let mut evs = Vec::new();
            let mut ms = Vec::new();
            for &(e, m) in &items {
                if m.backend == kind {
                    evs.push(e);
                    ms.push(m);
                }
            }
            if !evs.is_empty() && !seal_one(&mut evs, &mut ms, kind) {
                return false;
            }
        }
        true
    };
    loop {
        let received = match first_at {
            None => match rx.recv() {
                Some(e) => crate::queue::RecvResult::Item(e),
                None => crate::queue::RecvResult::Closed,
            },
            Some(t0) => {
                let remaining = deadline.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    if !seal(&mut pending, &mut metas, &mut first_at) {
                        return;
                    }
                    continue;
                }
                rx.recv_timeout(remaining)
            }
        };
        match received {
            crate::queue::RecvResult::Item(e) => {
                if first_at.is_none() {
                    first_at = Some(Instant::now());
                }
                pending.push(e.event);
                metas.push(e.meta);
                if pending.len() >= max_batch && !seal(&mut pending, &mut metas, &mut first_at) {
                    return;
                }
            }
            crate::queue::RecvResult::Timeout => {
                if !seal(&mut pending, &mut metas, &mut first_at) {
                    return;
                }
            }
            crate::queue::RecvResult::Closed => {
                let _ = seal(&mut pending, &mut metas, &mut first_at);
                return;
            }
        }
    }
}

/// Sampling worker: waits for the neighbor-table shards it reads to reach
/// epoch `k-1`, then samples every touched vertex into a flat arena.
pub(crate) fn sampler_loop(
    rx: Receiver<SealedBatch>,
    tx: Sender<SampledJob>,
    table: Arc<ShardedNeighborTable>,
    sampled_neighbors: usize,
    obs: StageObs,
) {
    let num_shards = table.num_shards();
    while let Some(SealedBatch {
        epoch,
        batch,
        metas,
        backend,
        sealed_at,
    }) = rx.recv()
    {
        let span = obs.enter(epoch);
        let sampled = SampledBatch::assemble(batch, sampled_neighbors, |v, t, k, out| {
            // Fine-grained epoch barrier: only the shard owning `v` must have
            // absorbed the previous batch; other shards may still be
            // committing while we read this one.
            table.gate().wait_for(shard_of(v, num_shards), epoch - 1);
            table.sample_into(v, t, k, out);
        });
        // The trace's `Sample` segment spans seal → sampled, so it covers
        // the sealed-batch queue wait and the shard-gate wait as well as the
        // sampling itself — the additive segments tile wall time, no gaps.
        let sampled_at = Instant::now();
        obs.trace_record(
            epoch,
            SegmentId::Sample,
            sampled_at.saturating_duration_since(sealed_at),
        );
        let ok = tx
            .send(SampledJob {
                epoch,
                sampled,
                metas,
                backend,
                sealed_at,
                sampled_at,
            })
            .is_ok();
        obs.exit(epoch, span);
        if !ok {
            return;
        }
    }
}

/// Memory worker: consumes mailbox messages, runs the GRU, caches the
/// batch's new raw messages, gathers the owned GNN job, and emits the
/// write-back job (before the GNN work, so the updater can release epoch `k`
/// while the GNN stage computes).  The gathered job is split into at most
/// `gnn_workers` sub-jobs: the batch header goes to the reorder worker (in
/// epoch order), the sub-jobs onto the batch's *backend's* dispatch queue —
/// `tx_gnn` is indexed by [`BackendKind::code`]; a homogeneous server has
/// exactly one entry populated.  The memory stage itself always runs on the
/// one shared `model` regardless of backend: the temporal state is a single
/// trajectory, and only GNN compute is backend-specific.
#[allow(clippy::too_many_arguments)]
pub(crate) fn memory_loop(
    rx: Receiver<SampledJob>,
    tx_update: Sender<UpdateJob>,
    tx_header: Sender<GnnBatchHeader>,
    tx_gnn: Vec<Option<MpmcSender<GnnSubJob>>>,
    gnn_workers: usize,
    memory: Arc<ShardedMemory>,
    model: Arc<TgnModel>,
    graph: Arc<TemporalGraph>,
    obs: StageObs,
) {
    let mut ws = Workspace::new();
    let num_shards = memory.num_shards();
    let mut mask = vec![false; num_shards];
    while let Some(SampledJob {
        epoch,
        sampled,
        metas,
        backend,
        sealed_at,
        sampled_at,
    }) = rx.recv()
    {
        let span = obs.enter(epoch);
        // Wait-set: every shard this stage reads — the touched vertices
        // (mailbox, clocks, own memory) and their sampled neighbors (memory
        // rows gathered for the GNN).
        memory.shard_mask(&sampled.touched, &mut mask);
        for i in 0..sampled.len() {
            for e in sampled.neighbors_of(i) {
                mask[shard_of(e.neighbor, num_shards)] = true;
            }
        }
        memory.gate().wait_for_mask(&mask, epoch - 1);

        let updated = run_sharded_memory_stage(&sampled, &memory, &model, &graph, &mut ws);
        // Gather everything the GNN reads BEFORE the update job is emitted:
        // once the updater receives it, it may overwrite this epoch's rows.
        let job = GnnJobBatch::gather(&sampled, &updated, &graph, &model.config, |v, dst| {
            memory.copy_memory_into(v, dst)
        });
        let writes = writes_from(updated, &sampled);
        let events = sampled.batch.events().to_vec();
        if tx_update
            .send(UpdateJob {
                epoch,
                writes,
                events: events.clone(),
            })
            .is_err()
        {
            obs.exit(epoch, span);
            return;
        }
        let parts = job.split(gnn_workers);
        // `Memory` spans sampled → dispatch, covering the memory-shard gate
        // wait, the GRU + gather, and the update-job handoff.
        let mem_done_at = Instant::now();
        obs.trace_record(
            epoch,
            SegmentId::Memory,
            mem_done_at.saturating_duration_since(sampled_at),
        );
        if tx_header
            .send(GnnBatchHeader {
                epoch,
                num_parts: parts.len(),
                events,
                metas,
                backend,
                sealed_at,
                mem_done_at,
            })
            .is_err()
        {
            obs.exit(epoch, span);
            return;
        }
        let dispatch = tx_gnn[backend.code()]
            .as_ref()
            .expect("memory: sealed batch routed to a backend with no dispatch queue");
        for (part, job) in parts.into_iter().enumerate() {
            if dispatch
                .send(GnnSubJob {
                    epoch,
                    part,
                    job,
                    dispatched_at: mem_done_at,
                })
                .is_err()
            {
                obs.exit(epoch, span);
                return;
            }
        }
        obs.exit(epoch, span);
    }
}

/// The memory-stage computation shared by the pipeline's memory worker and
/// `StreamServer::warm_up`: consume the touched vertices' mailbox messages,
/// run the GRU on them, and cache the batch's new raw messages (Eq. 4–5) in
/// event order from the pre-write-back snapshots — the same
/// information-leak-safe ordering as the serial engine.  Sharing one body is
/// what keeps both paths bit-identical by construction.
pub(crate) fn run_sharded_memory_stage(
    sampled: &SampledBatch,
    memory: &ShardedMemory,
    model: &TgnModel,
    graph: &TemporalGraph,
    ws: &mut Workspace,
) -> HashMap<NodeId, Vec<Float>> {
    let with_messages: Vec<(NodeId, Message)> = sampled
        .touched
        .iter()
        .filter_map(|&v| memory.take_message(v).map(|m| (v, m)))
        .collect();
    let updated: HashMap<NodeId, Vec<Float>> = run_memory_stage(
        model,
        &with_messages,
        |v| memory.last_update(v),
        |v, dst| memory.copy_memory_into(v, dst),
        ws,
    )
    .into_iter()
    .collect();
    for e in sampled.batch.events() {
        memory.cache_interaction_messages(e.src, e.dst, graph.edge_feature(e.edge_id), e.timestamp);
    }
    updated
}

/// Converts the memory stage's output into the update worker's write list,
/// stamping each vertex with its query time.
pub(crate) fn writes_from(
    updated: HashMap<NodeId, Vec<Float>>,
    sampled: &SampledBatch,
) -> Vec<(NodeId, Vec<Float>, Timestamp)> {
    updated
        .into_iter()
        .map(|(v, m)| {
            let t = sampled.query_time_of(v);
            (v, m, t)
        })
        .collect()
}

/// Poisons both epoch gates when the owning worker exits — by return *or*
/// panic.  Held by the update worker (the only committer: once it is gone
/// any stage still waiting on a watermark would wait forever) and by every
/// GNN worker (a worker that dies mid-batch leaves the reorder stage short a
/// part, so the pipeline behind it must unwind, not stall); poisoning turns
/// the hang into a clean panic that unwinds the rest of the pipeline.  On an
/// orderly shutdown this is harmless: shutdown ripples front to back, so the
/// sampler and memory workers have already exited by the time the update
/// queue or the GNN dispatch queue closes, and no waiter remains to observe
/// the poison.
struct PoisonGatesOnExit {
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
}

impl Drop for PoisonGatesOnExit {
    fn drop(&mut self) {
        self.memory.gate().poison();
        self.table.gate().poison();
    }
}

/// Update worker: the only writer of the sharded state.  Applies write-backs
/// and neighbor-table appends shard by shard, bumping each shard's epoch
/// watermark as it goes — which is what releases the next batch's sampling
/// and memory stages.
///
/// With durability on, snapshot-interval epochs capture each shard's
/// payload through the `commit_epoch_with` observers — under the shard lock,
/// after the epoch's writes, before the gate bump — so the snapshot is the
/// exact epoch-barrier state with no global pause; the files are then
/// written by a background thread, overlapping the pipeline instead of
/// stalling the single committer on disk I/O.
pub(crate) fn update_loop(
    rx: Receiver<UpdateJob>,
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
    commit_log: Arc<Mutex<CommitLog>>,
    durability: Option<Arc<Durability>>,
    cache: Option<Arc<crate::cache::EmbeddingCache>>,
    obs: StageObs,
) {
    let _poison_on_exit = PoisonGatesOnExit {
        memory: memory.clone(),
        table: table.clone(),
    };
    while let Some(UpdateJob {
        epoch,
        writes,
        events,
    }) = rx.recv()
    {
        let span = obs.enter(epoch);
        {
            let mut log = commit_log.lock().unwrap();
            for (v, _, t) in &writes {
                log.commit(*v, *t);
            }
        }
        if let Some(d) = &durability {
            d.note_absorbed(&events);
        }
        // The embedding cache hooks the same per-shard commit observer the
        // snapshot writer uses — under the shard lock, after the epoch's
        // writes, before the gate bump — to advance its staleness watermark
        // and sweep the shard's expired entries.
        match durability.as_ref().filter(|d| d.wants_snapshot(epoch)) {
            None => {
                match &cache {
                    None => memory.commit_epoch(epoch, &writes),
                    Some(c) => memory
                        .commit_epoch_with(epoch, &writes, |s, _| c.on_shard_committed(s, epoch)),
                }
                table.commit_epoch(epoch, &events);
            }
            Some(d) => {
                let num_shards = memory.num_shards();
                let mut mem_bufs: Vec<Vec<u8>> = vec![Vec::new(); num_shards];
                memory.commit_epoch_with(epoch, &writes, |s, m| {
                    tgnn_durable::encode_memory_shard(m, &mut mem_bufs[s]);
                    if let Some(c) = &cache {
                        c.on_shard_committed(s, epoch);
                    }
                });
                let mut nbr_bufs: Vec<Vec<u8>> = vec![Vec::new(); num_shards];
                table.commit_epoch_with(epoch, &events, |s, t| {
                    tgnn_durable::encode_neighbor_shard(t, &mut nbr_bufs[s])
                });
                // Hand the captured payloads to the background writer: the
                // consistent cut is done, the disk I/O needs no lock.
                d.spawn_snapshot_write(epoch, mem_bufs, nbr_bufs);
            }
        }
        obs.exit(epoch, span);
    }
}

/// Unwinds the whole GNN pool when one worker dies mid-batch.  A panicking
/// worker leaves the reorder stage short a part forever, and — unlike the
/// single-committer update worker — its surviving peers would happily keep
/// the pipeline flowing around the hole.  So on a *panicking* exit the guard
/// closes both MPMC channels (failing the memory worker's dispatch sends and
/// ending the reorder worker's part stream), which ripples the shutdown
/// through every stage; the epoch gates are poisoned unconditionally, same
/// as the updater's guard (harmless on an orderly exit, where no waiter
/// remains).
struct UnwindPoolOnPanic {
    rx: MpmcReceiver<GnnSubJob>,
    tx: MpmcSender<GnnSubResult>,
    /// Held only for its drop side effect (poisons both epoch gates).
    _gates: PoisonGatesOnExit,
}

impl Drop for UnwindPoolOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.rx.close();
            self.tx.close();
        }
        // `_gates` drops after: poisons both epoch gates.
    }
}

/// GNN worker: pure batched compute over owned sub-jobs from its backend's
/// dispatch queue, on a persistent per-worker workspace.  One of `N`
/// identical workers per backend; work-sharing order does not matter because
/// the reorder worker restores epoch/part order downstream.  The worker runs
/// whatever its [`ComputeBackend`] executes — f32 kernels, int8 kernels, or
/// f32 kernels plus a modeled latency (hwsim) — and every backend's results
/// funnel into the one shared sub-result queue.
pub(crate) fn gnn_worker_loop(
    rx: MpmcReceiver<GnnSubJob>,
    tx: MpmcSender<GnnSubResult>,
    backend: Arc<dyn ComputeBackend>,
    fault: Option<GnnFaultHook>,
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
    obs: StageObs,
) {
    let _unwind_on_panic = UnwindPoolOnPanic {
        rx: rx.clone(),
        tx: tx.clone(),
        _gates: PoisonGatesOnExit { memory, table },
    };
    let mut ws = Workspace::new();
    while let Some(GnnSubJob {
        epoch,
        part,
        job,
        dispatched_at,
    }) = rx.recv()
    {
        // Enter before the fault hook: an injected panic must leave this
        // epoch's `Enter` without an `Exit` in the flight recorder — that
        // dangling span is exactly what the post-mortem dump pinpoints.
        let span = obs.enter(epoch);
        if let Some(hook) = &fault {
            assert!(
                !hook(epoch, part),
                "injected GNN worker fault at epoch {epoch} part {part}"
            );
        }
        // Per-part informational trace segments (they overlap the epoch's
        // additive `Gnn` envelope).  Capped to the first parts so a wide
        // pool cannot overflow the trace slot and evict the additive
        // delivery segments recorded later.
        let started = Instant::now();
        if part < crate::metrics::GNN_SUB_TRACE_PARTS {
            obs.trace_record(
                epoch,
                SegmentId::GnnSubWait,
                started.saturating_duration_since(dispatched_at),
            );
        }
        let out = backend.run_gnn(&job, &mut ws);
        let completed_at = Instant::now();
        if part < crate::metrics::GNN_SUB_TRACE_PARTS {
            obs.trace_record(
                epoch,
                SegmentId::GnnSubCompute,
                completed_at.saturating_duration_since(started),
            );
        }
        let ok = tx
            .send(GnnSubResult {
                epoch,
                part,
                embeddings: out.embeddings,
                modeled_latency: out.modeled_latency,
                completed_at,
            })
            .is_ok();
        obs.exit(epoch, span);
        if !ok {
            return;
        }
    }
}

/// Reorder worker: the commit point of the data-parallel GNN stage.  Batch
/// headers arrive in epoch order (SPSC from the memory worker); sub-results
/// arrive in arbitrary order from the worker pool.  For each header it
/// collects the batch's parts — stashing parts of *later* epochs until their
/// header is current — concatenates them in part order (bitwise-equal to the
/// unsplit run), and emits the [`ServedBatch`].  The stash is bounded by the
/// header/dispatch queue capacities: only in-flight epochs can have parts
/// outstanding.
pub(crate) fn reorder_loop(
    rx_header: Receiver<GnnBatchHeader>,
    rx_parts: MpmcReceiver<GnnSubResult>,
    tx: Sender<ServedBatch>,
    collector: Arc<Collector>,
    cache: Option<Arc<crate::cache::EmbeddingCache>>,
    obs: StageObs,
    latency_us: tgnn_obs::Histogram,
) {
    let mut stash: HashMap<(u64, usize), (PartEmbeddings, Option<Duration>, Instant)> =
        HashMap::new();
    while let Some(GnnBatchHeader {
        epoch,
        num_parts,
        events,
        metas,
        backend,
        sealed_at,
        mem_done_at,
    }) = rx_header.recv()
    {
        let span = obs.enter(epoch);
        let mut parts: Vec<Option<PartEmbeddings>> = vec![None; num_parts];
        let mut have = 0usize;
        // The last part's completion closes the epoch-level `Gnn` trace
        // segment; everything after it (until the batch is committed
        // downstream) is the reorder barrier.
        let mut last_done: Option<Instant> = None;
        // A modeled backend predicts per-part service latencies; the batch's
        // modeled latency is the max over parts (they run in parallel on the
        // modeled hardware just as on the pool).
        let mut modeled_latency: Option<Duration> = None;
        let note_modeled = |m: Option<Duration>, acc: &mut Option<Duration>| {
            if let Some(d) = m {
                *acc = Some(acc.map_or(d, |a| a.max(d)));
            }
        };
        for (p, slot) in parts.iter_mut().enumerate() {
            if let Some((r, modeled, done)) = stash.remove(&(epoch, p)) {
                *slot = Some(r);
                note_modeled(modeled, &mut modeled_latency);
                last_done = Some(last_done.map_or(done, |t| t.max(done)));
                have += 1;
            }
        }
        while have < num_parts {
            match rx_parts.recv() {
                Some(GnnSubResult {
                    epoch: e,
                    part,
                    embeddings,
                    modeled_latency: modeled,
                    completed_at,
                }) => {
                    if e == epoch {
                        debug_assert!(parts[part].is_none(), "duplicate sub-result");
                        parts[part] = Some(embeddings);
                        note_modeled(modeled, &mut modeled_latency);
                        last_done = Some(last_done.map_or(completed_at, |t| t.max(completed_at)));
                        have += 1;
                    } else {
                        stash.insert((e, part), (embeddings, modeled, completed_at));
                    }
                }
                // The worker pool is gone with this batch incomplete — a
                // worker died; unwind (the pool's poison guard handles the
                // stages behind us).
                None => return,
            }
        }
        let mut embeddings = Vec::new();
        for part in parts {
            embeddings.extend(part.expect("all parts collected"));
        }
        // Populate the embedding cache at the delivery commit point: a
        // cache entry is by construction exactly the embedding served for
        // this (vertex, epoch), which is what makes `ServeStale` hits
        // bit-identical to served history.
        if let Some(c) = &cache {
            for (v, emb) in &embeddings {
                c.insert(*v, epoch, emb);
            }
        }
        let latency = sealed_at.elapsed();
        collector.record_batch(events.len(), embeddings.len(), latency);
        collector.record_backend_batch(backend, events.len(), modeled_latency);
        if obs.enabled() {
            latency_us.record(latency.as_micros() as u64);
        }
        // Grade each event's deadline disposition at the completion point:
        // the admission-to-completion delay (queueing + batching + compute)
        // is what the tenant's deadline budgets.  The disposition is pure
        // metadata — it never feeds back into the computation.
        let admitted_at = metas.first().map(|m| m.admitted_at);
        let metas: Vec<ResultMeta> = metas
            .into_iter()
            .map(|m| {
                let admit_latency = m.admitted_at.elapsed();
                let late = m.deadline.is_some_and(|d| admit_latency > d);
                collector.record_event(m.tenant, late, admit_latency);
                ResultMeta {
                    tenant: m.tenant,
                    disposition: if late {
                        Disposition::Late
                    } else {
                        Disposition::OnTime
                    },
                    backend,
                    trace_id: epoch,
                }
            })
            .collect();
        let reordered_at = Instant::now();
        let last_done = last_done.unwrap_or(reordered_at);
        obs.trace_record(
            epoch,
            SegmentId::Gnn,
            last_done.saturating_duration_since(mem_done_at),
        );
        obs.trace_record(
            epoch,
            SegmentId::ReorderBarrier,
            reordered_at.saturating_duration_since(last_done),
        );
        let ok = tx
            .send(ServedBatch {
                epoch,
                events,
                metas,
                embeddings,
                cache_epochs: Vec::new(),
                backend,
                modeled_latency,
                latency,
                admitted_at: admitted_at.unwrap_or(reordered_at),
                reordered_at,
            })
            .is_ok();
        obs.exit(epoch, span);
        if !ok {
            return;
        }
    }
}
