//! The pipeline worker loops and the job types flowing between them.
//!
//! ```text
//!                    admission (events)
//!                         │  seal by size / deadline
//!                   [batcher worker]
//!                         │  SealedBatch
//!                   [sampler worker] ──── waits: neighbor-table shards @ epoch k-1
//!                         │  SampledJob
//!                   [memory worker]  ──── waits: memory shards @ epoch k-1
//!                   │            │
//!          UpdateJob│            │GnnJob (owned, self-contained)
//!                   ▼            ▼
//!            [update worker]  [gnn worker]
//!             commits epoch k     │  ServedBatch
//!             (releases k+1)      ▼
//!                              results
//! ```
//!
//! The memory worker emits the update job *before* the GNN job, so batch
//! *k*'s write-back (cheap) runs concurrently with batch *k*'s GNN compute
//! (dominant) — and, once the epoch gates open, with batch *k+1*'s sampling
//! and memory stages.  That overlap is the software rendition of the paper's
//! hardware pipeline; the epoch gates are what keep it bit-identical to the
//! serial engine.
//!
//! Ordering argument, stage by stage (epochs are 1-based batch numbers):
//! * **sample(k)** reads only neighbor-table shards at epoch `k-1` — the gate
//!   blocks until the update worker committed batch `k-1`'s interactions.
//! * **memory(k)** reads memory rows / clocks / mailbox at epoch `k-1`
//!   (gated), consumes mailbox messages and caches new ones (fields no other
//!   in-flight stage touches), and gathers every value the GNN needs into an
//!   owned job *before* the update job is emitted — so update(k) can never
//!   race the gather.
//! * **gnn(k)** is pure compute over the owned job.
//! * **update(k)** is the only writer of memory rows and the neighbor table,
//!   and processes epochs in queue order.

use crate::queue::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tgnn_core::memory::Message;
use tgnn_core::stages::{run_memory_stage, GnnJobBatch, SampledBatch};
use tgnn_core::{ShardedMemory, TgnModel};
use tgnn_graph::chronology::CommitLog;
use tgnn_graph::sharded::shard_of;
use tgnn_graph::{
    EventBatch, InteractionEvent, NodeId, ShardedNeighborTable, TemporalGraph, Timestamp,
};
use tgnn_tensor::{Float, Workspace};

/// A micro-batch sealed by the admission batcher.
#[derive(Debug)]
pub(crate) struct SealedBatch {
    pub epoch: u64,
    pub batch: EventBatch,
    pub sealed_at: Instant,
}

/// A sealed batch with its neighbor samples.
#[derive(Debug)]
pub(crate) struct SampledJob {
    pub epoch: u64,
    pub sampled: SampledBatch,
    pub sealed_at: Instant,
}

/// Owned GNN-stage input plus the batch's events (returned to the client).
#[derive(Debug)]
pub(crate) struct GnnJob {
    pub epoch: u64,
    pub job: GnnJobBatch,
    pub events: Vec<InteractionEvent>,
    pub sealed_at: Instant,
}

/// The state write-back of one batch.
#[derive(Debug)]
pub(crate) struct UpdateJob {
    pub epoch: u64,
    pub writes: Vec<(NodeId, Vec<Float>, Timestamp)>,
    pub events: Vec<InteractionEvent>,
}

/// One completed micro-batch, as returned by `StreamServer::poll`.
#[derive(Clone, Debug)]
pub struct ServedBatch {
    /// 1-based batch sequence number (the pipeline epoch).
    pub epoch: u64,
    /// The events the batch contained, in submission order.
    pub events: Vec<InteractionEvent>,
    /// Embeddings of every touched vertex, in order of first appearance —
    /// bit-identical to `ExecMode::Serial` on the same batch sequence.
    pub embeddings: Vec<(NodeId, Vec<Float>)>,
    /// Seal-to-embeddings pipeline latency.
    pub latency: Duration,
}

/// Aggregate counters the GNN (terminal compute) worker feeds.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    pub latencies: Mutex<Vec<Duration>>,
    pub events: AtomicUsize,
    pub embeddings: AtomicUsize,
    pub batches: AtomicUsize,
    pub first_submit: Mutex<Option<Instant>>,
    pub last_complete: Mutex<Option<Instant>>,
}

impl Collector {
    pub fn record_batch(&self, events: usize, embeddings: usize, latency: Duration) {
        self.latencies.lock().unwrap().push(latency);
        self.events.fetch_add(events, Ordering::Relaxed);
        self.embeddings.fetch_add(embeddings, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        *self.last_complete.lock().unwrap() = Some(Instant::now());
    }
}

/// Admission batcher: accumulates submitted events and seals a micro-batch
/// when `max_batch` events are pending or the oldest pending event is
/// `deadline` old, whichever comes first.
pub(crate) fn batcher_loop(
    rx: Receiver<InteractionEvent>,
    tx: Sender<SealedBatch>,
    max_batch: usize,
    deadline: Duration,
    next_epoch: Arc<std::sync::atomic::AtomicU64>,
) {
    let mut pending: Vec<InteractionEvent> = Vec::new();
    let mut first_at: Option<Instant> = None;
    let seal = |pending: &mut Vec<InteractionEvent>, first_at: &mut Option<Instant>| {
        if pending.is_empty() {
            return true;
        }
        let epoch = next_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *first_at = None;
        tx.send(SealedBatch {
            epoch,
            batch: EventBatch::new(std::mem::take(pending)),
            sealed_at: Instant::now(),
        })
        .is_ok()
    };
    loop {
        let received = match first_at {
            None => match rx.recv() {
                Some(e) => crate::queue::RecvResult::Item(e),
                None => crate::queue::RecvResult::Closed,
            },
            Some(t0) => {
                let remaining = deadline.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    if !seal(&mut pending, &mut first_at) {
                        return;
                    }
                    continue;
                }
                rx.recv_timeout(remaining)
            }
        };
        match received {
            crate::queue::RecvResult::Item(e) => {
                if first_at.is_none() {
                    first_at = Some(Instant::now());
                }
                pending.push(e);
                if pending.len() >= max_batch && !seal(&mut pending, &mut first_at) {
                    return;
                }
            }
            crate::queue::RecvResult::Timeout => {
                if !seal(&mut pending, &mut first_at) {
                    return;
                }
            }
            crate::queue::RecvResult::Closed => {
                let _ = seal(&mut pending, &mut first_at);
                return;
            }
        }
    }
}

/// Sampling worker: waits for the neighbor-table shards it reads to reach
/// epoch `k-1`, then samples every touched vertex into a flat arena.
pub(crate) fn sampler_loop(
    rx: Receiver<SealedBatch>,
    tx: Sender<SampledJob>,
    table: Arc<ShardedNeighborTable>,
    sampled_neighbors: usize,
) {
    let num_shards = table.num_shards();
    while let Some(SealedBatch {
        epoch,
        batch,
        sealed_at,
    }) = rx.recv()
    {
        let sampled = SampledBatch::assemble(batch, sampled_neighbors, |v, t, k, out| {
            // Fine-grained epoch barrier: only the shard owning `v` must have
            // absorbed the previous batch; other shards may still be
            // committing while we read this one.
            table.gate().wait_for(shard_of(v, num_shards), epoch - 1);
            table.sample_into(v, t, k, out);
        });
        if tx
            .send(SampledJob {
                epoch,
                sampled,
                sealed_at,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Memory worker: consumes mailbox messages, runs the GRU, caches the
/// batch's new raw messages, gathers the owned GNN job, and emits the
/// write-back job (before the GNN job, so the updater can release epoch `k`
/// while the GNN stage computes).
pub(crate) fn memory_loop(
    rx: Receiver<SampledJob>,
    tx_update: Sender<UpdateJob>,
    tx_gnn: Sender<GnnJob>,
    memory: Arc<ShardedMemory>,
    model: Arc<TgnModel>,
    graph: Arc<TemporalGraph>,
) {
    let mut ws = Workspace::new();
    let num_shards = memory.num_shards();
    let mut mask = vec![false; num_shards];
    while let Some(SampledJob {
        epoch,
        sampled,
        sealed_at,
    }) = rx.recv()
    {
        // Wait-set: every shard this stage reads — the touched vertices
        // (mailbox, clocks, own memory) and their sampled neighbors (memory
        // rows gathered for the GNN).
        memory.shard_mask(&sampled.touched, &mut mask);
        for i in 0..sampled.len() {
            for e in sampled.neighbors_of(i) {
                mask[shard_of(e.neighbor, num_shards)] = true;
            }
        }
        memory.gate().wait_for_mask(&mask, epoch - 1);

        let updated = run_sharded_memory_stage(&sampled, &memory, &model, &graph, &mut ws);
        // Gather everything the GNN reads BEFORE the update job is emitted:
        // once the updater receives it, it may overwrite this epoch's rows.
        let job = GnnJobBatch::gather(&sampled, &updated, &graph, &model.config, |v, dst| {
            memory.copy_memory_into(v, dst)
        });
        let writes = writes_from(updated, &sampled);
        let events = sampled.batch.events().to_vec();
        if tx_update
            .send(UpdateJob {
                epoch,
                writes,
                events: events.clone(),
            })
            .is_err()
        {
            return;
        }
        if tx_gnn
            .send(GnnJob {
                epoch,
                job,
                events,
                sealed_at,
            })
            .is_err()
        {
            return;
        }
    }
}

/// The memory-stage computation shared by the pipeline's memory worker and
/// `StreamServer::warm_up`: consume the touched vertices' mailbox messages,
/// run the GRU on them, and cache the batch's new raw messages (Eq. 4–5) in
/// event order from the pre-write-back snapshots — the same
/// information-leak-safe ordering as the serial engine.  Sharing one body is
/// what keeps both paths bit-identical by construction.
pub(crate) fn run_sharded_memory_stage(
    sampled: &SampledBatch,
    memory: &ShardedMemory,
    model: &TgnModel,
    graph: &TemporalGraph,
    ws: &mut Workspace,
) -> HashMap<NodeId, Vec<Float>> {
    let with_messages: Vec<(NodeId, Message)> = sampled
        .touched
        .iter()
        .filter_map(|&v| memory.take_message(v).map(|m| (v, m)))
        .collect();
    let updated: HashMap<NodeId, Vec<Float>> = run_memory_stage(
        model,
        &with_messages,
        |v| memory.last_update(v),
        |v, dst| memory.copy_memory_into(v, dst),
        ws,
    )
    .into_iter()
    .collect();
    for e in sampled.batch.events() {
        memory.cache_interaction_messages(e.src, e.dst, graph.edge_feature(e.edge_id), e.timestamp);
    }
    updated
}

/// Converts the memory stage's output into the update worker's write list,
/// stamping each vertex with its query time.
pub(crate) fn writes_from(
    updated: HashMap<NodeId, Vec<Float>>,
    sampled: &SampledBatch,
) -> Vec<(NodeId, Vec<Float>, Timestamp)> {
    updated
        .into_iter()
        .map(|(v, m)| {
            let t = sampled.query_time_of(v);
            (v, m, t)
        })
        .collect()
}

/// Poisons both epoch gates when the update worker exits — by return *or*
/// panic.  The updater is the only committer, so once it is gone any stage
/// still waiting on a watermark would wait forever; poisoning turns that
/// hang into a clean panic that unwinds the rest of the pipeline.  On an
/// orderly shutdown this is harmless: the sampler and memory workers have
/// already exited by the time the update queue closes (shutdown ripples
/// front to back), so no waiter remains to observe the poison.
struct PoisonGatesOnExit {
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
}

impl Drop for PoisonGatesOnExit {
    fn drop(&mut self) {
        self.memory.gate().poison();
        self.table.gate().poison();
    }
}

/// Update worker: the only writer of the sharded state.  Applies write-backs
/// and neighbor-table appends shard by shard, bumping each shard's epoch
/// watermark as it goes — which is what releases the next batch's sampling
/// and memory stages.
pub(crate) fn update_loop(
    rx: Receiver<UpdateJob>,
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
    commit_log: Arc<Mutex<CommitLog>>,
) {
    let _poison_on_exit = PoisonGatesOnExit {
        memory: memory.clone(),
        table: table.clone(),
    };
    while let Some(UpdateJob {
        epoch,
        writes,
        events,
    }) = rx.recv()
    {
        {
            let mut log = commit_log.lock().unwrap();
            for (v, _, t) in &writes {
                log.commit(*v, *t);
            }
        }
        memory.commit_epoch(epoch, &writes);
        table.commit_epoch(epoch, &events);
    }
}

/// GNN worker: pure batched compute over the owned job on a persistent
/// per-worker workspace.
pub(crate) fn gnn_loop(
    rx: Receiver<GnnJob>,
    tx: Sender<ServedBatch>,
    model: Arc<TgnModel>,
    collector: Arc<Collector>,
) {
    let mut ws = Workspace::new();
    while let Some(GnnJob {
        epoch,
        job,
        events,
        sealed_at,
    }) = rx.recv()
    {
        let embeddings = job.run(&model, &mut ws);
        let latency = sealed_at.elapsed();
        collector.record_batch(events.len(), embeddings.len(), latency);
        if tx
            .send(ServedBatch {
                epoch,
                events,
                embeddings,
                latency,
            })
            .is_err()
        {
            return;
        }
    }
}
