//! The streaming inference server: admission, worker lifecycle, and the
//! backpressure-aware serve report.

use crate::admission::{
    scheduler_loop, AdmissionControl, AdmissionCounters, AdmittedEvent, SubmitOutcome, TenantSpec,
};
use crate::pipeline::{
    batcher_loop, gnn_worker_loop, memory_loop, reorder_loop, sampler_loop, update_loop, Collector,
    GnnBatchHeader, GnnFaultHook, GnnSubJob, GnnSubResult, SampledJob, SealedBatch, ServedBatch,
    UpdateJob,
};
use crate::queue::{channel, mpmc_channel, QueueStats, Receiver};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tgnn_core::stages::SampledBatch;
use tgnn_core::tenancy::{OverloadPolicy, TenantId};
use tgnn_core::{ShardedMemory, TgnModel};
use tgnn_graph::chronology::CommitLog;
use tgnn_graph::{EventBatch, InteractionEvent, ShardedNeighborTable, TemporalGraph, Timestamp};
use tgnn_tensor::Workspace;

/// Tuning knobs of the streaming pipeline.
#[derive(Clone)]
pub struct ServeConfig {
    /// Seal a micro-batch once this many events are pending.
    pub max_batch: usize,
    /// …or once the oldest pending event is this old.
    pub batch_deadline: Duration,
    /// Capacity of the scheduler→batcher handoff queue (events), and the
    /// ingress bound of the implicit default tenant when `tenants` is
    /// empty.  Backpressure starts here: with the default `Block` policy,
    /// `submit` blocks once the ingress queue fills behind a full handoff
    /// queue.
    pub admission_capacity: usize,
    /// Capacity of each inter-stage queue (micro-batches in flight).
    pub stage_capacity: usize,
    /// Capacity of the results queue (completed batches awaiting `poll`).
    pub results_capacity: usize,
    /// Number of vertex shards for the neighbor table and the memory table.
    pub num_shards: usize,
    /// Number of data-parallel GNN compute workers.  Each batch's GNN job is
    /// split into up to this many sub-jobs served from one shared dispatch
    /// queue; the reorder stage keeps the output stream in epoch order and
    /// bit-identical to `ExecMode::Serial` for every worker count.
    pub gnn_workers: usize,
    /// Tenant table of the admission layer.  Empty (the default) means a
    /// single implicit [`TenantId::DEFAULT`] tenant with `Block` policy and
    /// an `admission_capacity`-event ingress queue: served results are
    /// bit-identical to the pre-admission-layer server, and `submit` still
    /// blocks rather than drop — though the buffering ahead of the batcher
    /// is now the ingress queue *plus* the scheduler→batcher queue (each
    /// `admission_capacity` deep), so the blocking point sits up to one
    /// queue later than it used to.  With more than one entry, `submit_for`
    /// routes each event to its tenant's bounded ingress queue and the
    /// weighted-fair scheduler drains them into the micro-batcher; see
    /// [`TenantSpec`] and [`OverloadPolicy`].
    pub tenants: Vec<TenantSpec>,
    /// Test-only fault-injection hook passed to every GNN worker; `None` in
    /// production.  See [`GnnFaultHook`].
    pub gnn_fault: Option<GnnFaultHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 200,
            batch_deadline: Duration::from_millis(50),
            admission_capacity: 1024,
            stage_capacity: 4,
            results_capacity: 256,
            num_shards: 4,
            gnn_workers: 1,
            tenants: Vec::new(),
            gnn_fault: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_batch", &self.max_batch)
            .field("batch_deadline", &self.batch_deadline)
            .field("admission_capacity", &self.admission_capacity)
            .field("stage_capacity", &self.stage_capacity)
            .field("results_capacity", &self.results_capacity)
            .field("num_shards", &self.num_shards)
            .field("gnn_workers", &self.gnn_workers)
            .field("tenants", &self.tenants)
            .field("gnn_fault", &self.gnn_fault.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// Latency percentiles over a set of measurements (micro-batch
/// seal-to-embeddings, or per-tenant admission-to-completion), in
/// milliseconds.  Percentiles use nearest-rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// 50th percentile (median).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest observed value.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_latencies(latencies: &[Duration]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut ms: Vec<f64> = latencies.iter().map(|l| l.as_secs_f64() * 1e3).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = ms.len();
        // Nearest-rank percentile.
        let pick = |q: f64| ms[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        Self {
            mean_ms: ms.iter().sum::<f64>() / n as f64,
            p50_ms: pick(0.50),
            p95_ms: pick(0.95),
            p99_ms: pick(0.99),
            max_ms: ms[n - 1],
        }
    }
}

/// Per-tenant slice of the serve report: admission counters, completion
/// counters, and the admission-to-completion latency distribution — the
/// client-visible delay the tenant's overload policy bounds.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Display name from the tenant's [`TenantSpec`].
    pub name: String,
    /// Weighted-fair share the scheduler honoured.
    pub weight: u32,
    /// Overload policy the tenant ran with.
    pub policy: OverloadPolicy,
    /// Admission-side counters (submitted / admitted / drops by kind /
    /// blocked submits / max ingress depth), snapshotted whole from the
    /// admission layer — see [`AdmissionCounters`] for each field's
    /// contract.
    pub counters: AdmissionCounters,
    /// Events whose results were delivered (admitted minus still in flight).
    pub served: u64,
    /// Served events graded [`Disposition::Late`](tgnn_core::tenancy::Disposition).
    pub late: u64,
    /// Admission-to-completion latency distribution of the served events.
    pub latency: LatencySummary,
    /// Served events per second over the session's `total_time`.
    pub throughput_eps: f64,
}

impl TenantStats {
    /// Total events this tenant lost to its drop policy.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped()
    }

    /// Fraction of submitted events that were dropped (0 when nothing was
    /// submitted).
    pub fn drop_rate(&self) -> f64 {
        if self.counters.submitted == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.counters.submitted as f64
        }
    }
}

/// Aggregate report of a serve session — throughput, tail latency, queue
/// occupancy (the backpressure picture), per-tenant admission statistics,
/// and state-consistency counters.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Events pushed through the pipeline.
    pub num_events: usize,
    /// Micro-batches served.
    pub num_batches: usize,
    /// Dynamic node embeddings produced.
    pub num_embeddings: usize,
    /// First submit → last completed batch.
    pub total_time: Duration,
    /// Events per second over `total_time`.
    pub throughput_eps: f64,
    /// Seal-to-embeddings latency distribution.
    pub latency: LatencySummary,
    /// Per-queue occupancy statistics, the scheduler→batcher queue first.
    pub queues: Vec<QueueStats>,
    /// Blocked `send`s on the inter-stage queues plus blocked `submit_for`
    /// calls on full tenant ingress queues — the client-visible
    /// backpressure count.
    pub backpressure_blocks: u64,
    /// Per-tenant admission/completion statistics, indexed by
    /// [`TenantId::index`].  Single-tenant sessions have one "default" row.
    pub tenants: Vec<TenantStats>,
    /// Vertex-state commits recorded.
    pub commits: usize,
    /// True when no chronological-order violation was observed — the
    /// pipeline analogue of `InferenceEngine::commit_log().is_clean()`.
    pub commit_log_clean: bool,
    /// Shard count the session ran with.
    pub num_shards: usize,
    /// Data-parallel GNN worker count the session ran with.
    pub gnn_workers: usize,
}

/// Why a `submit` was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubmitError {
    /// The event's timestamp precedes an already submitted event of the
    /// same tenant (each tenant's stream must be chronological; different
    /// tenants' streams are ordered independently).
    OutOfOrder {
        /// Latest timestamp the tenant has already submitted.
        previous: Timestamp,
        /// The offending event's timestamp.
        submitted: Timestamp,
    },
    /// The tenant id is not in the server's tenant table.
    UnknownTenant(TenantId),
    /// The server has been drained (or a worker died).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::OutOfOrder {
                previous,
                submitted,
            } => write!(
                f,
                "event at t={submitted} submitted after t={previous}: each tenant's stream must be chronological"
            ),
            SubmitError::UnknownTenant(t) => {
                write!(f, "{t} is not in the server's tenant table")
            }
            SubmitError::Closed => write!(f, "server is drained or its pipeline has shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A continuously running, pipelined TGN inference server.
///
/// Feed chronological [`InteractionEvent`]s with [`Self::submit`] (or
/// [`Self::submit_for`] on a multi-tenant configuration); the admission
/// layer queues them per tenant, the weighted-fair scheduler drains tenants
/// into the micro-batcher, and the stage workers stream sealed batches
/// through sample → memory → {update, GNN}.  Completed batches come back
/// via [`Self::poll`]; [`Self::drain`] flushes everything and returns the
/// [`ServeReport`].
pub struct StreamServer {
    admission: Arc<AdmissionControl>,
    results_rx: Receiver<ServedBatch>,
    completed: VecDeque<ServedBatch>,
    workers: Vec<JoinHandle<()>>,
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
    model: Arc<TgnModel>,
    graph: Arc<TemporalGraph>,
    commit_log: Arc<Mutex<CommitLog>>,
    collector: Arc<Collector>,
    next_epoch: Arc<AtomicU64>,
    queue_stats: Vec<Box<dyn Fn() -> QueueStats + Send>>,
    /// Latest timestamp absorbed by `warm_up` — the floor every tenant's
    /// stream starts from.
    warm_timestamp: Timestamp,
    submitted: usize,
    num_shards: usize,
    gnn_workers: usize,
}

impl StreamServer {
    /// Builds the sharded state and spawns the pipeline workers: the
    /// admission scheduler, batcher, sampler, memory, update, `gnn_workers`
    /// GNN compute workers sharing one dispatch queue, and the reorder
    /// worker that restores epoch order.
    ///
    /// # Panics
    /// Panics if `config.gnn_workers == 0`, or if a configured tenant has a
    /// zero weight or ingress capacity.
    pub fn new(model: TgnModel, graph: Arc<TemporalGraph>, config: ServeConfig) -> Self {
        assert!(
            config.gnn_workers > 0,
            "StreamServer: need at least one GNN worker"
        );
        let num_nodes = graph.num_nodes();
        let num_shards = config.num_shards;
        let gnn_workers = config.gnn_workers;
        let tenants = if config.tenants.is_empty() {
            vec![TenantSpec::new("default").with_capacity(config.admission_capacity)]
        } else {
            config.tenants.clone()
        };
        let num_tenants = tenants.len();
        let admission = Arc::new(AdmissionControl::new(tenants));
        let model = Arc::new(model);
        let memory = Arc::new(ShardedMemory::for_config(
            num_nodes,
            &model.config,
            num_shards,
        ));
        let table = Arc::new(ShardedNeighborTable::new(
            num_nodes,
            model.config.sampled_neighbors,
            num_shards,
        ));
        let commit_log = Arc::new(Mutex::new(CommitLog::new()));
        let collector = Arc::new(Collector::new(num_tenants));
        let next_epoch = Arc::new(AtomicU64::new(0));

        let (submit_tx, submit_rx) =
            channel::<AdmittedEvent>("scheduler→batcher", config.admission_capacity);
        let (sealed_tx, sealed_rx) =
            channel::<SealedBatch>("batcher→sampler", config.stage_capacity);
        let (sampled_tx, sampled_rx) =
            channel::<SampledJob>("sampler→memory", config.stage_capacity);
        let (update_tx, update_rx) = channel::<UpdateJob>("memory→update", config.stage_capacity);
        let (header_tx, header_rx) =
            channel::<GnnBatchHeader>("memory→reorder", config.stage_capacity);
        // The dispatch/result queues carry per-part items (up to gnn_workers
        // per batch), so they scale with the pool size to keep the same
        // number of batches in flight as the other stage queues.
        let (gnn_tx, gnn_rx) =
            mpmc_channel::<GnnSubJob>("memory→gnn", config.stage_capacity * gnn_workers);
        let (parts_tx, parts_rx) =
            mpmc_channel::<GnnSubResult>("gnn→reorder", config.stage_capacity * gnn_workers);
        let (results_tx, results_rx) =
            channel::<ServedBatch>("reorder→results", config.results_capacity);

        let queue_stats: Vec<Box<dyn Fn() -> QueueStats + Send>> = vec![
            {
                let m = submit_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = sealed_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = sampled_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = update_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = header_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = gnn_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = parts_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = results_tx.monitor();
                Box::new(move || m.stats())
            },
        ];

        let mut workers = Vec::with_capacity(6 + gnn_workers);
        {
            let admission = admission.clone();
            workers.push(spawn("tgnn-serve-scheduler", move || {
                scheduler_loop(admission, submit_tx)
            }));
        }
        {
            let next_epoch = next_epoch.clone();
            let (max_batch, deadline) = (config.max_batch, config.batch_deadline);
            workers.push(spawn("tgnn-serve-batcher", move || {
                batcher_loop(submit_rx, sealed_tx, max_batch, deadline, next_epoch)
            }));
        }
        {
            let table = table.clone();
            let k = model.config.sampled_neighbors;
            workers.push(spawn("tgnn-serve-sampler", move || {
                sampler_loop(sealed_rx, sampled_tx, table, k)
            }));
        }
        {
            let (memory, model, graph) = (memory.clone(), model.clone(), graph.clone());
            workers.push(spawn("tgnn-serve-memory", move || {
                memory_loop(
                    sampled_rx,
                    update_tx,
                    header_tx,
                    gnn_tx,
                    gnn_workers,
                    memory,
                    model,
                    graph,
                )
            }));
        }
        {
            let (memory, table, log) = (memory.clone(), table.clone(), commit_log.clone());
            workers.push(spawn("tgnn-serve-update", move || {
                update_loop(update_rx, memory, table, log)
            }));
        }
        for i in 0..gnn_workers {
            let rx = gnn_rx.clone();
            let tx = parts_tx.clone();
            let (model, memory, table) = (model.clone(), memory.clone(), table.clone());
            let fault = config.gnn_fault.clone();
            workers.push(spawn(&format!("tgnn-serve-gnn-{i}"), move || {
                gnn_worker_loop(rx, tx, model, fault, memory, table)
            }));
        }
        // The originals were cloned into the pool; drop them so the dispatch
        // and result channels close exactly when the last worker exits.
        drop(gnn_rx);
        drop(parts_tx);
        {
            let collector = collector.clone();
            workers.push(spawn("tgnn-serve-reorder", move || {
                reorder_loop(header_rx, parts_rx, results_tx, collector)
            }));
        }

        Self {
            admission,
            results_rx,
            completed: VecDeque::new(),
            workers,
            memory,
            table,
            model,
            graph,
            commit_log,
            collector,
            next_epoch,
            queue_stats,
            warm_timestamp: Timestamp::NEG_INFINITY,
            submitted: 0,
            num_shards,
            gnn_workers,
        }
    }

    /// Replays a chronological event prefix through the sharded state
    /// (memory via the GRU, mailbox, neighbor table) without computing
    /// embeddings — the pipeline analogue of `InferenceEngine::warm_up`,
    /// bit-identical to it.
    ///
    /// # Panics
    /// Panics if events have already been submitted.
    pub fn warm_up(&mut self, events: &[InteractionEvent]) {
        assert_eq!(self.submitted, 0, "warm_up must run before any submissions");
        let mut ws = Workspace::new();
        for chunk in events.chunks(256) {
            let epoch = self.next_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let batch = EventBatch::new(chunk.to_vec());
            // k = 0: we only need touched vertices and query times.
            let sampled = SampledBatch::assemble(batch, 0, |_, _, _, _| {});
            let updated = crate::pipeline::run_sharded_memory_stage(
                &sampled,
                &self.memory,
                &self.model,
                &self.graph,
                &mut ws,
            );
            let writes = crate::pipeline::writes_from(updated, &sampled);
            {
                let mut log = self.commit_log.lock().unwrap();
                for (v, _, t) in &writes {
                    log.commit(*v, *t);
                }
            }
            self.memory.commit_epoch(epoch, &writes);
            self.table.commit_epoch(epoch, chunk);
            if let Some(t) = sampled.batch.end_time() {
                self.warm_timestamp = t;
            }
        }
        self.admission.set_timestamp_floor(self.warm_timestamp);
    }

    /// Feeds one event into the default tenant's ingress queue (the
    /// single-tenant path).  Blocks while the pipeline is backpressured
    /// (ingress queue full under the default `Block` policy); the block
    /// count is visible in the report's tenant statistics.
    pub fn submit(&mut self, event: InteractionEvent) -> Result<(), SubmitError> {
        self.submit_for(TenantId::DEFAULT, event).map(|_| ())
    }

    /// Feeds one event into `tenant`'s ingress queue, applying the tenant's
    /// [`OverloadPolicy`] if the queue is full: `Block`/`Late` block the
    /// caller (backpressure), `DropNewest` returns
    /// [`SubmitOutcome::Dropped`], `DropOldest` evicts the queue head and
    /// admits this event.  Each tenant's stream must be chronological;
    /// different tenants are ordered independently.
    pub fn submit_for(
        &mut self,
        tenant: TenantId,
        event: InteractionEvent,
    ) -> Result<SubmitOutcome, SubmitError> {
        if self.submitted == 0 {
            *self.collector.first_submit.lock().unwrap() = Some(Instant::now());
        }
        let outcome = self.admission.submit(tenant, event)?;
        self.submitted += 1;
        Ok(outcome)
    }

    /// Pops the next completed micro-batch, if any (non-blocking).  Batches
    /// come back in submission (epoch) order.
    pub fn poll(&mut self) -> Option<ServedBatch> {
        if let Some(b) = self.completed.pop_front() {
            return Some(b);
        }
        self.results_rx.try_recv()
    }

    /// Closes admission, flushes every in-flight event through the pipeline
    /// — including everything still queued in tenant ingress queues (drain
    /// never drops an admitted event) — joins the workers, and returns the
    /// aggregate report.  Completed batches (including those that finish
    /// during the flush) remain available via [`Self::poll`].
    ///
    /// # Panics
    /// Propagates a worker panic (e.g. an epoch-order violation).
    pub fn drain(&mut self) -> ServeReport {
        // Close admission: the scheduler drains the remaining tenant queues
        // and exits, and the shutdown ripples down the stages.
        self.admission.close();
        loop {
            while let Some(b) = self.results_rx.try_recv() {
                self.completed.push_back(b);
            }
            if self.workers.iter().all(|w| w.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        while let Some(b) = self.results_rx.try_recv() {
            self.completed.push_back(b);
        }
        for w in self.workers.drain(..) {
            if let Err(panic) = w.join() {
                std::panic::resume_unwind(panic);
            }
        }
        self.report()
    }

    /// The aggregate report so far (cheap; callable live or after `drain`).
    pub fn report(&self) -> ServeReport {
        let latencies = self.collector.latencies.lock().unwrap().clone();
        let first = *self.collector.first_submit.lock().unwrap();
        let last = *self.collector.last_complete.lock().unwrap();
        let total_time = match (first, last) {
            (Some(a), Some(b)) => b.saturating_duration_since(a),
            _ => Duration::ZERO,
        };
        let num_events = self.collector.events.load(Ordering::Relaxed);
        let queues: Vec<QueueStats> = self.queue_stats.iter().map(|s| s()).collect();
        let tenants: Vec<TenantStats> = (0..self.admission.num_tenants())
            .map(|i| {
                let (spec, counters) = self.admission.tenant_snapshot(i);
                let tc = &self.collector.tenants[i];
                let latencies = tc.latencies.lock().unwrap();
                let served = tc.served.load(Ordering::Relaxed);
                TenantStats {
                    name: spec.name,
                    weight: spec.weight,
                    policy: spec.policy,
                    counters,
                    served,
                    late: tc.late.load(Ordering::Relaxed),
                    latency: LatencySummary::from_latencies(&latencies),
                    throughput_eps: if total_time.is_zero() {
                        0.0
                    } else {
                        served as f64 / total_time.as_secs_f64()
                    },
                }
            })
            .collect();
        let backpressure_blocks = queues.iter().map(|q| q.blocked_sends).sum::<u64>()
            + tenants
                .iter()
                .map(|t| t.counters.blocked_submits)
                .sum::<u64>();
        let log = self.commit_log.lock().unwrap();
        ServeReport {
            num_events,
            num_batches: self.collector.batches.load(Ordering::Relaxed),
            num_embeddings: self.collector.embeddings.load(Ordering::Relaxed),
            total_time,
            throughput_eps: if total_time.is_zero() {
                0.0
            } else {
                num_events as f64 / total_time.as_secs_f64()
            },
            latency: LatencySummary::from_latencies(&latencies),
            queues,
            backpressure_blocks,
            tenants,
            commits: log.commits(),
            commit_log_clean: log.is_clean(),
            num_shards: self.num_shards,
            gnn_workers: self.gnn_workers,
        }
    }

    /// Read access to the sharded memory (diagnostics, tests).
    pub fn memory(&self) -> &ShardedMemory {
        &self.memory
    }

    /// Read access to the sharded neighbor table (diagnostics, tests).
    pub fn neighbor_table(&self) -> &ShardedNeighborTable {
        &self.table
    }

    /// Number of events submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.admission.close();
        // Detach rather than join: receivers close as queue senders drop, so
        // the workers exit on their own; joining here could block a panicking
        // caller.  `drain` is the orderly shutdown path.
        for w in self.workers.drain(..) {
            drop(w);
        }
    }
}

fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("failed to spawn pipeline worker")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_nearest_rank() {
        let lats: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::from_latencies(&lats);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }
}
