//! The streaming inference server: admission, worker lifecycle, and the
//! backpressure-aware serve report.

use crate::admission::{
    scheduler_loop, AdmissionControl, AdmissionCounters, AdmittedEvent, StaleServing,
    SubmitOutcome, TenantSpec,
};
use crate::cache::{CacheConfig, CacheStats, EmbeddingCache};
use crate::durability::{Durability, DurabilityStats, RecoveryReport};
use crate::metrics::{HubConfig, MetricsHub, MetricsSnapshot, StageId};
use crate::pipeline::{
    batcher_loop, gnn_worker_loop, memory_loop, reorder_loop, sampler_loop, update_loop, Collector,
    GnnBatchHeader, GnnFaultHook, GnnSubJob, GnnSubResult, SampledJob, SealedBatch, ServedBatch,
    UpdateJob,
};
use crate::queue::{channel, mpmc_channel, MpmcReceiver, MpmcSender, QueueStats, Receiver};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tgnn_core::profiling::StageTimings;
use tgnn_core::stages::{GnnJobBatch, SampledBatch};
use tgnn_core::tenancy::{Disposition, OverloadPolicy, ResultMeta, TenantId};
use tgnn_core::{
    BackendKind, ComputeBackend, F32Backend, Int8Backend, ShardedMemory, TgnModel,
    NUM_BACKEND_KINDS,
};
use tgnn_durable::{
    list_snapshots, load_snapshot, plan_recovery, read_wal, repair_torn_tail, DurabilityConfig,
    DurableError,
};
use tgnn_graph::chronology::CommitLog;
use tgnn_graph::{EventBatch, InteractionEvent, ShardedNeighborTable, TemporalGraph, Timestamp};
use tgnn_hwsim::{DdrModel, DesignConfig, HwSimBackend};
use tgnn_tensor::Workspace;

/// Tuning knobs of the streaming pipeline.
#[derive(Clone)]
pub struct ServeConfig {
    /// Seal a micro-batch once this many events are pending.
    pub max_batch: usize,
    /// …or once the oldest pending event is this old.
    pub batch_deadline: Duration,
    /// Capacity of the scheduler→batcher handoff queue (events), and the
    /// ingress bound of the implicit default tenant when `tenants` is
    /// empty.  Backpressure starts here: with the default `Block` policy,
    /// `submit` blocks once the ingress queue fills behind a full handoff
    /// queue.
    pub admission_capacity: usize,
    /// Capacity of each inter-stage queue (micro-batches in flight).
    pub stage_capacity: usize,
    /// Capacity of the results queue (completed batches awaiting `poll`).
    pub results_capacity: usize,
    /// Number of vertex shards for the neighbor table and the memory table.
    pub num_shards: usize,
    /// Number of data-parallel GNN compute workers.  Each batch's GNN job is
    /// split into up to this many sub-jobs served from one shared dispatch
    /// queue; the reorder stage keeps the output stream in epoch order and
    /// bit-identical to `ExecMode::Serial` for every worker count.
    pub gnn_workers: usize,
    /// Tenant table of the admission layer.  Empty (the default) means a
    /// single implicit [`TenantId::DEFAULT`] tenant with `Block` policy and
    /// an `admission_capacity`-event ingress queue: served results are
    /// bit-identical to the pre-admission-layer server, and `submit` still
    /// blocks rather than drop — though the buffering ahead of the batcher
    /// is now the ingress queue *plus* the scheduler→batcher queue (each
    /// `admission_capacity` deep), so the blocking point sits up to one
    /// queue later than it used to.  With more than one entry, `submit_for`
    /// routes each event to its tenant's bounded ingress queue and the
    /// weighted-fair scheduler drains them into the micro-batcher; see
    /// [`TenantSpec`] and [`OverloadPolicy`].
    pub tenants: Vec<TenantSpec>,
    /// Bounded-staleness embedding cache keyed on `(vertex, epoch)`,
    /// populated with every served embedding and invalidated at the epoch
    /// barrier — the backing store of
    /// [`OverloadPolicy::ServeStale`](tgnn_core::tenancy::OverloadPolicy).
    /// `None` (the default) builds no cache *unless* some tenant runs
    /// `ServeStale`, in which case [`CacheConfig::default`] is used; set it
    /// explicitly to size the capacity/staleness bound, or to enable the
    /// cache (and its hit/miss metrics) without the policy.
    pub cache: Option<CacheConfig>,
    /// Test-only fault-injection hook passed to every GNN worker; `None` in
    /// production.  See [`GnnFaultHook`].
    pub gnn_fault: Option<GnnFaultHook>,
    /// Opt-in durability: write-ahead log of admission outcomes plus
    /// checksummed snapshots at epoch barriers, enabling
    /// [`StreamServer::recover`] to resume bit-identically after a crash.
    /// `None` (the default) performs no logging, no snapshots, and no I/O
    /// on any hot path, and single-tenant served results are bit-for-bit
    /// the pre-durability server's.  One behaviour is shared by both
    /// settings: the batcher restores chronological order *inside* each
    /// multi-tenant sealed batch (stable sort, so per-tenant order is
    /// preserved), because the engine consumes every batch as a
    /// chronological stream — the weighted-fair cross-tenant interleave
    /// alone does not guarantee that, durable or not.
    pub durability: Option<DurabilityConfig>,
    /// Whether the pipeline records live metrics and flight-recorder spans
    /// (`true` by default — the recording cost is a couple of relaxed
    /// atomics per stage per batch, ≤ 2 % of `serve_bench` throughput;
    /// `serve_bench --no-metrics` measures the difference).  With `false`,
    /// [`StreamServer::metrics`] still answers (queue depths and tenant
    /// counters are maintained regardless) but stage spans, latency
    /// histograms, and the flight recorder stay empty.
    pub metrics: bool,
    /// Capacity of the flight recorder ring, in events.  Each epoch
    /// generates roughly `2 × (6 + gnn_workers)` events, so the default
    /// 4096 keeps a few hundred epochs of timeline for post-mortems.
    pub flight_capacity: usize,
    /// 1-in-N sampling for per-event observability: the admission
    /// scheduler's flight-ring spans (its unit of work is one burst, not
    /// one epoch) and the causal-trace head-sample retention both keep
    /// every N-th item.  `1` records everything; clamped to at least 1.
    /// The default 64 keeps the scheduler's ring traffic from evicting the
    /// per-epoch timeline.
    pub metrics_sampling: u64,
    /// Declared service-level objectives evaluated over burn-rate windows
    /// ([`SloConfig`](crate::SloConfig)); their status rides every
    /// [`MetricsSnapshot`].  `None` (the default)
    /// runs no SLO engine.  SLO accounting is independent of `metrics` —
    /// the engine is a handful of relaxed atomics per submit/delivery.
    pub slo: Option<crate::metrics::SloConfig>,
    /// Design point of the hwsim-modeled FPGA backend, used whenever some
    /// tenant routes to [`BackendKind::HwSim`] (see [`TenantSpec::backend`]).
    /// `None` (the default) models the paper's Alveo U200 design over its
    /// measured 77 GB/s DDR bandwidth; set it to time simulated tenants on a
    /// different configuration (e.g. an int8 datapath).  Ignored when no
    /// tenant asks for `hwsim`.
    pub hwsim_design: Option<DesignConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 200,
            batch_deadline: Duration::from_millis(50),
            admission_capacity: 1024,
            stage_capacity: 4,
            results_capacity: 256,
            num_shards: 4,
            gnn_workers: 1,
            tenants: Vec::new(),
            cache: None,
            gnn_fault: None,
            durability: None,
            metrics: true,
            flight_capacity: 4096,
            metrics_sampling: 64,
            slo: None,
            hwsim_design: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_batch", &self.max_batch)
            .field("batch_deadline", &self.batch_deadline)
            .field("admission_capacity", &self.admission_capacity)
            .field("stage_capacity", &self.stage_capacity)
            .field("results_capacity", &self.results_capacity)
            .field("num_shards", &self.num_shards)
            .field("gnn_workers", &self.gnn_workers)
            .field("tenants", &self.tenants)
            .field("cache", &self.cache)
            .field("gnn_fault", &self.gnn_fault.as_ref().map(|_| "<hook>"))
            .field("durability", &self.durability)
            .field("metrics", &self.metrics)
            .field("flight_capacity", &self.flight_capacity)
            .field("metrics_sampling", &self.metrics_sampling)
            .field("slo", &self.slo)
            .field("hwsim_design", &self.hwsim_design)
            .finish()
    }
}

/// Latency percentiles over a set of measurements (micro-batch
/// seal-to-embeddings, or per-tenant admission-to-completion), in
/// milliseconds.  Percentiles use nearest-rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// 50th percentile (median).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest observed value.
    pub max_ms: f64,
}

impl LatencySummary {
    pub(crate) fn from_latencies(latencies: &[Duration]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut ms: Vec<f64> = latencies.iter().map(|l| l.as_secs_f64() * 1e3).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = ms.len();
        // Nearest-rank percentile.
        let pick = |q: f64| ms[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        Self {
            mean_ms: ms.iter().sum::<f64>() / n as f64,
            p50_ms: pick(0.50),
            p95_ms: pick(0.95),
            p99_ms: pick(0.99),
            max_ms: ms[n - 1],
        }
    }
}

/// Per-tenant slice of the serve report: admission counters, completion
/// counters, and the admission-to-completion latency distribution — the
/// client-visible delay the tenant's overload policy bounds.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Display name from the tenant's [`TenantSpec`].
    pub name: String,
    /// Weighted-fair share the scheduler honoured.
    pub weight: u32,
    /// Overload policy the tenant ran with.
    pub policy: OverloadPolicy,
    /// Compute backend the tenant's batches were routed to — the resolved
    /// value of [`TenantSpec::backend`] (every spec is resolved at build
    /// time, so undeclared tenants show the server's passthrough kind).
    pub backend: BackendKind,
    /// Admission-side counters (submitted / admitted / drops by kind /
    /// blocked submits / max ingress depth), snapshotted whole from the
    /// admission layer — see [`AdmissionCounters`] for each field's
    /// contract.
    pub counters: AdmissionCounters,
    /// Events whose results were delivered (admitted minus still in flight,
    /// plus cache-served stale answers).
    pub served: u64,
    /// Served events graded [`Disposition::Late`](tgnn_core::tenancy::Disposition).
    pub late: u64,
    /// Served events answered from the embedding cache
    /// ([`Disposition::Stale`](tgnn_core::tenancy::Disposition)) — a subset
    /// of `served`, excluded from `latency` (they bypass the pipeline).
    pub served_stale: u64,
    /// Admission-to-completion latency distribution of the pipeline-served
    /// events (stale answers excluded).
    pub latency: LatencySummary,
    /// Served events per second over the session's `total_time`.
    pub throughput_eps: f64,
}

impl TenantStats {
    /// Total events this tenant lost to its drop policy.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped()
    }

    /// Fraction of submitted events that were dropped (0 when nothing was
    /// submitted).
    pub fn drop_rate(&self) -> f64 {
        if self.counters.submitted == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.counters.submitted as f64
        }
    }
}

/// Per-backend slice of the serve report: how many pipeline-served batches
/// each prepared compute backend answered and, for modeled backends
/// (hwsim), the distribution of modeled service latencies.  Stale cache
/// answers are served by the cache, not a backend, and are excluded.
#[derive(Clone, Debug)]
pub struct BackendStats {
    /// Which datapath this row describes.
    pub kind: BackendKind,
    /// Pipeline-served micro-batches this backend computed.
    pub served_batches: u64,
    /// Events inside those batches.
    pub served_events: u64,
    /// Modeled service-latency distribution (one sample per served batch,
    /// the max across the batch's sub-jobs); `None` for backends that
    /// really execute where they are measured (f32, int8).
    pub modeled_latency: Option<LatencySummary>,
}

/// Nearest-rank percentiles over the ages (in epoch barriers) of the
/// session's cache-served stale answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaleAgeSummary {
    /// Number of stale answers the distribution covers.
    pub count: u64,
    /// Median age.
    pub p50: u64,
    /// 95th-percentile age.
    pub p95: u64,
    /// 99th-percentile age.
    pub p99: u64,
    /// Oldest answer served.  Never exceeds the configured staleness bound
    /// (property-tested in `tests/cache.rs`).
    pub max: u64,
}

impl StaleAgeSummary {
    pub(crate) fn from_ages(ages: &[u64]) -> Self {
        if ages.is_empty() {
            return Self::default();
        }
        let mut sorted = ages.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let pick = |q: f64| sorted[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        Self {
            count: n as u64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: sorted[n - 1],
        }
    }
}

/// Embedding-cache slice of the serve report: raw counters, the derived hit
/// rate, the staleness bound the session ran with, and the stale-age
/// distribution of every cache-served answer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheReport {
    /// Raw cache counters (hits, misses, insertions, evictions, expiry
    /// sweeps, stale serves, entries, watermark).
    pub stats: CacheStats,
    /// `hits / (hits + misses)` over the session.
    pub hit_rate: f64,
    /// Configured staleness bound in epochs.
    pub staleness_bound_epochs: u64,
    /// Age distribution of the stale answers actually served.
    pub stale_age: StaleAgeSummary,
}

/// Aggregate report of a serve session — throughput, tail latency, queue
/// occupancy (the backpressure picture), per-tenant admission statistics,
/// and state-consistency counters.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Events pushed through the pipeline.
    pub num_events: usize,
    /// Micro-batches served.
    pub num_batches: usize,
    /// Dynamic node embeddings produced.
    pub num_embeddings: usize,
    /// First submit → last completed batch.
    pub total_time: Duration,
    /// Events per second over `total_time`.
    pub throughput_eps: f64,
    /// Seal-to-embeddings latency distribution.
    pub latency: LatencySummary,
    /// Per-queue occupancy statistics, the scheduler→batcher queue first.
    pub queues: Vec<QueueStats>,
    /// Blocked `send`s on the inter-stage queues plus blocked `submit_for`
    /// calls on full tenant ingress queues — the client-visible
    /// backpressure count.
    pub backpressure_blocks: u64,
    /// Per-tenant admission/completion statistics, indexed by
    /// [`TenantId::index`].  Single-tenant sessions have one "default" row.
    pub tenants: Vec<TenantStats>,
    /// Per-backend serving statistics, one row per prepared compute backend
    /// (in [`BackendKind::code`] order).  A passthrough session has exactly
    /// one row.
    pub backends: Vec<BackendStats>,
    /// Vertex-state commits recorded.
    pub commits: usize,
    /// True when no chronological-order violation was observed — the
    /// pipeline analogue of `InferenceEngine::commit_log().is_clean()`.
    pub commit_log_clean: bool,
    /// Shard count the session ran with.
    pub num_shards: usize,
    /// Data-parallel GNN worker count the session ran with.
    pub gnn_workers: usize,
    /// WAL/snapshot counters when the session ran with
    /// [`ServeConfig::durability`]; `None` on the legacy path.
    pub durability: Option<DurabilityStats>,
    /// Embedding-cache counters when the session ran with a cache
    /// ([`ServeConfig::cache`] or any `ServeStale` tenant); `None` otherwise.
    pub cache: Option<CacheReport>,
    /// Per-stage busy-time breakdown (sample / memory / GNN / update) from
    /// the worker span counters — the serve-path counterpart of the batch
    /// engine's Table-I-shaped `core::profiling` report.  All zeros when
    /// [`ServeConfig::metrics`] is off.
    pub stage_timings: StageTimings,
}

/// Why a `submit` was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubmitError {
    /// The event's timestamp precedes an already submitted event of the
    /// same tenant (each tenant's stream must be chronological; different
    /// tenants' streams are ordered independently).
    OutOfOrder {
        /// Latest timestamp the tenant has already submitted.
        previous: Timestamp,
        /// The offending event's timestamp.
        submitted: Timestamp,
    },
    /// The tenant id is not in the server's tenant table.
    UnknownTenant(TenantId),
    /// The server has been drained (or a worker died).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::OutOfOrder {
                previous,
                submitted,
            } => write!(
                f,
                "event at t={submitted} submitted after t={previous}: each tenant's stream must be chronological"
            ),
            SubmitError::UnknownTenant(t) => {
                write!(f, "{t} is not in the server's tenant table")
            }
            SubmitError::Closed => write!(f, "server is drained or its pipeline has shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A continuously running, pipelined TGN inference server.
///
/// Feed chronological [`InteractionEvent`]s with [`Self::submit`] (or
/// [`Self::submit_for`] on a multi-tenant configuration); the admission
/// layer queues them per tenant, the weighted-fair scheduler drains tenants
/// into the micro-batcher, and the stage workers stream sealed batches
/// through sample → memory → {update, GNN}.  Completed batches come back
/// via [`Self::poll`]; [`Self::drain`] flushes everything and returns the
/// [`ServeReport`].
pub struct StreamServer {
    admission: Arc<AdmissionControl>,
    results_rx: Receiver<ServedBatch>,
    completed: VecDeque<ServedBatch>,
    workers: Vec<JoinHandle<()>>,
    /// The seal group-commit syncer (`OnSeal` policy only).  Kept out of
    /// `workers`: it exits on an explicit shutdown signal, not on queue
    /// closure, so the drain loop must not wait for it with the pipeline.
    wal_sync: Option<JoinHandle<()>>,
    /// The bounded-staleness embedding cache, when configured (explicitly
    /// or via a `ServeStale` tenant).
    cache: Option<Arc<EmbeddingCache>>,
    /// Stale batches the admission layer synthesized from the cache,
    /// drained by `poll` ahead of pipeline results.
    stale_out: Option<Arc<Mutex<VecDeque<ServedBatch>>>>,
    memory: Arc<ShardedMemory>,
    table: Arc<ShardedNeighborTable>,
    /// The shared stage model: sampling/memory/update run on it, and it is
    /// the single state trajectory every backend serves from.  Passthrough
    /// sessions keep the base model as-is (including an attached int8
    /// weight set); heterogeneous sessions pin it to f32.
    model: Arc<TgnModel>,
    /// Prepared compute backends, indexed by [`BackendKind::code`]; `None`
    /// for kinds no tenant routes to.  Recovery replays sealed epochs
    /// through these — the same per-tenant routing the live pipeline runs.
    backends: Vec<Option<Arc<dyn ComputeBackend>>>,
    /// Resolved backend kind per tenant index — what `build` wrote back
    /// into the tenant specs before admission started.
    tenant_backends: Vec<BackendKind>,
    graph: Arc<TemporalGraph>,
    commit_log: Arc<Mutex<CommitLog>>,
    collector: Arc<Collector>,
    next_epoch: Arc<AtomicU64>,
    hub: MetricsHub,
    /// Latest timestamp absorbed by `warm_up` — the floor every tenant's
    /// stream starts from.
    warm_timestamp: Timestamp,
    submitted: usize,
    num_shards: usize,
    gnn_workers: usize,
    durability: Option<Arc<Durability>>,
    /// SLO recording handle: `poll` grades every pipeline delivery against
    /// the latency objective (a no-op without `ServeConfig::slo`).
    slo: crate::metrics::SloHandle,
    /// Set while `poll` is blocked on the WAL group-commit watermark:
    /// `(epoch, first observed blocked)` — what the causal trace's
    /// `WalSyncWait` segment measures at delivery.
    wal_block_since: Option<(u64, Instant)>,
}

impl StreamServer {
    /// Builds the sharded state and spawns the pipeline workers: the
    /// admission scheduler, batcher, sampler, memory, update, `gnn_workers`
    /// GNN compute workers sharing one dispatch queue, and the reorder
    /// worker that restores epoch order.
    ///
    /// # Panics
    /// Panics if `config.gnn_workers == 0`, if a configured tenant has a
    /// zero weight or ingress capacity, or if `config.durability` points at
    /// a directory that already contains WAL segments — a prior durable
    /// session ended there, and silently appending to its log would corrupt
    /// the seal sequence; call [`Self::recover`] instead.
    pub fn new(model: TgnModel, graph: Arc<TemporalGraph>, config: ServeConfig) -> Self {
        if let Some(dcfg) = &config.durability {
            assert!(
                !has_wal_segments(&dcfg.dir),
                "StreamServer::new: durability dir {} holds an existing WAL — \
                 use StreamServer::recover to resume it",
                dcfg.dir.display()
            );
        }
        Self::build(model, graph, config, 0)
    }

    /// [`Self::new`] with the WAL continuation point chosen by the caller
    /// (`wal_last_seq = 0` for a fresh log; recovery passes the scanned
    /// last segment so the new log never appends to a possibly-repaired
    /// tail).
    fn build(
        model: TgnModel,
        graph: Arc<TemporalGraph>,
        config: ServeConfig,
        wal_last_seq: u64,
    ) -> Self {
        assert!(
            config.gnn_workers > 0,
            "StreamServer: need at least one GNN worker"
        );
        let num_nodes = graph.num_nodes();
        let num_shards = config.num_shards;
        let gnn_workers = config.gnn_workers;
        let mut tenants = if config.tenants.is_empty() {
            vec![TenantSpec::new("default").with_capacity(config.admission_capacity)]
        } else {
            config.tenants.clone()
        };
        // Resolve every tenant's compute backend up front.  With no
        // declarations the server is a single-backend passthrough — the
        // base model serves as-is (on its int8 weight set when one is
        // attached), bit-identical to the pre-backend pipeline.  Once any
        // tenant declares a backend the GNN stage goes heterogeneous, and
        // undeclared tenants resolve to the same passthrough kind they
        // would have had alone.
        let heterogeneous = tenants.iter().any(|t| t.backend.is_some());
        let passthrough_kind = if model.is_quantized() {
            BackendKind::Int8
        } else {
            BackendKind::F32
        };
        for t in &mut tenants {
            if t.backend.is_none() {
                t.backend = Some(passthrough_kind);
            }
        }
        let tenant_backends: Vec<BackendKind> =
            tenants.iter().map(|t| t.backend.unwrap()).collect();
        let num_tenants = tenants.len();
        let durability = config.durability.as_ref().map(|dcfg| {
            Arc::new(
                Durability::open(dcfg, wal_last_seq).expect("StreamServer: opening the WAL failed"),
            )
        });
        let collector = Arc::new(Collector::new(num_tenants));
        // The cache exists when configured explicitly or when any tenant
        // needs it for its overload policy.
        let cache_config = config.cache.or_else(|| {
            tenants
                .iter()
                .any(|t| t.policy == OverloadPolicy::ServeStale)
                .then(CacheConfig::default)
        });
        let cache = cache_config.map(|c| Arc::new(EmbeddingCache::new(c, num_shards)));
        let stale_out = cache
            .is_some()
            .then(|| Arc::new(Mutex::new(VecDeque::new())));
        // The SLO engine is built before both the admission layer and the
        // metrics hub so they share the same burn-rate lanes: admission
        // feeds the drop objective (and consults the burn gate when
        // `preempt_stale` is on), `poll` feeds the latency objective, and
        // the hub snapshots the verdicts.
        let slo_engine = config.slo.as_ref().map(crate::metrics::new_slo_engine);
        let slo_handle = crate::metrics::SloHandle::new(slo_engine.clone(), config.slo.as_ref());
        let burn_gate: Option<crate::admission::BurnGate> =
            config.slo.as_ref().filter(|c| c.preempt_stale).map(|_| {
                let h = slo_handle.clone();
                Arc::new(move || h.fired()) as crate::admission::BurnGate
            });
        let admission = Arc::new(
            AdmissionControl::new(tenants)
                .with_wal(durability.as_ref().map(|d| d.wal.clone()))
                .with_stale(cache.as_ref().zip(stale_out.as_ref()).map(|(cache, out)| {
                    StaleServing {
                        cache: cache.clone(),
                        out: out.clone(),
                        collector: collector.clone(),
                    }
                }))
                .with_slo(slo_handle.clone())
                .with_burn_gate(burn_gate),
        );
        let model = Arc::new(model);
        // One prepared backend per kind any tenant routes to.  `F32Backend`
        // pins a detached-f32 weight set, `Int8Backend` requires (and
        // keeps) the attached int8 set, `HwSimBackend` computes f32 and
        // models its latency on the configured design point.
        let mut backends: Vec<Option<Arc<dyn ComputeBackend>>> =
            (0..NUM_BACKEND_KINDS).map(|_| None).collect();
        for kind in tenant_backends.iter().copied() {
            if backends[kind.code()].is_some() {
                continue;
            }
            backends[kind.code()] = Some(match kind {
                BackendKind::F32 => Arc::new(F32Backend::new(&model)) as Arc<dyn ComputeBackend>,
                BackendKind::Int8 => Arc::new(Int8Backend::new(&model)),
                BackendKind::HwSim => Arc::new(HwSimBackend::new(
                    &model,
                    config
                        .hwsim_design
                        .clone()
                        .unwrap_or_else(DesignConfig::u200),
                    DdrModel::new_gbps(77.0),
                )),
            });
        }
        let num_backends = backends.iter().flatten().count();
        // The sampling/memory/update stages run once on one shared model —
        // a single temporal-state trajectory regardless of who computes
        // embeddings.  A heterogeneous session pins that model to f32
        // (quantized weights detached) so the trajectory is
        // backend-independent; a passthrough session keeps the base model
        // as-is, preserving the fully-quantized serve path bit for bit.
        let stage_model = if heterogeneous {
            let mut m = (*model).clone();
            m.detach_quantized();
            Arc::new(m)
        } else {
            model.clone()
        };
        let memory = Arc::new(ShardedMemory::for_config(
            num_nodes,
            &model.config,
            num_shards,
        ));
        let table = Arc::new(ShardedNeighborTable::new(
            num_nodes,
            model.config.sampled_neighbors,
            num_shards,
        ));
        let commit_log = Arc::new(Mutex::new(CommitLog::new()));
        let next_epoch = Arc::new(AtomicU64::new(0));

        let (submit_tx, submit_rx) =
            channel::<AdmittedEvent>("scheduler→batcher", config.admission_capacity);
        let (sealed_tx, sealed_rx) =
            channel::<SealedBatch>("batcher→sampler", config.stage_capacity);
        let (sampled_tx, sampled_rx) =
            channel::<SampledJob>("sampler→memory", config.stage_capacity);
        let (update_tx, update_rx) = channel::<UpdateJob>("memory→update", config.stage_capacity);
        let (header_tx, header_rx) =
            channel::<GnnBatchHeader>("memory→reorder", config.stage_capacity);
        // The dispatch/result queues carry per-part items (up to gnn_workers
        // per batch), so they scale with the pool size to keep the same
        // number of batches in flight as the other stage queues.  One
        // dispatch queue per prepared backend: the memory worker routes each
        // sealed batch's sub-jobs to its backend's queue.
        let mut gnn_txs: Vec<Option<MpmcSender<GnnSubJob>>> =
            (0..NUM_BACKEND_KINDS).map(|_| None).collect();
        let mut gnn_rxs: Vec<Option<MpmcReceiver<GnnSubJob>>> =
            (0..NUM_BACKEND_KINDS).map(|_| None).collect();
        for kind in BackendKind::ALL {
            if backends[kind.code()].is_none() {
                continue;
            }
            let name: &'static str = if num_backends == 1 {
                "memory→gnn"
            } else {
                match kind {
                    BackendKind::F32 => "memory→gnn[f32]",
                    BackendKind::Int8 => "memory→gnn[int8]",
                    BackendKind::HwSim => "memory→gnn[hwsim]",
                }
            };
            let (tx, rx) = mpmc_channel::<GnnSubJob>(name, config.stage_capacity * gnn_workers);
            gnn_txs[kind.code()] = Some(tx);
            gnn_rxs[kind.code()] = Some(rx);
        }
        let (parts_tx, parts_rx) =
            mpmc_channel::<GnnSubResult>("gnn→reorder", config.stage_capacity * gnn_workers);
        let (results_tx, results_rx) =
            channel::<ServedBatch>("reorder→results", config.results_capacity);

        let mut queue_stats: Vec<Box<dyn Fn() -> QueueStats + Send + Sync>> = vec![
            {
                let m = submit_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = sealed_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = sampled_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = update_tx.monitor();
                Box::new(move || m.stats())
            },
            {
                let m = header_tx.monitor();
                Box::new(move || m.stats())
            },
        ];
        for tx in gnn_txs.iter().flatten() {
            let m = tx.monitor();
            queue_stats.push(Box::new(move || m.stats()));
        }
        queue_stats.push({
            let m = parts_tx.monitor();
            Box::new(move || m.stats())
        });
        queue_stats.push({
            let m = results_tx.monitor();
            Box::new(move || m.stats())
        });

        // The metrics hub must exist before any worker spawns: every worker
        // carries its `StageObs` handle from birth, and the durability
        // workers resolve theirs through the handle's `OnceLock`.
        let hub = MetricsHub::new(HubConfig {
            enabled: config.metrics,
            flight_capacity: config.flight_capacity,
            queues: queue_stats,
            collector: collector.clone(),
            admission: admission.clone(),
            durability: durability.clone(),
            cache: cache.clone(),
            next_epoch: next_epoch.clone(),
            gnn_workers: gnn_workers * num_backends,
            metrics_sampling: config.metrics_sampling,
            slo_engine,
        });
        if let Some(d) = &durability {
            d.set_obs(hub.durability_obs());
        }

        let mut workers = Vec::with_capacity(6 + gnn_workers * num_backends);
        {
            let admission = admission.clone();
            let obs = hub.stage_obs(StageId::Scheduler, 0);
            let sampling = config.metrics_sampling;
            workers.push(spawn("tgnn-serve-scheduler", move || {
                scheduler_loop(admission, submit_tx, obs, sampling)
            }));
        }
        {
            let next_epoch = next_epoch.clone();
            let (max_batch, deadline) = (config.max_batch, config.batch_deadline);
            let durability = durability.clone();
            let obs = hub.stage_obs(StageId::Batcher, 0);
            workers.push(spawn("tgnn-serve-batcher", move || {
                batcher_loop(
                    submit_rx, sealed_tx, max_batch, deadline, next_epoch, durability, obs,
                )
            }));
        }
        {
            let table = table.clone();
            let k = model.config.sampled_neighbors;
            let obs = hub.stage_obs(StageId::Sampler, 0);
            workers.push(spawn("tgnn-serve-sampler", move || {
                sampler_loop(sealed_rx, sampled_tx, table, k, obs)
            }));
        }
        {
            let (memory, model, graph) = (memory.clone(), stage_model.clone(), graph.clone());
            let tx_gnn = gnn_txs;
            let obs = hub.stage_obs(StageId::Memory, 0);
            workers.push(spawn("tgnn-serve-memory", move || {
                memory_loop(
                    sampled_rx,
                    update_tx,
                    header_tx,
                    tx_gnn,
                    gnn_workers,
                    memory,
                    model,
                    graph,
                    obs,
                )
            }));
        }
        {
            let (memory, table, log) = (memory.clone(), table.clone(), commit_log.clone());
            let durability = durability.clone();
            let cache = cache.clone();
            let obs = hub.stage_obs(StageId::Update, 0);
            workers.push(spawn("tgnn-serve-update", move || {
                update_loop(update_rx, memory, table, log, durability, cache, obs)
            }));
        }
        // One pool of `gnn_workers` compute workers per prepared backend,
        // each pool draining its backend's dispatch queue and feeding the
        // one shared parts queue the reorder worker consumes.
        for (pool, kind) in BackendKind::ALL
            .into_iter()
            .filter(|k| backends[k.code()].is_some())
            .enumerate()
        {
            for i in 0..gnn_workers {
                let rx = gnn_rxs[kind.code()].as_ref().expect("queue exists").clone();
                let tx = parts_tx.clone();
                let backend = backends[kind.code()].as_ref().expect("built above").clone();
                let (memory, table) = (memory.clone(), table.clone());
                let fault = config.gnn_fault.clone();
                let worker = pool * gnn_workers + i;
                let obs = hub.stage_obs(StageId::Gnn, worker as u16);
                let name = if num_backends == 1 {
                    format!("tgnn-serve-gnn-{i}")
                } else {
                    format!("tgnn-serve-gnn-{}-{i}", kind.label())
                };
                workers.push(spawn(&name, move || {
                    gnn_worker_loop(rx, tx, backend, fault, memory, table, obs)
                }));
            }
        }
        // The originals were cloned into the pools; drop them so the
        // dispatch and result channels close exactly when the last worker
        // exits.
        drop(gnn_rxs);
        drop(parts_tx);
        {
            let collector = collector.clone();
            let cache = cache.clone();
            let obs = hub.stage_obs(StageId::Reorder, 0);
            let latency_us = hub.batch_latency_hist();
            workers.push(spawn("tgnn-serve-reorder", move || {
                reorder_loop(
                    header_rx, parts_rx, results_tx, collector, cache, obs, latency_us,
                )
            }));
        }
        // Seal group commit (`OnSeal` only): one worker fsyncs all pending
        // seals per call while the batcher runs ahead; `poll` gates delivery
        // on the synced watermark.
        let wal_sync = durability
            .as_ref()
            .filter(|d| d.wal.policy() == tgnn_durable::FsyncPolicy::OnSeal)
            .map(|d| {
                let d = d.clone();
                spawn("tgnn-serve-wal-sync", move || d.syncer_loop())
            });

        Self {
            admission,
            results_rx,
            completed: VecDeque::new(),
            workers,
            wal_sync,
            cache,
            stale_out,
            memory,
            table,
            model: stage_model,
            backends,
            tenant_backends,
            graph,
            commit_log,
            collector,
            next_epoch,
            hub,
            warm_timestamp: Timestamp::NEG_INFINITY,
            submitted: 0,
            num_shards,
            gnn_workers,
            durability,
            slo: slo_handle,
            wal_block_since: None,
        }
    }

    /// Rebuilds a durable server from its durability directory: loads the
    /// latest valid snapshot, replays the durable WAL tail through the
    /// normal stage entry points, and resumes exactly where the crashed
    /// session's durable prefix ended:
    ///
    /// * epochs sealed but **not delivered** are recomputed and re-served —
    ///   they come back through [`Self::poll`] first, in epoch order, with
    ///   `Disposition::OnTime` and zero latency, and their embeddings are
    ///   bit-identical to what the crashed server would have produced;
    /// * epochs sealed **and delivered** (acked) are replayed for state
    ///   only, never served twice;
    /// * events admitted but never sealed are back in their tenants'
    ///   ingress queues, ahead of any new submission;
    /// * per-tenant chronology floors (warm-up plus each tenant's last
    ///   durable submission) are re-imposed.
    ///
    /// A torn final WAL record — a crash mid-append — is truncated away and
    /// flagged in the [`RecoveryReport`].  Anything else that fails
    /// validation (a mid-log checksum error, a causal-order violation, an
    /// eligible snapshot that fails verification) is an error: recovery
    /// never serves from state it cannot prove consistent.
    ///
    /// `config` must describe the same model/graph/shard/tenant layout the
    /// crashed session ran with.
    pub fn recover(
        model: TgnModel,
        graph: Arc<TemporalGraph>,
        config: ServeConfig,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let t0 = Instant::now();
        let dcfg = config
            .durability
            .clone()
            .expect("StreamServer::recover requires ServeConfig::durability");
        let mut scan = read_wal(&dcfg.dir)?;
        let torn = scan.torn.take();
        if let Some(t) = &torn {
            repair_torn_tail(t)?;
        }
        let num_tenants = config.tenants.len().max(1);
        let plan = plan_recovery(&scan, num_tenants)?;

        // Latest eligible snapshot: `floor` snapshots (warm-up / clean
        // drain) are always usable; interval snapshots only when everything
        // sealed past them was already delivered (`epoch <= acked`) —
        // otherwise the undelivered epochs behind them could not be
        // re-served.  An eligible snapshot that fails verification falls
        // back to the next older one; if none survives, that is corruption,
        // not a silent cold start.
        let entries = list_snapshots(&dcfg.dir)?;
        let mut loaded = None;
        let mut eligible = 0usize;
        for entry in entries.iter().rev() {
            if !(entry.meta.floor || entry.meta.epoch <= plan.acked) {
                continue;
            }
            eligible += 1;
            if let Ok(s) = load_snapshot(entry) {
                loaded = Some(s);
                break;
            }
        }
        if loaded.is_none() && eligible > 0 {
            return Err(DurableError::corrupt(
                "no eligible snapshot passed verification",
            ));
        }

        let mut server = Self::build(model, graph, config, scan.last_seq);
        let d = server
            .durability
            .clone()
            .expect("build keeps the durability handle");
        d.set_acked(plan.acked);
        // Every sealed epoch read back from the log is durable by
        // construction — re-served batches must pass poll's seal gate
        // without waiting on this session's syncer.
        d.seed_seal_synced(plan.max_sealed);

        let snapshot_epoch = loaded.as_ref().map_or(0, |s| s.meta.epoch);
        if let Some(s) = loaded {
            if s.meta.num_shards as usize != server.num_shards {
                return Err(DurableError::corrupt(format!(
                    "snapshot has {} shards, server configured with {}",
                    s.meta.num_shards, server.num_shards
                )));
            }
            server.warm_timestamp = s.meta.warm_timestamp;
            server.admission.set_timestamp_floor(s.meta.warm_timestamp);
            d.seed_from_snapshot(&s.meta);
            for (i, mem) in s.memory.into_iter().enumerate() {
                server.memory.restore_shard(i, mem);
            }
            for (i, table) in s.tables.into_iter().enumerate() {
                server.table.restore_shard(i, table);
            }
            for shard in 0..server.num_shards {
                server.memory.gate().commit(shard, snapshot_epoch);
                server.table.gate().commit(shard, snapshot_epoch);
            }
        }
        server
            .next_epoch
            .store(snapshot_epoch.max(plan.max_sealed), Ordering::SeqCst);
        // Cold-start the cache at the recovered epoch: raising the watermark
        // first means any entry seeded below cannot be served beyond the
        // staleness bound measured against the *recovered* timeline — a
        // post-crash stale answer never references over-aged pre-crash state.
        if let Some(c) = &server.cache {
            c.set_committed_floor(snapshot_epoch.max(plan.max_sealed));
        }

        // Replay sealed epochs newer than the snapshot through the same
        // stage functions the pipeline runs — sampling the restored
        // neighbor table, the shared memory stage, the same write-back —
        // which is what makes the recovered state bit-identical to an
        // uninterrupted run.
        let k = server.model.config.sampled_neighbors;
        let mut ws = Workspace::new();
        let mut replayed_epochs = 0usize;
        let mut re_served_epochs = 0usize;
        let mut replayed_events = 0usize;
        let mut expected = snapshot_epoch;
        for sealed in &plan.sealed {
            if sealed.epoch <= snapshot_epoch {
                continue;
            }
            expected += 1;
            if sealed.epoch != expected {
                return Err(DurableError::corrupt(format!(
                    "sealed epoch {} does not follow the snapshot (epoch {}) contiguously",
                    sealed.epoch, snapshot_epoch
                )));
            }
            let events: Vec<InteractionEvent> = sealed.events.iter().map(|(_, e)| *e).collect();
            replayed_events += events.len();
            let batch = EventBatch::new(events.clone());
            let sampled = SampledBatch::assemble(batch, k, |v, t, kk, out| {
                server.table.sample_into(v, t, kk, out)
            });
            let updated = crate::pipeline::run_sharded_memory_stage(
                &sampled,
                &server.memory,
                &server.model,
                &server.graph,
                &mut ws,
            );
            // Gather before the write-back, exactly like the memory worker.
            let job = (sealed.epoch > plan.acked).then(|| {
                GnnJobBatch::gather(
                    &sampled,
                    &updated,
                    &server.graph,
                    &server.model.config,
                    |v, dst| server.memory.copy_memory_into(v, dst),
                )
            });
            let writes = crate::pipeline::writes_from(updated, &sampled);
            {
                let mut log = server.commit_log.lock().unwrap();
                for (v, _, t) in &writes {
                    log.commit(*v, *t);
                }
            }
            d.note_absorbed(&events);
            server.memory.commit_epoch(sealed.epoch, &writes);
            server.table.commit_epoch(sealed.epoch, &events);
            replayed_epochs += 1;
            if let Some(job) = job {
                // Sealed but never delivered: recompute the embeddings and
                // queue the batch for `poll`, ahead of anything new.  The
                // job replays on the same backend that would have served it
                // live — sealed batches are backend-homogeneous by
                // construction, so the first event's tenant decides.
                let kind = sealed
                    .events
                    .first()
                    .and_then(|(t, _)| server.tenant_backends.get(*t as usize))
                    .copied()
                    .unwrap_or_default();
                let be = server.backends[kind.code()]
                    .as_ref()
                    .expect("recover: every resolved tenant backend is prepared")
                    .clone();
                let out = be.run_gnn(&job, &mut ws);
                let embeddings = out.embeddings;
                // Seed the cache from the re-served epochs — these are
                // bit-identical to what the crashed server computed, and the
                // pre-raised watermark ages them correctly (entries already
                // beyond the bound are simply never answered).
                if let Some(c) = &server.cache {
                    for (v, emb) in &embeddings {
                        c.insert(*v, sealed.epoch, emb);
                    }
                }
                let metas: Vec<ResultMeta> = sealed
                    .events
                    .iter()
                    .map(|(t, _)| ResultMeta {
                        tenant: TenantId(*t),
                        disposition: Disposition::OnTime,
                        backend: kind,
                        // Re-served epochs never ran this session's
                        // pipeline: no trace.
                        trace_id: 0,
                    })
                    .collect();
                server
                    .collector
                    .record_batch(events.len(), embeddings.len(), Duration::ZERO);
                server
                    .collector
                    .record_backend_batch(kind, events.len(), out.modeled_latency);
                for (t, _) in &sealed.events {
                    server
                        .collector
                        .record_event(TenantId(*t), false, Duration::ZERO);
                }
                let now = Instant::now();
                server.completed.push_back(ServedBatch {
                    epoch: sealed.epoch,
                    events,
                    metas,
                    embeddings,
                    backend: kind,
                    modeled_latency: out.modeled_latency,
                    cache_epochs: Vec::new(),
                    latency: Duration::ZERO,
                    admitted_at: now,
                    reordered_at: now,
                });
                re_served_epochs += 1;
            }
        }

        // Admitted-but-unsealed events go back into their ingress queues,
        // bypassing overload/rate policies (they already passed them) and
        // without re-logging (their admits are already durable); each
        // tenant's chronology floor is raised to its last durable
        // submission.
        let mut readmitted_events = 0usize;
        for (t, tail) in plan.tails.iter().enumerate() {
            if tail.is_empty() && plan.max_timestamp[t] == f64::NEG_INFINITY {
                continue;
            }
            server
                .admission
                .restore(TenantId(t as u32), tail, plan.max_timestamp[t]);
            readmitted_events += tail.len();
        }
        server.submitted = plan.admits.iter().sum::<u64>() as usize;
        if server.submitted > 0 {
            // The per-life clock starts at recovery; `submit_for` only
            // stamps it on the very first submission ever.
            *server.collector.first_submit.lock().unwrap() = Some(Instant::now());
        }

        let report = RecoveryReport {
            snapshot_epoch,
            acked: plan.acked,
            sealed_epochs: plan.sealed.len(),
            replayed_epochs,
            re_served_epochs,
            replayed_events,
            readmitted_events,
            resume_from: plan.admits.clone(),
            served_stale: plan.served_stale.clone(),
            torn_tail_repaired: torn.is_some(),
            recovery_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
        Ok((server, report))
    }

    /// Replays a chronological event prefix through the sharded state
    /// (memory via the GRU, mailbox, neighbor table) without computing
    /// embeddings — the pipeline analogue of `InferenceEngine::warm_up`,
    /// bit-identical to it.
    ///
    /// # Panics
    /// Panics if events have already been submitted.
    pub fn warm_up(&mut self, events: &[InteractionEvent]) {
        assert_eq!(self.submitted, 0, "warm_up must run before any submissions");
        let mut ws = Workspace::new();
        for chunk in events.chunks(256) {
            let epoch = self.next_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            let batch = EventBatch::new(chunk.to_vec());
            // k = 0: we only need touched vertices and query times.
            let sampled = SampledBatch::assemble(batch, 0, |_, _, _, _| {});
            let updated = crate::pipeline::run_sharded_memory_stage(
                &sampled,
                &self.memory,
                &self.model,
                &self.graph,
                &mut ws,
            );
            let writes = crate::pipeline::writes_from(updated, &sampled);
            {
                let mut log = self.commit_log.lock().unwrap();
                for (v, _, t) in &writes {
                    log.commit(*v, *t);
                }
            }
            self.memory.commit_epoch(epoch, &writes);
            self.table.commit_epoch(epoch, chunk);
            if let Some(t) = sampled.batch.end_time() {
                self.warm_timestamp = t;
            }
        }
        self.admission.set_timestamp_floor(self.warm_timestamp);
        if let Some(d) = &self.durability {
            // Warm events are not in the WAL (nothing was admitted), so the
            // post-warm state must be snapshotted or recovery could never
            // reconstruct it: a `floor` snapshot, exempt from the
            // `epoch <= acked` eligibility rule.
            d.set_warm_timestamp(self.warm_timestamp);
            d.note_absorbed(events);
            if !events.is_empty() {
                let epoch = self.next_epoch.load(Ordering::SeqCst);
                d.snapshot_quiesced(epoch, true, &self.memory, &self.table);
            }
        }
    }

    /// Feeds one event into the default tenant's ingress queue (the
    /// single-tenant path).  Blocks while the pipeline is backpressured
    /// (ingress queue full under the default `Block` policy); the block
    /// count is visible in the report's tenant statistics.
    pub fn submit(&mut self, event: InteractionEvent) -> Result<(), SubmitError> {
        self.submit_for(TenantId::DEFAULT, event).map(|_| ())
    }

    /// Feeds one event into `tenant`'s ingress queue, applying the tenant's
    /// [`OverloadPolicy`] if the queue is full: `Block`/`Late` block the
    /// caller (backpressure), `DropNewest` returns
    /// [`SubmitOutcome::Dropped`], `DropOldest` evicts the queue head and
    /// admits this event.  Each tenant's stream must be chronological;
    /// different tenants are ordered independently.
    pub fn submit_for(
        &mut self,
        tenant: TenantId,
        event: InteractionEvent,
    ) -> Result<SubmitOutcome, SubmitError> {
        if self.submitted == 0 {
            *self.collector.first_submit.lock().unwrap() = Some(Instant::now());
        }
        let outcome = self.admission.submit(tenant, event)?;
        self.submitted += 1;
        Ok(outcome)
    }

    /// Pops the next completed micro-batch, if any (non-blocking).  Batches
    /// come back in submission (epoch) order.
    ///
    /// With durability on, a batch is held back (`None`) until its `Seal` is
    /// durable — the delivery gate of the seal group commit; the pipeline
    /// keeps computing behind a slow fsync and the batch surfaces a poll or
    /// two later.  Delivering a batch appends its `Ack` to the WAL (fsynced
    /// under `FsyncPolicy::Always`): after a crash, acked epochs are
    /// replayed for state only, never re-served — and because the ack gate
    /// sits behind the seal fsync, an `Ack` can never outrun its `Seal` in
    /// any durable prefix.
    pub fn poll(&mut self) -> Option<ServedBatch> {
        let b = self.poll_inner()?;
        // `trace_id == 0` marks results that never ran the pipeline this
        // session (stale cache answers, recovery re-serves): they carry no
        // trace and are excluded from the latency objective.
        let traced = b.metas.first().is_some_and(|m| m.trace_id != 0);
        let now = Instant::now();
        let total = now.saturating_duration_since(b.admitted_at);
        // Attribute the time delivery was observed blocked on the WAL
        // group-commit watermark (tracked by `poll_inner`) to this epoch.
        let wal_wait = match self.wal_block_since {
            Some((e, since)) if e == b.epoch => {
                // Consume only a matching entry: a stale batch delivered in
                // between must not clear another epoch's wait clock.
                self.wal_block_since = None;
                now.saturating_duration_since(since)
            }
            _ => Duration::ZERO,
        };
        if traced {
            self.slo.record_batch_latency(total, b.events.len() as u64);
        }
        self.hub.record_delivery(
            b.epoch,
            traced,
            total,
            wal_wait,
            now.saturating_duration_since(b.reordered_at),
        );
        Some(b)
    }

    fn poll_inner(&mut self) -> Option<ServedBatch> {
        // Stale answers first: they were synthesized at submit time from
        // already-served (and, with durability on, already-sealed-and-acked)
        // history, so they owe no seal gate and no ack — holding them behind
        // pipeline output would only age them further.
        if let Some(stale) = &self.stale_out {
            if let Some(b) = stale.lock().unwrap().pop_front() {
                return Some(b);
            }
        }
        let Some(d) = self.durability.clone() else {
            return self
                .completed
                .pop_front()
                .or_else(|| self.results_rx.try_recv());
        };
        if self.completed.is_empty() {
            if let Some(b) = self.results_rx.try_recv() {
                self.completed.push_back(b);
            }
        }
        let front_epoch = self.completed.front()?.epoch;
        if !d.seal_synced(front_epoch) {
            // First blocked observation of this epoch starts its WAL-sync
            // wait clock; repeat polls keep the original start.
            match self.wal_block_since {
                Some((e, _)) if e == front_epoch => {}
                _ => self.wal_block_since = Some((front_epoch, Instant::now())),
            }
            return None;
        }
        let b = self.completed.pop_front().expect("front exists");
        d.ack(b.epoch);
        Some(b)
    }

    /// Closes admission, flushes every in-flight event through the pipeline
    /// — including everything still queued in tenant ingress queues (drain
    /// never drops an admitted event) — joins the workers, and returns the
    /// aggregate report.  Completed batches (including those that finish
    /// during the flush) remain available via [`Self::poll`].
    ///
    /// With durability on, drain additionally flushes and fsyncs the WAL
    /// tail — *before* propagating a worker panic, so even a poisoned
    /// pipeline leaves the log recoverable — and, on an orderly shutdown,
    /// writes a final clean snapshot of the drained state.
    ///
    /// # Panics
    /// Propagates a worker panic (e.g. an epoch-order violation).
    pub fn drain(&mut self) -> ServeReport {
        // Close admission: the scheduler drains the remaining tenant queues
        // and exits, and the shutdown ripples down the stages.
        self.admission.close();
        loop {
            while let Some(b) = self.results_rx.try_recv() {
                self.completed.push_back(b);
            }
            if self.workers.iter().all(|w| w.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        while let Some(b) = self.results_rx.try_recv() {
            self.completed.push_back(b);
        }
        if let Some(d) = &self.durability {
            // The pipeline workers are done appending and the reorder worker
            // has released every delivery gate: stop the group-commit syncer
            // (it flushes any still-pending seal requests on its way out)…
            d.shutdown_seal_sync();
            // …then make the whole tail durable before any panic can
            // propagate.  (A frozen WAL — crash injection — no-ops this, as
            // a real death would.)
            d.wal.flush(true).expect("drain: WAL flush failed");
        }
        for w in self
            .wal_sync
            .take()
            .into_iter()
            .chain(self.workers.drain(..))
        {
            if let Err(panic) = w.join() {
                std::panic::resume_unwind(panic);
            }
        }
        if let Some(d) = &self.durability {
            // Orderly shutdown: snapshot the fully drained state.  Sealed
            // epochs not yet polled keep the snapshot `epoch > acked`, so it
            // only becomes the recovery floor once they are delivered (the
            // post-drain `poll` acks make it eligible); `floor` is stamped
            // for the already-fully-delivered case.
            let epoch = self.next_epoch.load(Ordering::SeqCst);
            let floor = d.acked() >= epoch;
            d.snapshot_quiesced(epoch, floor, &self.memory, &self.table);
        }
        self.report()
    }

    /// The aggregate report so far (cheap; callable live or after `drain`).
    pub fn report(&self) -> ServeReport {
        let latencies = self.collector.latencies.lock().unwrap().clone();
        let first = *self.collector.first_submit.lock().unwrap();
        let last = *self.collector.last_complete.lock().unwrap();
        let total_time = match (first, last) {
            (Some(a), Some(b)) => b.saturating_duration_since(a),
            _ => Duration::ZERO,
        };
        let num_events = self.collector.events.load(Ordering::Relaxed);
        let queues: Vec<QueueStats> = self.hub.queue_stats();
        let tenants: Vec<TenantStats> = (0..self.admission.num_tenants())
            .map(|i| {
                let (spec, counters) = self.admission.tenant_snapshot(i);
                let tc = &self.collector.tenants[i];
                let latencies = tc.latencies.lock().unwrap();
                let served = tc.served.load(Ordering::Relaxed);
                TenantStats {
                    name: spec.name,
                    weight: spec.weight,
                    policy: spec.policy,
                    backend: spec.backend.unwrap_or_default(),
                    counters,
                    served,
                    late: tc.late.load(Ordering::Relaxed),
                    served_stale: tc.served_stale.load(Ordering::Relaxed),
                    latency: LatencySummary::from_latencies(&latencies),
                    throughput_eps: if total_time.is_zero() {
                        0.0
                    } else {
                        served as f64 / total_time.as_secs_f64()
                    },
                }
            })
            .collect();
        let backends: Vec<BackendStats> = BackendKind::ALL
            .into_iter()
            .filter(|k| self.backends[k.code()].is_some())
            .map(|k| {
                let c = &self.collector.backends[k.code()];
                let modeled = c.modeled_latencies.lock().unwrap();
                BackendStats {
                    kind: k,
                    served_batches: c.served_batches.load(Ordering::Relaxed),
                    served_events: c.served_events.load(Ordering::Relaxed),
                    modeled_latency: (!modeled.is_empty())
                        .then(|| LatencySummary::from_latencies(&modeled)),
                }
            })
            .collect();
        let backpressure_blocks = queues.iter().map(|q| q.blocked_sends).sum::<u64>()
            + tenants
                .iter()
                .map(|t| t.counters.blocked_submits)
                .sum::<u64>();
        let log = self.commit_log.lock().unwrap();
        ServeReport {
            num_events,
            num_batches: self.collector.batches.load(Ordering::Relaxed),
            num_embeddings: self.collector.embeddings.load(Ordering::Relaxed),
            total_time,
            throughput_eps: if total_time.is_zero() {
                0.0
            } else {
                num_events as f64 / total_time.as_secs_f64()
            },
            latency: LatencySummary::from_latencies(&latencies),
            queues,
            backpressure_blocks,
            tenants,
            backends,
            commits: log.commits(),
            commit_log_clean: log.is_clean(),
            num_shards: self.num_shards,
            gnn_workers: self.gnn_workers,
            durability: self.durability.as_ref().map(|d| d.stats()),
            cache: self.cache.as_ref().map(|c| {
                let stats = c.stats();
                CacheReport {
                    stats,
                    hit_rate: stats.hit_rate(),
                    staleness_bound_epochs: c.staleness_bound(),
                    stale_age: StaleAgeSummary::from_ages(&c.stale_ages()),
                }
            }),
            stage_timings: self.hub.stage_timings(),
        }
    }

    /// A typed point-in-time metrics snapshot — callable at any moment:
    /// live under load, after a drain, or while the pipeline is unwinding
    /// from a worker panic.  See [`MetricsSnapshot`] for the renderers
    /// (human table, Prometheus text, JSONL).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.hub.snapshot()
    }

    /// The cloneable [`MetricsHub`] handle behind [`Self::metrics`]: hand it
    /// to a sampler thread ([`MetricsHub::spawn_jsonl_sampler`]) or keep it
    /// across a `catch_unwind` to dump the flight recorder
    /// ([`MetricsHub::flight_dump`]) after a panic.
    pub fn metrics_hub(&self) -> MetricsHub {
        self.hub.clone()
    }

    /// Read access to the sharded memory (diagnostics, tests).
    pub fn memory(&self) -> &ShardedMemory {
        &self.memory
    }

    /// Read access to the sharded neighbor table (diagnostics, tests).
    pub fn neighbor_table(&self) -> &ShardedNeighborTable {
        &self.table
    }

    /// Number of events submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.admission.close();
        // Detach rather than join: receivers close as queue senders drop, so
        // the workers exit on their own; joining here could block a panicking
        // caller.  `drain` is the orderly shutdown path.
        for w in self.workers.drain(..).chain(self.wal_sync.take()) {
            drop(w);
        }
        if let Some(d) = &self.durability {
            // Release the syncer and any reorder worker waiting on it so the
            // detached threads can exit.
            d.shutdown_seal_sync();
            // Best-effort: push any buffered tail (e.g. post-drain acks) to
            // disk.  Workers may still be appending, which is fine — flush
            // is atomic under the writer lock and they flush their own work.
            let _ = d.wal.flush(true);
        }
    }
}

/// Whether a durability directory already contains WAL segments.
fn has_wal_segments(dir: &std::path::Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.flatten().any(|e| {
        let name = e.file_name();
        let name = name.to_string_lossy();
        name.starts_with("wal-") && name.ends_with(".seg")
    })
}

fn spawn(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("failed to spawn pipeline worker")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_nearest_rank() {
        let lats: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::from_latencies(&lats);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }

    #[test]
    fn latency_summary_small_n_nearest_rank() {
        // Nearest-rank at the edges: rank(q) = ceil(q·n), clamped to [1, n].
        // n = 1: every percentile is the single sample.
        let one = LatencySummary::from_latencies(&[Duration::from_millis(7)]);
        assert_eq!(
            (one.p50_ms, one.p95_ms, one.p99_ms, one.max_ms),
            (7.0, 7.0, 7.0, 7.0)
        );
        // n = 2: p50 → rank ceil(1.0) = 1 (the smaller), p95/p99 → rank 2.
        let two =
            LatencySummary::from_latencies(&[Duration::from_millis(1), Duration::from_millis(2)]);
        assert_eq!((two.p50_ms, two.p95_ms, two.p99_ms), (1.0, 2.0, 2.0));
        // n = 10: p50 → rank 5, p95 → rank ceil(9.5) = 10, p99 → rank 10.
        // (0.95 × 10 = 9.500000000000002 in f64 — ceil still lands on 10.)
        let lats: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let ten = LatencySummary::from_latencies(&lats);
        assert_eq!(
            (ten.p50_ms, ten.p95_ms, ten.p99_ms, ten.max_ms),
            (5.0, 10.0, 10.0, 10.0)
        );
        // Order-independence: the sort inside must make reversed input equal.
        let rev: Vec<Duration> = (1..=10).rev().map(Duration::from_millis).collect();
        assert_eq!(LatencySummary::from_latencies(&rev), ten);
    }

    #[test]
    fn stale_age_summary_nearest_rank() {
        assert_eq!(StaleAgeSummary::from_ages(&[]), StaleAgeSummary::default());
        let s = StaleAgeSummary::from_ages(&[3]);
        assert_eq!((s.count, s.p50, s.p99, s.max), (1, 3, 3, 3));
        let s = StaleAgeSummary::from_ages(&(1..=100).collect::<Vec<u64>>());
        assert_eq!(
            (s.count, s.p50, s.p95, s.p99, s.max),
            (100, 50, 95, 99, 100)
        );
    }
}
