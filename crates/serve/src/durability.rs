//! Serve-side durability: the shared WAL/snapshot handle the pipeline
//! workers thread through, and the report types recovery produces.
//!
//! The handle is deliberately thin — all formats and invariants live in
//! `tgnn-durable` — but it owns the *policy* decisions that tie the log to
//! the pipeline's lifecycle:
//!
//! * **Admits** are appended by the admission layer under its state lock
//!   (see `AdmissionControl::with_wal`), so an event's `Admit` always
//!   precedes any `Seal` containing it.
//! * **Seals** are appended by the batcher when it seals the batch, and made
//!   durable by *group commit*: under the default
//!   [`FsyncPolicy::OnSeal`](tgnn_durable::FsyncPolicy) the batcher only
//!   *requests* an fsync (it never blocks on the disk), a dedicated syncer
//!   worker fsyncs all pending seals in one call, and `poll` holds each
//!   completed batch until the synced watermark covers it — a batch can
//!   only have been *delivered* if its seal is durable, while the pipeline
//!   itself runs at compute speed even through fsync latency spikes.
//! * **Acks** are appended when `poll` hands a batch to the client; under
//!   `OnSeal`/`Never` the record is written (OS-buffered) without an fsync
//!   so post-drain polls still reach the log.
//! * **Snapshots** are captured at epoch barriers via the
//!   `commit_epoch_with` observers and written *after* a full WAL
//!   flush+fsync, so a snapshot never runs ahead of the durable log.

use crate::metrics::DurabilityObs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;
use tgnn_core::ShardedMemory;
use tgnn_durable::{
    encode_memory_shard, encode_neighbor_shard, write_snapshot, DurabilityConfig, FsyncPolicy,
    SnapshotMeta, Wal, WalFaultHook, WalRecord,
};
use tgnn_graph::{InteractionEvent, ShardedNeighborTable};

/// Durability-side counters surfaced in the serve report when
/// `ServeConfig::durability` is set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DurabilityStats {
    /// WAL records appended this session.
    pub wal_records: u64,
    /// WAL frame bytes appended this session.
    pub wal_bytes: u64,
    /// `fsync` calls issued by the WAL writer.
    pub wal_fsyncs: u64,
    /// WAL segment rotations.
    pub wal_rotations: u64,
    /// Snapshots written this session.
    pub snapshots: u64,
    /// Cumulative wall-clock time spent writing snapshots, in milliseconds.
    pub snapshot_ms_total: f64,
    /// Epoch of the most recent snapshot (0 = none yet).
    pub last_snapshot_epoch: u64,
    /// Highest epoch whose results were delivered to the client.
    pub acked_epoch: u64,
}

/// What `StreamServer::recover` found in the durability directory and how it
/// resumed.  The recovered server serves the same stream the crashed one
/// would have: epochs sealed but not yet delivered are *re-served* (they
/// come back through `poll` first, with `Disposition::OnTime` and zero
/// latency), and admitted-but-unsealed events are back in their tenants'
/// ingress queues.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Epoch of the snapshot the state was restored from (0 = recovered
    /// from an empty initial state).
    pub snapshot_epoch: u64,
    /// Highest delivered epoch per the WAL — replay re-serves everything
    /// after it.
    pub acked: u64,
    /// Durable sealed epochs found in the WAL.
    pub sealed_epochs: usize,
    /// Sealed epochs replayed through the pipeline stages (those after the
    /// snapshot).
    pub replayed_epochs: usize,
    /// Replayed epochs re-served to the client (sealed but unacked).
    pub re_served_epochs: usize,
    /// Events contained in the replayed epochs.
    pub replayed_events: usize,
    /// Admitted-but-unsealed events put back into tenant ingress queues.
    pub readmitted_events: usize,
    /// Per-tenant durable submit-outcome count (admits *and* drops) — the
    /// event index from which each client should resume submission.
    pub resume_from: Vec<u64>,
    /// Per-tenant events the crashed session answered from the embedding
    /// cache (`ServeStale`) — already delivered, so never replayed; the
    /// recovered cache cold-starts and cannot resurrect them.
    pub served_stale: Vec<u64>,
    /// Whether a torn final WAL record was found and truncated away.
    pub torn_tail_repaired: bool,
    /// Wall-clock time of the whole recovery pass, in milliseconds.
    pub recovery_ms: f64,
}

/// The shared durability handle: one per durable `StreamServer`, threaded
/// into the admission layer, the batcher, the update worker, and the
/// server's `poll`/`drain` paths.
pub(crate) struct Durability {
    pub wal: Arc<Wal>,
    pub snapshot_every: u64,
    pub wal_fault: Option<WalFaultHook>,
    dir: PathBuf,
    /// Highest epoch delivered to the client (the ack watermark).
    acked: AtomicU64,
    /// Events absorbed into the sharded state (warm-up + committed epochs).
    events_total: AtomicU64,
    /// Largest absorbed event timestamp.
    max_timestamp: Mutex<f64>,
    /// End timestamp of warm-up (`NEG_INFINITY` when the server never
    /// warmed up) — persisted in every manifest; see `SnapshotMeta`.
    warm_timestamp: Mutex<f64>,
    snapshots: AtomicU64,
    snapshot_ms_total: Mutex<f64>,
    last_snapshot_epoch: AtomicU64,
    /// When this handle was opened — the reference point of the wall-clock
    /// snapshot-lag gauge before the first snapshot completes.
    opened: Instant,
    /// Nanoseconds after `opened` at which the last snapshot completed
    /// (0 = none yet).  Time-based lag catches a stalled snapshot writer
    /// even when epochs stop advancing (the epoch-based lag stays flat
    /// then).
    last_snapshot_ns: AtomicU64,
    /// Group-commit coordination between the batcher, the syncer worker,
    /// and the reorder worker (see [`Self::request_seal_sync`]).
    seal_sync: Mutex<SealSyncState>,
    seal_req: Condvar,
    seal_done: Condvar,
    /// The in-flight background snapshot write, if any (see
    /// [`Self::spawn_snapshot_write`]).  At most one at a time.
    pending_snapshot: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Span/latency recording handles of the syncer and snapshot workers,
    /// attached by the server after the hub exists (the durability handle
    /// is constructed first) and before any durability worker runs.
    obs: OnceLock<DurabilityObs>,
}

/// Shared state of the `OnSeal` group-commit protocol.
struct SealSyncState {
    /// Highest epoch whose `Seal` record has been appended and awaits fsync.
    requested: u64,
    /// Highest epoch whose seal is known durable.
    synced: u64,
    /// Set at shutdown (or on a syncer I/O failure) so waiters stop
    /// blocking — by then `drain` has fsynced the tail itself.
    shutdown: bool,
}

impl Durability {
    /// Opens the WAL (continuing after segment `last_seq`; `0` for a fresh
    /// log) and an idle snapshot writer over the configured directory.
    pub fn open(cfg: &DurabilityConfig, last_seq: u64) -> std::io::Result<Self> {
        let wal = Arc::new(Wal::open(&cfg.dir, last_seq, cfg.segment_bytes, cfg.fsync)?);
        Ok(Self {
            wal,
            snapshot_every: cfg.snapshot_every,
            wal_fault: cfg.wal_fault.clone(),
            dir: cfg.dir.clone(),
            acked: AtomicU64::new(0),
            events_total: AtomicU64::new(0),
            max_timestamp: Mutex::new(f64::NEG_INFINITY),
            warm_timestamp: Mutex::new(f64::NEG_INFINITY),
            snapshots: AtomicU64::new(0),
            snapshot_ms_total: Mutex::new(0.0),
            last_snapshot_epoch: AtomicU64::new(0),
            opened: Instant::now(),
            last_snapshot_ns: AtomicU64::new(0),
            seal_sync: Mutex::new(SealSyncState {
                requested: 0,
                synced: 0,
                shutdown: false,
            }),
            seal_req: Condvar::new(),
            seal_done: Condvar::new(),
            pending_snapshot: Mutex::new(None),
            obs: OnceLock::new(),
        })
    }

    /// Attaches the observability handles (idempotent; later calls lose).
    /// Called by `StreamServer::build` between hub construction and worker
    /// spawn; without it the durability workers simply record nothing.
    pub fn set_obs(&self, obs: DurabilityObs) {
        let _ = self.obs.set(obs);
    }

    /// Batcher-side half of seal group commit: make epoch `epoch`'s freshly
    /// appended `Seal` record durable per the configured policy.
    ///
    /// Under `OnSeal` this *requests* an fsync from the syncer worker and
    /// returns immediately — the batcher never waits on the disk, and one
    /// fsync covers every seal appended since the previous one.  Delivery
    /// still waits: `poll` holds an epoch's results until
    /// [`Self::seal_synced`] clears it.  Under `Always` every append
    /// already fsynced, and under `Never` durability is explicitly not
    /// promised — both just hand buffered frames to the OS and advance the
    /// watermark on the spot.
    pub fn request_seal_sync(&self, epoch: u64) {
        match self.wal.policy() {
            FsyncPolicy::OnSeal => {
                let mut s = self.seal_sync.lock().unwrap();
                s.requested = s.requested.max(epoch);
                self.seal_req.notify_one();
            }
            FsyncPolicy::Always | FsyncPolicy::Never => {
                self.wal
                    .flush(false)
                    .expect("durability: WAL seal flush failed");
                let mut s = self.seal_sync.lock().unwrap();
                s.synced = s.synced.max(epoch);
                self.seal_done.notify_all();
            }
        }
    }

    /// Delivery-side half of seal group commit: whether epoch `epoch`'s seal
    /// is durable, i.e. whether `poll` may hand its results to the client
    /// (non-blocking — the pipeline keeps computing behind a slow fsync; the
    /// client sees the batch a poll or two later).  Shutdown counts as
    /// synced: it is only signalled from `drain`/`Drop`, which fsync the WAL
    /// tail themselves.
    pub fn seal_synced(&self, epoch: u64) -> bool {
        let s = self.seal_sync.lock().unwrap();
        s.synced >= epoch || s.shutdown
    }

    /// Seeds the seal-sync watermark (recovery): every sealed epoch read
    /// back from the WAL is durable by construction, so re-served epochs
    /// must not wait on the new session's syncer.
    pub fn seed_seal_synced(&self, epoch: u64) {
        let mut s = self.seal_sync.lock().unwrap();
        s.requested = s.requested.max(epoch);
        s.synced = s.synced.max(epoch);
    }

    /// Body of the `tgnn-serve-wal-sync` worker (`OnSeal` policy only):
    /// fsync the WAL whenever seals are pending, then advance the synced
    /// watermark past everything appended before the flush.  Exits once
    /// shutdown is signalled and no requests remain outstanding.
    pub fn syncer_loop(&self) {
        loop {
            let target = {
                let mut s = self.seal_sync.lock().unwrap();
                while s.requested <= s.synced && !s.shutdown {
                    s = self.seal_req.wait(s).unwrap();
                }
                if s.requested <= s.synced {
                    return;
                }
                // Group-commit window: seals arrive every millisecond or
                // two at full throughput, so briefly holding the flush lets
                // several of them share one fsync.  Delivery latency pays
                // the window once; the CPU saved (each fsync burns guest
                // cycles the pipeline could use) more than covers it.
                if !s.shutdown {
                    let (ns, _) = self
                        .seal_req
                        .wait_timeout(s, std::time::Duration::from_millis(2))
                        .unwrap();
                    s = ns;
                }
                if s.requested <= s.synced {
                    if s.shutdown {
                        return;
                    }
                    continue;
                }
                s.requested
            };
            // Span = one group commit, tagged with the highest epoch it
            // covers; the fsync latency additionally feeds the histogram.
            let span = self.obs.get().map(|o| (o, o.syncer.enter(target)));
            if let Err(e) = self.wal.flush(true) {
                // Release waiters before unwinding so the reorder worker
                // cannot hang on a dead syncer.
                self.shutdown_seal_sync();
                panic!("wal-sync: WAL flush failed: {e}");
            }
            if let Some((o, span)) = span {
                if let Some(t0) = span {
                    o.fsync_us.record(t0.elapsed().as_micros() as u64);
                }
                o.syncer.exit(target, span);
            }
            let mut s = self.seal_sync.lock().unwrap();
            s.synced = s.synced.max(target);
            self.seal_done.notify_all();
        }
    }

    /// Signals the syncer worker to exit and releases every seal waiter.
    pub fn shutdown_seal_sync(&self) {
        let mut s = self.seal_sync.lock().unwrap();
        s.shutdown = true;
        self.seal_req.notify_all();
        self.seal_done.notify_all();
    }

    /// Records a committed batch's events for snapshot metadata.  Batches
    /// are chronological, so the last event carries the max timestamp.
    pub fn note_absorbed(&self, events: &[InteractionEvent]) {
        self.events_total
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        if let Some(last) = events.last() {
            let mut mt = self.max_timestamp.lock().unwrap();
            if last.timestamp > *mt {
                *mt = last.timestamp;
            }
        }
    }

    /// Records the warm-up floor for persistence in snapshot manifests.
    pub fn set_warm_timestamp(&self, t: f64) {
        *self.warm_timestamp.lock().unwrap() = t;
    }

    /// Whether the update worker should capture a snapshot at this epoch.
    pub fn wants_snapshot(&self, epoch: u64) -> bool {
        self.snapshot_every > 0 && epoch.is_multiple_of(self.snapshot_every)
    }

    /// Records delivery of an epoch's results to the client: appends the
    /// `Ack` and raises the watermark.
    pub fn ack(&self, epoch: u64) {
        self.wal
            .append(&WalRecord::Ack { epoch })
            .expect("durability: WAL ack append failed");
        if self.wal.policy() != FsyncPolicy::Always && self.seal_sync.lock().unwrap().shutdown {
            // While the pipeline is live, acks ride the next seal flush; a
            // lost ack tail only re-serves those epochs after a crash (the
            // documented at-least-once contract).  Post-drain (syncer shut
            // down) there is no later seal, so hand the record to the OS
            // here — that keeps post-drain polls in the log.
            self.wal.flush(false).expect("durability: WAL flush failed");
        }
        self.acked.fetch_max(epoch, Ordering::SeqCst);
    }

    /// The current ack watermark.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::SeqCst)
    }

    /// Seeds the ack watermark (recovery).
    pub fn set_acked(&self, epoch: u64) {
        self.acked.store(epoch, Ordering::SeqCst);
    }

    /// Seeds the metadata counters from a restored snapshot (recovery).
    pub fn seed_from_snapshot(&self, meta: &SnapshotMeta) {
        self.events_total
            .store(meta.events_total, Ordering::Relaxed);
        *self.max_timestamp.lock().unwrap() = meta.max_timestamp;
        *self.warm_timestamp.lock().unwrap() = meta.warm_timestamp;
    }

    /// Writes a snapshot from pre-captured shard payloads.  The WAL is
    /// flushed and fsynced *first*: a snapshot must never describe state the
    /// durable log cannot account for.  (With a frozen WAL — crash
    /// injection — the flush is a silent no-op; such a snapshot is exactly
    /// one whose epoch exceeds the durable ack watermark, which recovery
    /// refuses to use unless it is a `floor` snapshot, and floor snapshots
    /// are only written on paths that cannot race a freeze.)
    pub fn write_snapshot_payloads(
        &self,
        epoch: u64,
        floor: bool,
        mem: Vec<Vec<u8>>,
        nbr: Vec<Vec<u8>>,
    ) {
        let t0 = Instant::now();
        let span = self.obs.get().map(|o| (o, o.snap.enter(epoch)));
        self.wal
            .flush(true)
            .expect("durability: WAL flush before snapshot failed");
        let meta = SnapshotMeta {
            epoch,
            acked: self.acked(),
            floor,
            num_shards: mem.len() as u32,
            events_total: self.events_total.load(Ordering::Relaxed),
            max_timestamp: *self.max_timestamp.lock().unwrap(),
            warm_timestamp: *self.warm_timestamp.lock().unwrap(),
        };
        write_snapshot(&self.dir, &meta, &mem, &nbr).expect("durability: snapshot write failed");
        self.wal
            .append(&WalRecord::SnapshotMark { epoch })
            .expect("durability: WAL snapshot mark failed");
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.last_snapshot_epoch.store(epoch, Ordering::Relaxed);
        self.last_snapshot_ns
            .store(self.opened.elapsed().as_nanos() as u64, Ordering::Relaxed);
        *self.snapshot_ms_total.lock().unwrap() += t0.elapsed().as_secs_f64() * 1e3;
        if let Some((o, span)) = span {
            o.snap.exit(epoch, span);
        }
    }

    /// Writes an interval snapshot on a background thread.  The *capture* —
    /// encoding every shard at the epoch barrier — already happened in the
    /// update worker's `commit_epoch_with` observers; the file writes and
    /// their fsyncs carry no ordering constraint with pipeline compute, so
    /// they overlap it instead of stalling the single committer for the
    /// duration of the disk I/O.  At most one write is in flight: a new
    /// interval joins the previous one first (snapshot intervals dwarf write
    /// times, so this wait is normally zero), propagating its panic into the
    /// update worker — and through the usual poison guard — if it failed.
    pub fn spawn_snapshot_write(
        self: &Arc<Self>,
        epoch: u64,
        mem: Vec<Vec<u8>>,
        nbr: Vec<Vec<u8>>,
    ) {
        self.finish_snapshot_write();
        let d = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("tgnn-serve-snap".into())
            .spawn(move || d.write_snapshot_payloads(epoch, false, mem, nbr))
            .expect("durability: failed to spawn snapshot writer");
        *self.pending_snapshot.lock().unwrap() = Some(handle);
    }

    /// Joins the in-flight background snapshot write, if any, propagating
    /// its panic.  Called before quiesced snapshots (warm-up / drain) so
    /// snapshot writes never interleave.
    pub fn finish_snapshot_write(&self) {
        let prev = self.pending_snapshot.lock().unwrap().take();
        if let Some(h) = prev {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }

    /// Captures and writes a snapshot of quiesced sharded state (no pipeline
    /// activity in flight): warm-up end and clean drain.  `epoch` must be
    /// the structures' current epoch watermark; re-committing it with no
    /// writes runs the capture observers without changing state.
    pub fn snapshot_quiesced(
        &self,
        epoch: u64,
        floor: bool,
        memory: &ShardedMemory,
        table: &ShardedNeighborTable,
    ) {
        self.finish_snapshot_write();
        let n = memory.num_shards();
        let mut mem = vec![Vec::new(); n];
        memory.commit_epoch_with(epoch, &[], |s, m| encode_memory_shard(m, &mut mem[s]));
        let mut nbr = vec![Vec::new(); n];
        table.commit_epoch_with(epoch, &[], |s, t| encode_neighbor_shard(t, &mut nbr[s]));
        self.write_snapshot_payloads(epoch, floor, mem, nbr);
    }

    /// Wall-clock seconds since the last completed snapshot (since this
    /// handle was opened when none has completed yet) — the time-based
    /// snapshot-writer lag gauge.
    pub fn snapshot_lag_seconds(&self) -> f64 {
        let elapsed = self.opened.elapsed().as_nanos() as u64;
        elapsed.saturating_sub(self.last_snapshot_ns.load(Ordering::Relaxed)) as f64 / 1e9
    }

    /// Point-in-time counters for the serve report.
    pub fn stats(&self) -> DurabilityStats {
        let w = self.wal.stats();
        DurabilityStats {
            wal_records: w.records.load(Ordering::Relaxed),
            wal_bytes: w.bytes.load(Ordering::Relaxed),
            wal_fsyncs: w.fsyncs.load(Ordering::Relaxed),
            wal_rotations: w.rotations.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_ms_total: *self.snapshot_ms_total.lock().unwrap(),
            last_snapshot_epoch: self.last_snapshot_epoch.load(Ordering::Relaxed),
            acked_epoch: self.acked(),
        }
    }
}
