//! Bounded SPSC and MPMC queues with occupancy statistics.
//!
//! Each pipeline stage pair is connected by one of these: a fixed-capacity
//! FIFO whose `send` blocks when the downstream stage falls behind — that
//! blocking *is* the backpressure mechanism, propagating from the slowest
//! stage back to `StreamServer::submit`.  Closing happens by dropping the
//! [`Sender`]; the receiver then drains the remaining items and observes end
//! of stream, which is how shutdown ripples down the pipeline.
//!
//! Two flavours share the semantics:
//! * [`channel`] — single-producer single-consumer, one end per stage;
//! * [`mpmc_channel`] — multi-producer multi-consumer with clonable ends,
//!   used as the dispatch/result queues of the data-parallel GNN worker
//!   pool.  The channel closes when the last [`MpmcSender`] drops (or
//!   [`MpmcSender::close`]/[`MpmcReceiver::close`] is called explicitly), and
//!   `send` fails once every receiver is gone — so a dying worker pool can
//!   never strand a blocked producer or consumer.
//!
//! Both are a plain mutex + condvars — at micro-batch granularity (hundreds
//! of events per item) lock overhead is noise, and a mutex keeps the
//! close/backpressure semantics obvious.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Occupancy statistics of one queue, for the backpressure report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueStats {
    /// Static name of the queue (which stage pair it connects).
    pub name: &'static str,
    /// Capacity bound.
    pub capacity: usize,
    /// Total items pushed over the queue's lifetime.
    pub pushes: u64,
    /// Total items popped over the queue's lifetime.
    pub pops: u64,
    /// Depth at the moment this snapshot was taken.
    pub depth: usize,
    /// Highest depth observed right after a push.
    pub max_depth: usize,
    /// Mean depth sampled after every push *and* every pop.  Sampling both
    /// sides is what keeps the estimate unbiased: push-only sampling always
    /// observes the post-push peak and never the post-pop trough, so a queue
    /// that alternates between 1 and 0 would read 1.0 instead of ~0.5.
    pub mean_depth: f64,
    /// Number of `send` calls that had to block because the queue was full.
    pub blocked_sends: u64,
}

#[derive(Debug)]
struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    closed: AtomicBool,
    receiver_gone: AtomicBool,
    capacity: usize,
    name: &'static str,
    pushes: AtomicU64,
    pops: AtomicU64,
    depth_sum: AtomicU64,
    max_depth: AtomicUsize,
    blocked_sends: AtomicU64,
}

impl<T> Inner<T> {
    fn stats(&self) -> QueueStats {
        let pushes = self.pushes.load(Ordering::Relaxed);
        let pops = self.pops.load(Ordering::Relaxed);
        let samples = pushes + pops;
        QueueStats {
            name: self.name,
            capacity: self.capacity,
            pushes,
            pops,
            depth: self.queue.lock().unwrap().len(),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            mean_depth: if samples == 0 {
                0.0
            } else {
                self.depth_sum.load(Ordering::Relaxed) as f64 / samples as f64
            },
            blocked_sends: self.blocked_sends.load(Ordering::Relaxed),
        }
    }

    /// Records the post-pop depth so the mean sees troughs as well as peaks.
    fn note_pop(&self, depth: usize) {
        self.pops.fetch_add(1, Ordering::Relaxed);
        self.depth_sum.fetch_add(depth as u64, Ordering::Relaxed);
    }
}

/// Result of a timed receive.
#[derive(Debug, PartialEq)]
pub enum RecvResult<T> {
    /// An item arrived within the timeout.
    Item(T),
    /// The queue stayed empty for the full timeout but is still open.
    Timeout,
    /// The sender is gone and the queue is drained.
    Closed,
}

/// Producer end.  Dropping it closes the queue.
#[derive(Debug)]
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer end.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Read-only observer of a queue's live depth and statistics, held by the
/// server for reporting while the ends live inside worker threads.
#[derive(Debug, Clone)]
pub struct QueueMonitor<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded SPSC channel.
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn channel<T>(name: &'static str, capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc channel: capacity must be positive");
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::with_capacity(capacity)),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        closed: AtomicBool::new(false),
        receiver_gone: AtomicBool::new(false),
        capacity,
        name,
        pushes: AtomicU64::new(0),
        pops: AtomicU64::new(0),
        depth_sum: AtomicU64::new(0),
        max_depth: AtomicUsize::new(0),
        blocked_sends: AtomicU64::new(0),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Pushes an item, blocking while the queue is full (backpressure).
    /// Returns the item back if the receiver is gone.
    pub fn send(&self, item: T) -> Result<(), T> {
        let inner = &*self.inner;
        if inner.receiver_gone.load(Ordering::Acquire) {
            return Err(item);
        }
        let mut q = inner.queue.lock().unwrap();
        if q.len() >= inner.capacity {
            inner.blocked_sends.fetch_add(1, Ordering::Relaxed);
            while q.len() >= inner.capacity {
                if inner.receiver_gone.load(Ordering::Acquire) {
                    return Err(item);
                }
                q = inner.not_full.wait(q).unwrap();
            }
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        inner.pushes.fetch_add(1, Ordering::Relaxed);
        inner.depth_sum.fetch_add(depth as u64, Ordering::Relaxed);
        inner.max_depth.fetch_max(depth, Ordering::Relaxed);
        inner.not_empty.notify_one();
        Ok(())
    }

    /// A monitoring handle for this queue.
    pub fn monitor(&self) -> QueueMonitor<T> {
        QueueMonitor {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // The flag store and the notify must happen under the queue mutex:
        // a receiver checks `closed` and then waits while holding that mutex,
        // so notifying lock-free could land between its check and its wait —
        // a lost wakeup that would park the receiver forever.
        let _guard = self.inner.queue.lock().unwrap();
        self.inner.closed.store(true, Ordering::Release);
        self.inner.not_empty.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Pops the next item, blocking until one arrives.  Returns `None` once
    /// the queue is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let inner = &*self.inner;
        let mut q = inner.queue.lock().unwrap();
        loop {
            if let Some(item) = q.pop_front() {
                let depth = q.len();
                drop(q);
                inner.note_pop(depth);
                inner.not_full.notify_one();
                return Some(item);
            }
            if inner.closed.load(Ordering::Acquire) {
                return None;
            }
            q = inner.not_empty.wait(q).unwrap();
        }
    }

    /// Pops the next item, blocking at most `timeout`.  Distinguishes an
    /// empty-but-open queue (Timeout) from a closed-and-drained one (Closed),
    /// which the deadline-driven batcher needs.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvResult<T> {
        let inner = &*self.inner;
        let deadline = std::time::Instant::now() + timeout;
        let mut q = inner.queue.lock().unwrap();
        loop {
            if let Some(item) = q.pop_front() {
                let depth = q.len();
                drop(q);
                inner.note_pop(depth);
                inner.not_full.notify_one();
                return RecvResult::Item(item);
            }
            if inner.closed.load(Ordering::Acquire) {
                return RecvResult::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return RecvResult::Timeout;
            }
            let (guard, _) = inner.not_empty.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
    }

    /// Non-blocking pop.
    pub fn try_recv(&self) -> Option<T> {
        let inner = &*self.inner;
        let mut q = inner.queue.lock().unwrap();
        let item = q.pop_front();
        let depth = q.len();
        drop(q);
        if item.is_some() {
            inner.note_pop(depth);
            inner.not_full.notify_one();
        }
        item
    }

    /// A monitoring handle for this queue.
    pub fn monitor(&self) -> QueueMonitor<T> {
        QueueMonitor {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Same lost-wakeup discipline as Sender::drop: a sender checks
        // `receiver_gone` and waits under the queue mutex.
        let _guard = self.inner.queue.lock().unwrap();
        self.inner.receiver_gone.store(true, Ordering::Release);
        self.inner.not_full.notify_all();
    }
}

impl<T> QueueMonitor<T> {
    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.inner.stats()
    }
}

// ---------------------------------------------------------------------------
// MPMC variant
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct MpmcState<T> {
    queue: VecDeque<T>,
    /// Live `MpmcSender` clones; the channel closes when this reaches 0.
    senders: usize,
    /// Live `MpmcReceiver` clones; `send` fails when this reaches 0.
    receivers: usize,
    /// Set by the last sender dropping or an explicit `close()` from either
    /// end: no further sends succeed, receivers drain then observe Closed.
    closed: bool,
}

#[derive(Debug)]
struct MpmcInner<T> {
    state: Mutex<MpmcState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    name: &'static str,
    pushes: AtomicU64,
    pops: AtomicU64,
    depth_sum: AtomicU64,
    max_depth: AtomicUsize,
    blocked_sends: AtomicU64,
}

impl<T> MpmcInner<T> {
    fn stats(&self) -> QueueStats {
        let pushes = self.pushes.load(Ordering::Relaxed);
        let pops = self.pops.load(Ordering::Relaxed);
        let samples = pushes + pops;
        QueueStats {
            name: self.name,
            capacity: self.capacity,
            pushes,
            pops,
            depth: self.state.lock().unwrap().queue.len(),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            mean_depth: if samples == 0 {
                0.0
            } else {
                self.depth_sum.load(Ordering::Relaxed) as f64 / samples as f64
            },
            blocked_sends: self.blocked_sends.load(Ordering::Relaxed),
        }
    }

    /// Records the post-pop depth so the mean sees troughs as well as peaks.
    fn note_pop(&self, depth: usize) {
        self.pops.fetch_add(1, Ordering::Relaxed);
        self.depth_sum.fetch_add(depth as u64, Ordering::Relaxed);
    }

    /// Marks the channel closed and wakes every blocked sender and receiver.
    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Clonable producer end of an MPMC channel.
#[derive(Debug)]
pub struct MpmcSender<T> {
    inner: Arc<MpmcInner<T>>,
}

/// Clonable consumer end of an MPMC channel.
#[derive(Debug)]
pub struct MpmcReceiver<T> {
    inner: Arc<MpmcInner<T>>,
}

/// Read-only observer of an MPMC queue's depth and statistics.
#[derive(Debug, Clone)]
pub struct MpmcMonitor<T> {
    inner: Arc<MpmcInner<T>>,
}

/// Creates a bounded MPMC channel.  Both ends are clonable; the channel
/// closes when the last sender drops (or either end calls `close()`).
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn mpmc_channel<T>(name: &'static str, capacity: usize) -> (MpmcSender<T>, MpmcReceiver<T>) {
    assert!(capacity > 0, "mpmc channel: capacity must be positive");
    let inner = Arc::new(MpmcInner {
        state: Mutex::new(MpmcState {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
            closed: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        name,
        pushes: AtomicU64::new(0),
        pops: AtomicU64::new(0),
        depth_sum: AtomicU64::new(0),
        max_depth: AtomicUsize::new(0),
        blocked_sends: AtomicU64::new(0),
    });
    (
        MpmcSender {
            inner: inner.clone(),
        },
        MpmcReceiver { inner },
    )
}

impl<T> MpmcSender<T> {
    /// Pushes an item, blocking while the queue is full (backpressure).
    /// Returns the item back if the channel is closed or every receiver is
    /// gone — including when either happens *while* blocked.
    pub fn send(&self, item: T) -> Result<(), T> {
        let inner = &*self.inner;
        let mut state = inner.state.lock().unwrap();
        let mut counted_block = false;
        loop {
            if state.closed || state.receivers == 0 {
                return Err(item);
            }
            if state.queue.len() < inner.capacity {
                state.queue.push_back(item);
                let depth = state.queue.len();
                drop(state);
                inner.pushes.fetch_add(1, Ordering::Relaxed);
                inner.depth_sum.fetch_add(depth as u64, Ordering::Relaxed);
                inner.max_depth.fetch_max(depth, Ordering::Relaxed);
                inner.not_empty.notify_one();
                return Ok(());
            }
            if !counted_block {
                inner.blocked_sends.fetch_add(1, Ordering::Relaxed);
                counted_block = true;
            }
            state = inner.not_full.wait(state).unwrap();
        }
    }

    /// Closes the channel: blocked and future `send`s fail, receivers drain
    /// the remaining items and then observe end of stream.
    pub fn close(&self) {
        self.inner.close();
    }

    /// A monitoring handle for this queue.
    pub fn monitor(&self) -> MpmcMonitor<T> {
        MpmcMonitor {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for MpmcSender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for MpmcSender<T> {
    fn drop(&mut self) {
        // Count decrement, close flag, and wakeup all happen under the state
        // mutex — same lost-wakeup discipline as the SPSC ends.
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        let last = state.senders == 0;
        if last {
            state.closed = true;
        }
        drop(state);
        if last {
            self.inner.not_empty.notify_all();
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> MpmcReceiver<T> {
    /// Pops the next item, blocking until one arrives.  Returns `None` once
    /// the channel is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let inner = &*self.inner;
        let mut state = inner.state.lock().unwrap();
        loop {
            if let Some(item) = state.queue.pop_front() {
                let depth = state.queue.len();
                drop(state);
                inner.note_pop(depth);
                inner.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = inner.not_empty.wait(state).unwrap();
        }
    }

    /// Closes the channel from the consumer side: blocked and future `send`s
    /// fail, remaining items stay poppable.
    pub fn close(&self) {
        self.inner.close();
    }

    /// A monitoring handle for this queue.
    pub fn monitor(&self) -> MpmcMonitor<T> {
        MpmcMonitor {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for MpmcReceiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for MpmcReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Senders blocked on a full queue must fail, not wait forever.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> MpmcMonitor<T> {
    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_close_semantics() {
        let (tx, rx) = channel::<u32>("test", 4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None); // closed and drained
    }

    #[test]
    fn send_blocks_on_full_queue_until_consumer_drains() {
        let (tx, rx) = channel::<u32>("test", 2);
        let producer = thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            tx.monitor().stats()
        });
        let mut got = Vec::new();
        while let Some(x) = rx.recv() {
            got.push(x);
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        let stats = producer.join().unwrap();
        assert_eq!(stats.pushes, 10);
        assert!(stats.max_depth <= 2);
        assert!(stats.blocked_sends > 0, "slow consumer must cause blocking");
    }

    #[test]
    fn mean_depth_samples_pops_not_just_pushes() {
        // Strict push → pop alternation: depth is 1 after every push and 0
        // after every pop, so the unbiased mean is 0.5.  The old push-only
        // sampling reported 1.0 — the regression this test pins down.
        let (tx, rx) = channel::<u32>("test", 2);
        for i in 0..1000 {
            tx.send(i).unwrap();
            assert_eq!(rx.recv(), Some(i));
        }
        let stats = tx.monitor().stats();
        assert_eq!(stats.pushes, 1000);
        assert_eq!(stats.pops, 1000);
        assert!(
            (stats.mean_depth - 0.5).abs() < 1e-9,
            "push-only sampling bias: mean_depth = {}",
            stats.mean_depth
        );
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn mpmc_mean_depth_samples_pops_not_just_pushes() {
        let (tx, rx) = mpmc_channel::<u32>("test", 2);
        for i in 0..1000 {
            tx.send(i).unwrap();
            assert_eq!(rx.recv(), Some(i));
        }
        let stats = tx.monitor().stats();
        assert_eq!(stats.pushes, 1000);
        assert_eq!(stats.pops, 1000);
        assert!(
            (stats.mean_depth - 0.5).abs() < 1e-9,
            "push-only sampling bias: mean_depth = {}",
            stats.mean_depth
        );
    }

    #[test]
    fn stats_report_live_depth() {
        let (tx, rx) = channel::<u32>("test", 8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        assert_eq!(tx.monitor().stats().depth, 3);
        rx.recv().unwrap();
        assert_eq!(rx.monitor().stats().depth, 2);
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let (tx, rx) = channel::<u32>("test", 1);
        assert_eq!(rx.try_recv(), None);
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Some(7));
    }

    #[test]
    fn send_fails_when_receiver_dropped_and_queue_full() {
        let (tx, rx) = channel::<u32>("test", 1);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(2));
    }

    #[test]
    fn mpmc_fifo_and_close_on_last_sender_drop() {
        let (tx, rx) = mpmc_channel::<u32>("test", 4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1)); // still open: tx2 alive
        drop(tx2);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None); // closed and drained
    }

    #[test]
    fn mpmc_many_producers_many_consumers_deliver_every_item() {
        let (tx, rx) = mpmc_channel::<u32>("test", 3);
        let mut producers = Vec::new();
        for p in 0..4u32 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = rx.recv() {
                    got.push(x);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn mpmc_explicit_close_fails_blocked_sender_and_drains_receiver() {
        let (tx, rx) = mpmc_channel::<u32>("test", 1);
        tx.send(7).unwrap();
        let blocked = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(8))
        };
        thread::sleep(Duration::from_millis(10));
        rx.close();
        assert_eq!(blocked.join().unwrap(), Err(8));
        assert_eq!(rx.recv(), Some(7)); // remaining item stays poppable
        assert_eq!(rx.recv(), None);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn mpmc_send_fails_once_every_receiver_is_gone() {
        let (tx, rx) = mpmc_channel::<u32>("test", 1);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        drop(rx);
        let blocked = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(2))
        };
        thread::sleep(Duration::from_millis(10));
        drop(rx2); // last receiver: blocked send must fail, not hang
        assert_eq!(blocked.join().unwrap(), Err(2));
    }
}
