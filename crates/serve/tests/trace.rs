//! Causal-trace conservation: every traced epoch's additive segments —
//! ingress wait, seal wait, sample, memory, GNN, reorder barrier, WAL-sync
//! wait, deliver — must tile the measured admit→deliver latency.  The
//! property is checked across seeds × shards × gnn_workers, with and
//! without durability (the durability run must surface a non-zero WAL-sync
//! wait segment somewhere), plus the tail/head exemplar retention and the
//! SLO engine's end-to-end wiring.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{ModelConfig, OptimizationVariant, TgnModel};
use tgnn_data::{generate, tiny};
use tgnn_durable::{DurabilityConfig, FsyncPolicy};
use tgnn_graph::TemporalGraph;
use tgnn_serve::{
    BurnState, CriticalPath, SegmentId, ServeConfig, SloConfig, StreamServer, TraceView,
};
use tgnn_tensor::TensorRng;

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::Baseline);
    let model = TgnModel::new(cfg, &mut TensorRng::new(seed));
    (model, Arc::new(graph))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let p = std::env::temp_dir().join(format!("tgnn-trace-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Sum of the additive segments of one decoded trace.
fn additive_sum(v: &TraceView) -> Duration {
    v.total_where(|c| SegmentId::from_code(c).is_some_and(|s| s.is_additive()))
}

/// The recorded `Total` reference segment, if the trace is complete.
fn total_of(v: &TraceView) -> Option<Duration> {
    let t = v.total_where(|c| c == SegmentId::Total.code());
    (t > Duration::ZERO).then_some(t)
}

/// Asserts Σ(additive) ≈ Total for every *complete* trace in the dump and
/// returns how many were checked.  Traces whose epoch was still in flight
/// at drain (no `Total` yet) are skipped; evicted slots never decode.
fn assert_conserved(traces: &[TraceView], label: &str) -> usize {
    let mut checked = 0;
    for v in traces {
        let Some(total) = total_of(v) else { continue };
        let sum = additive_sum(v);
        let diff = sum.abs_diff(total);
        // 5 % relative, plus a small absolute slack for sub-millisecond
        // epochs where scheduler jitter between the two `Instant::now()`
        // reads at a stage boundary dominates the ratio.
        let budget =
            Duration::from_secs_f64(total.as_secs_f64() * 0.05) + Duration::from_micros(500);
        assert!(
            diff <= budget,
            "{label}: epoch {} additive sum {:?} vs total {:?} (diff {:?} > budget {:?})",
            v.epoch,
            sum,
            total,
            diff,
            budget,
        );
        checked += 1;
    }
    checked
}

/// Runs the full feed through a server and returns (dump, polled batches).
fn run(config: ServeConfig, seed: u64) -> (Vec<TraceView>, usize) {
    let (model, graph) = setup(seed);
    let mut server = StreamServer::new(model, graph.clone(), config);
    let hub = server.metrics_hub();
    let mut polled = 0usize;
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {
            polled += 1;
        }
    }
    server.drain();
    while server.poll().is_some() {
        polled += 1;
    }
    (hub.trace_dump(), polled)
}

#[test]
fn additive_segments_tile_the_measured_latency_across_topologies() {
    for &(seed, shards, workers) in &[(3u64, 1usize, 1usize), (5, 2, 2), (7, 4, 3)] {
        let config = ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            num_shards: shards,
            gnn_workers: workers,
            ..ServeConfig::default()
        };
        let label = format!("seed={seed} shards={shards} workers={workers}");
        let (traces, polled) = run(config, seed);
        assert!(polled > 0, "{label}: nothing served");
        let checked = assert_conserved(&traces, &label);
        assert!(checked > 0, "{label}: no complete traces to check");
    }
}

#[test]
fn durability_run_conserves_and_surfaces_wal_sync_wait() {
    // Lockstep feed: submit exactly one epoch's worth of events, then
    // spin-poll until it delivers.  With the pipeline this shallow the
    // batch completes well inside the syncer's group-commit window, so the
    // spin itself witnesses the blocked delivery gate — the race that a
    // free-running feed only wins on warm-up epochs.
    let dir = TempDir::new("conserve");
    let config = ServeConfig {
        max_batch: 2,
        batch_deadline: Duration::from_secs(3600),
        num_shards: 2,
        gnn_workers: 2,
        durability: Some(DurabilityConfig::new(dir.path()).with_fsync(FsyncPolicy::OnSeal)),
        ..ServeConfig::default()
    };
    let (model, graph) = setup(9);
    let mut server = StreamServer::new(model, graph.clone(), config);
    let hub = server.metrics_hub();
    let mut polled = 0usize;
    for pair in graph.events().chunks(2).take(40) {
        for &e in pair {
            server.submit(e).unwrap();
        }
        if pair.len() < 2 {
            break;
        }
        let t0 = std::time::Instant::now();
        while server.poll().is_none() {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "epoch never delivered"
            );
            std::hint::spin_loop();
        }
        polled += 1;
    }
    server.drain();
    while server.poll().is_some() {
        polled += 1;
    }
    let traces = hub.trace_dump();
    assert!(polled > 0);
    let checked = assert_conserved(&traces, "durability");
    assert!(checked > 0, "no complete traces to check");
    let wal_waited = traces
        .iter()
        .any(|v| v.total_where(|c| c == SegmentId::WalSyncWait.code()) > Duration::ZERO);
    assert!(
        wal_waited,
        "OnSeal fsync should produce a non-zero WAL-sync wait segment"
    );
}

#[test]
fn critical_path_blames_the_dominant_segment() {
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        gnn_workers: 2,
        ..ServeConfig::default()
    };
    let (traces, _) = run(config, 13);
    let mut cp = CriticalPath::new();
    let mut complete = 0usize;
    for v in &traces {
        if total_of(v).is_some() {
            // The analyzer ranks whatever it is fed; blame wants only the
            // additive decomposition, not the informational per-part or
            // reference segments.
            let additive: Vec<_> = v
                .segments
                .iter()
                .filter(|s| SegmentId::from_code(s.code).is_some_and(|id| id.is_additive()))
                .copied()
                .collect();
            cp.observe(&additive);
            complete += 1;
        }
    }
    assert!(complete > 0);
    let blame = cp.blame();
    assert!(!blame.is_empty());
    // Every blamed code decodes, fractions sum to ~1 over additive codes,
    // and the dominant-epoch counts account for every observed trace.
    let mut frac = 0.0;
    let mut dominant = 0usize;
    for b in &blame {
        let seg = SegmentId::from_code(b.code).expect("blame code decodes");
        assert!(seg.is_additive(), "blame only ranks additive segments");
        frac += b.fraction;
        dominant += b.dominant_in;
    }
    assert!((frac - 1.0).abs() < 1e-9, "fractions sum to 1, got {frac}");
    assert_eq!(
        dominant, complete,
        "each trace has exactly one dominant segment"
    );
}

#[test]
fn tail_and_head_exemplars_are_retained_in_the_snapshot() {
    let (model, graph) = setup(17);
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        gnn_workers: 2,
        // Head-sample every delivered epoch so the ring cannot be empty.
        metrics_sampling: 1,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}
    let m = server.metrics();
    assert!(m.trace.begun > 0, "traces must have begun");
    assert!(
        !m.trace.exemplars.is_empty(),
        "the first delivery always lands in the current p99 bucket"
    );
    assert!(!m.trace.head_samples.is_empty());
    assert!(m.trace.delivery_p99_ms > 0.0);
    for ex in m.trace.exemplars.iter().chain(&m.trace.head_samples) {
        assert!(ex.epoch > 0, "epoch 0 is the untraced sentinel");
        assert!(
            total_of(&ex.view).is_some(),
            "exemplars are complete traces"
        );
    }
}

#[test]
fn slo_engine_reports_latency_and_drop_lanes_from_live_traffic() {
    let (model, graph) = setup(19);
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        gnn_workers: 2,
        slo: Some(SloConfig {
            // Generous objective: healthy traffic must not fire.
            latency_objective: Duration::from_secs(5),
            ..SloConfig::default()
        }),
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}
    let m = server.metrics();
    assert_eq!(m.slo.len(), 2, "latency + drops objectives");
    let latency = m.slo.iter().find(|s| s.name == "latency").unwrap();
    let drops = m.slo.iter().find(|s| s.name == "drops").unwrap();
    // Traffic flowed within the objective on both lanes: the fast window
    // has data and nothing fires.
    assert!(latency.fast_burn.is_some(), "latency lane saw traffic");
    assert_eq!(latency.state, BurnState::Ok);
    assert!(drops.fast_burn.is_some(), "drop lane saw traffic");
    assert_eq!(drops.state, BurnState::Ok);
    // And the renderers cover the new sections.
    assert!(m.render_table().contains("slo"));
    assert!(m.to_prometheus().contains("tgnn_slo_burn_rate"));
    assert!(m.to_json_line().contains("\"slo\""));
    assert!(m.to_json_line().contains("\"trace\""));
}

#[test]
fn metrics_off_disables_tracing_entirely() {
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        metrics: false,
        ..ServeConfig::default()
    };
    let (model, graph) = setup(23);
    let mut server = StreamServer::new(model, graph.clone(), config);
    let hub = server.metrics_hub();
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}
    assert!(hub.trace_dump().is_empty(), "metrics off ⇒ no traces");
    let m = server.metrics();
    assert_eq!(m.trace.begun, 0);
    assert!(m.trace.exemplars.is_empty());
}
