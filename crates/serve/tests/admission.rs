//! Adversarial tests of the multi-tenant admission layer: weighted-fair
//! scheduling under sustained overload, overload-policy behaviour at tiny
//! queue bounds, drain semantics with in-flight drops, and the disposition
//! metadata contract (`Late` flags, never alters, results).
//!
//! The style follows the PR-3 concurrency suite: tiny bounds everywhere so
//! submission immediately outruns the pipeline and every run executes under
//! the conditions the policies exist for.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{
    Disposition, ExecMode, InferenceEngine, ModelConfig, OptimizationVariant, OverloadPolicy,
    TenantId, TgnModel,
};
use tgnn_data::{generate, tiny};
use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};
use tgnn_serve::{ServeConfig, ServedBatch, StreamServer, SubmitError, TenantSpec};
use tgnn_tensor::TensorRng;

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::NpMedium);
    let model = TgnModel::new(cfg, &mut TensorRng::new(seed ^ 0xad3));
    (model, Arc::new(graph))
}

/// Stable identity of an event for accounting across submit and serve.
fn key(e: &InteractionEvent) -> (u32, u32, u32, u64) {
    (e.src, e.dst, e.edge_id, e.timestamp.to_bits())
}

/// Submits `events` round-robin across the server's `n` tenants as fast as
/// possible, polling opportunistically, then drains.  Returns the served
/// batches and the report, plus the per-event tenant assignment and which
/// events were admitted vs dropped at submit time.
#[allow(clippy::type_complexity)]
fn run_multi_tenant(
    model: TgnModel,
    graph: &Arc<TemporalGraph>,
    events: &[InteractionEvent],
    config: ServeConfig,
    n: u32,
) -> (
    Vec<ServedBatch>,
    tgnn_serve::ServeReport,
    HashMap<(u32, u32, u32, u64), TenantId>,
    Vec<InteractionEvent>,
    Vec<InteractionEvent>,
) {
    let mut server = StreamServer::new(model, graph.clone(), config);
    let mut assignment = HashMap::new();
    let mut admitted = Vec::new();
    let mut dropped = Vec::new();
    let mut served = Vec::new();
    for (i, &e) in events.iter().enumerate() {
        let tenant = TenantId(i as u32 % n);
        assignment.insert(key(&e), tenant);
        let outcome = server
            .submit_for(tenant, e)
            .unwrap_or_else(|err| panic!("submit_for({tenant}) failed: {err}"));
        if outcome.is_admitted() {
            admitted.push(e);
        } else {
            dropped.push(e);
        }
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    (served, report, assignment, admitted, dropped)
}

/// Sorted multiset of event identities.
fn multiset(events: impl Iterator<Item = InteractionEvent>) -> Vec<(u32, u32, u32, u64)> {
    let mut v: Vec<_> = events.map(|e| key(&e)).collect();
    v.sort_unstable();
    v
}

#[test]
fn drop_policies_never_drop_admitted_events() {
    // The no-loss property of the drop policies: every event is either
    // admitted (and then served exactly once, even those still queued at
    // drain time) or dropped at submit (and never served) — across
    // policies, seeds, and worker counts, with tiny bounds so drops and
    // backpressure actually happen.
    for seed in [3u64, 23] {
        let (model, graph) = setup(seed);
        let events = &graph.events()[..220.min(graph.num_events())];
        for policy in [OverloadPolicy::DropNewest, OverloadPolicy::DropOldest] {
            for gnn_workers in [1usize, 2] {
                let label = format!("seed={seed} policy={} gnn={gnn_workers}", policy.label());
                let tenants: Vec<TenantSpec> = (0..3)
                    .map(|i| {
                        TenantSpec::new(format!("t{i}"))
                            .with_weight(1 + i as u32)
                            .with_capacity(4)
                            .with_policy(policy)
                    })
                    .collect();
                let config = ServeConfig {
                    max_batch: 5,
                    batch_deadline: Duration::from_secs(3600),
                    admission_capacity: 4,
                    stage_capacity: 1,
                    results_capacity: 2,
                    num_shards: 2,
                    gnn_workers,
                    tenants,
                    ..ServeConfig::default()
                };
                let (served, report, assignment, admitted, dropped) =
                    run_multi_tenant(model.clone(), &graph, events, config, 3);

                // Exactly-once accounting.  The two policies differ in
                // *where* the loss is visible: DropNewest rejects at submit
                // (outcome `Dropped`, admitted events untouchable), while
                // DropOldest always admits the incoming event but may evict
                // an earlier admitted-but-not-yet-scheduled one (visible
                // only in the report's eviction counter).  In both cases an
                // event the scheduler has sealed into a batch is never lost.
                assert_eq!(admitted.len() + dropped.len(), events.len(), "{label}");
                let served_events = multiset(served.iter().flat_map(|b| b.events.iter().copied()));
                let admitted_keys = multiset(admitted.iter().copied());
                let total_evicted: u64 = report
                    .tenants
                    .iter()
                    .map(|t| t.counters.dropped_oldest)
                    .sum();
                match policy {
                    OverloadPolicy::DropNewest => {
                        assert_eq!(
                            served_events, admitted_keys,
                            "{label}: every admitted event is served exactly once"
                        );
                        assert_eq!(total_evicted, 0, "{label}");
                    }
                    OverloadPolicy::DropOldest => {
                        assert!(dropped.is_empty(), "{label}: DropOldest always admits");
                        assert!(
                            served_events
                                .iter()
                                .all(|k| admitted_keys.binary_search(k).is_ok()),
                            "{label}: served events must all have been admitted"
                        );
                        assert_eq!(
                            served_events.len() + total_evicted as usize,
                            admitted_keys.len(),
                            "{label}: admitted = served + evicted, nothing else"
                        );
                    }
                    _ => unreachable!(),
                }
                for k in multiset(dropped.iter().copied()).iter() {
                    assert!(
                        served_events.binary_search(k).is_err(),
                        "{label}: a dropped event was served"
                    );
                }

                // Report-side accounting agrees with the client's view.
                let total_dropped: u64 = report.tenants.iter().map(|t| t.dropped()).sum();
                let total_served: u64 = report.tenants.iter().map(|t| t.served).sum();
                assert_eq!(
                    total_dropped as usize,
                    dropped.len() + total_evicted as usize,
                    "{label}"
                );
                assert_eq!(total_served as usize, served_events.len(), "{label}");
                for t in &report.tenants {
                    assert!(
                        t.counters.max_depth <= 4,
                        "{label}: ingress depth {} exceeded the bound",
                        t.counters.max_depth
                    );
                    match policy {
                        OverloadPolicy::DropNewest => {
                            assert_eq!(t.counters.dropped_oldest, 0, "{label}")
                        }
                        OverloadPolicy::DropOldest => {
                            assert_eq!(t.counters.dropped_newest, 0, "{label}")
                        }
                        _ => unreachable!(),
                    }
                }
                assert!(
                    total_dropped > 0,
                    "{label}: overload at capacity 4 must cause drops"
                );

                // Tenant attribution on every result matches the submitter.
                for b in &served {
                    assert_eq!(b.metas.len(), b.events.len(), "{label}");
                    for (e, m) in b.events.iter().zip(&b.metas) {
                        assert_eq!(assignment[&key(e)], m.tenant, "{label}");
                        assert_eq!(m.disposition, Disposition::OnTime, "{label}");
                    }
                }
            }
        }
    }
}

#[test]
fn weighted_fair_draining_bounds_every_tenants_share_under_overload() {
    // Four tenants with skewed weights 4:2:1:1 all offered the same load
    // (round-robin from one feed), tiny ingress AND downstream bounds so
    // the pipeline's slowness backs up into the scheduler, and DropNewest
    // so the excess is shed rather than throttled.  Submission is paced
    // just enough for the scheduler and stage workers to run concurrently
    // (this is a 1-vCPU-friendly rendition of sustained overload): every
    // tenant stays backlogged, so its *service* share must track
    // weight/Σweights.  The bound asserted is the acceptance criterion:
    // every tenant — including the 1-weight one — within 2× of its fair
    // share either way.
    let (model, graph) = setup(11);
    let weights = [4u32, 2, 1, 1];
    let tenants: Vec<TenantSpec> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            TenantSpec::new(format!("t{i}"))
                .with_weight(w)
                .with_capacity(8)
                .with_policy(OverloadPolicy::DropNewest)
        })
        .collect();
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_secs(3600),
        admission_capacity: 2,
        stage_capacity: 1,
        results_capacity: 2,
        num_shards: 2,
        tenants,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    // Recycle the event feed with strictly advancing timestamps so the
    // overload phase lasts long enough for many scheduler rounds.
    let base = &graph.events()[..200.min(graph.num_events())];
    let span = 1.0 + base.last().unwrap().timestamp - base[0].timestamp;
    let mut submitted = 0u64;
    let mut dropped = 0u64;
    for lap in 0..40u64 {
        for (i, &e) in base.iter().enumerate() {
            let mut e = e;
            e.timestamp += lap as f64 * span;
            let tenant = TenantId(i as u32 % 4);
            if !server.submit_for(tenant, e).unwrap().is_admitted() {
                dropped += 1;
            }
            submitted += 1;
            while server.poll().is_some() {}
        }
        // Yield the core so the scheduler and stage workers interleave with
        // submission — sustained overload, not a burst-then-drain.
        std::thread::sleep(Duration::from_micros(500));
    }
    let report = server.drain();
    while server.poll().is_some() {}

    assert!(
        dropped > submitted / 10,
        "the run must be heavily overloaded (dropped {dropped} of {submitted})"
    );
    let total_served: u64 = report.tenants.iter().map(|t| t.served).sum();
    let total_weight: u32 = weights.iter().sum();
    for (i, t) in report.tenants.iter().enumerate() {
        let fair = total_served as f64 * weights[i] as f64 / total_weight as f64;
        assert!(
            (t.served as f64) >= fair / 2.0 && (t.served as f64) <= fair * 2.0,
            "tenant {i} (weight {}): served {} vs fair share {:.1} — outside 2× \
             (report: {:?})",
            weights[i],
            t.served,
            fair,
            report
                .tenants
                .iter()
                .map(|t| (t.name.clone(), t.served, t.dropped()))
                .collect::<Vec<_>>()
        );
        assert!(t.drop_rate() > 0.0, "tenant {i} must shed load");
    }
    // The heaviest tenant must clearly out-serve the lightest.
    assert!(
        report.tenants[0].served > report.tenants[3].served,
        "weight-4 tenant ({}) must out-serve weight-1 tenant ({})",
        report.tenants[0].served,
        report.tenants[3].served
    );
}

#[test]
fn late_policy_flags_deadline_misses_without_altering_results() {
    // Two identical runs under OverloadPolicy::Late differing only in the
    // deadline: an unmissable one (1 hour) and an unmeetable one (zero).
    // Every embedding must be bitwise identical between the runs — the
    // disposition flag is the only difference.
    let (model, graph) = setup(7);
    let events = &graph.events()[..160.min(graph.num_events())];
    let run = |deadline: Duration| -> Vec<ServedBatch> {
        let config = ServeConfig {
            max_batch: 13,
            batch_deadline: Duration::from_secs(3600),
            num_shards: 2,
            tenants: vec![TenantSpec::new("late-tenant")
                .with_capacity(64)
                .with_policy(OverloadPolicy::Late)
                .with_deadline(deadline)],
            ..ServeConfig::default()
        };
        let mut server = StreamServer::new(model.clone(), graph.clone(), config);
        let mut served = Vec::new();
        for &e in events {
            server.submit_for(TenantId::DEFAULT, e).unwrap();
            while let Some(b) = server.poll() {
                served.push(b);
            }
        }
        server.drain();
        while let Some(b) = server.poll() {
            served.push(b);
        }
        served
    };
    let on_time = run(Duration::from_secs(3600));
    let late = run(Duration::ZERO);

    assert_eq!(on_time.len(), late.len());
    let mut late_count = 0usize;
    for (a, b) in on_time.iter().zip(&late) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.events, b.events, "batch boundaries must be identical");
        assert_eq!(
            a.embeddings, b.embeddings,
            "Late results must be bitwise-identical to on-time results"
        );
        for m in &a.metas {
            assert_eq!(m.disposition, Disposition::OnTime);
        }
        for m in &b.metas {
            assert_eq!(m.disposition, Disposition::Late);
            late_count += 1;
        }
    }
    assert_eq!(
        late_count,
        events.len(),
        "every zero-deadline result is late"
    );
}

#[test]
fn multi_tenant_block_policy_serves_everything_bit_identically() {
    // Block policy on every tenant: nothing may be dropped even with tiny
    // bounds (pure backpressure), and replaying the served micro-batch
    // sequence through the serial engine must reproduce the embeddings
    // bitwise — the weighted-fair merge reorders *scheduling*, never
    // *semantics*.
    let (model, graph) = setup(19);
    let events = &graph.events()[..200.min(graph.num_events())];
    let tenants: Vec<TenantSpec> = (0..2)
        .map(|i| {
            TenantSpec::new(format!("t{i}"))
                .with_weight(1 + i as u32 * 3)
                .with_capacity(4)
                .with_policy(OverloadPolicy::Block)
        })
        .collect();
    let config = ServeConfig {
        max_batch: 7,
        batch_deadline: Duration::from_secs(3600),
        stage_capacity: 1,
        results_capacity: 2,
        num_shards: 3,
        tenants,
        ..ServeConfig::default()
    };
    let (served, report, _, admitted, dropped) =
        run_multi_tenant(model.clone(), &graph, events, config, 2);
    assert!(dropped.is_empty(), "Block must never drop");
    assert_eq!(admitted.len(), events.len());
    let total: usize = served.iter().map(|b| b.events.len()).sum();
    assert_eq!(total, events.len(), "everything submitted is served");
    assert!(
        report.backpressure_blocks > 0,
        "tiny bounds must produce client-visible backpressure"
    );

    // Bitwise replay: the engine is fed exactly the scheduler's merged
    // micro-batch sequence.
    let mut engine = InferenceEngine::new(model, graph.num_nodes()).with_mode(ExecMode::Serial);
    for batch in &served {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), &graph);
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "multi-tenant pipeline diverged bitwise from the serial engine in epoch {}",
            batch.epoch
        );
    }
}

#[test]
fn unknown_tenant_and_drained_server_are_rejected() {
    let (model, graph) = setup(2);
    let config = ServeConfig {
        tenants: vec![TenantSpec::new("a"), TenantSpec::new("b")],
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    let e = graph.events()[0];
    assert!(matches!(
        server.submit_for(TenantId(2), e),
        Err(SubmitError::UnknownTenant(TenantId(2)))
    ));
    server.submit_for(TenantId(1), e).unwrap();
    // Per-tenant chronology: tenant 1 cannot go backwards, tenant 0 can
    // still start anywhere.
    let mut old = e;
    old.timestamp = e.timestamp - 1.0;
    assert!(matches!(
        server.submit_for(TenantId(1), old),
        Err(SubmitError::OutOfOrder { .. })
    ));
    server.submit_for(TenantId(0), old).unwrap();
    let report = server.drain();
    assert_eq!(report.num_events, 2);
    assert!(matches!(
        server.submit_for(TenantId(0), e),
        Err(SubmitError::Closed)
    ));
    assert_eq!(report.tenants.len(), 2);
    assert_eq!(report.tenants[0].name, "a");
    assert_eq!(report.tenants[1].served, 1);
}

#[test]
fn single_tenant_default_reports_one_block_policy_tenant() {
    // The implicit single-tenant configuration must look like one
    // Block-policy tenant in the report, preserving the legacy contract.
    let (model, graph) = setup(5);
    let mut server = StreamServer::new(model, graph.clone(), ServeConfig::default());
    for &e in &graph.events()[..50] {
        server.submit(e).unwrap();
    }
    let report = server.drain();
    assert_eq!(report.tenants.len(), 1);
    let t = &report.tenants[0];
    assert_eq!(t.name, "default");
    assert_eq!(t.policy, OverloadPolicy::Block);
    assert_eq!(t.weight, 1);
    assert_eq!(t.counters.submitted, 50);
    assert_eq!(t.served, 50);
    assert_eq!(t.dropped(), 0);
    assert_eq!(t.late, 0);
    assert!(report.commit_log_clean);
}
