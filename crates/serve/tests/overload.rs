//! Overload property test: submit events faster than the pipeline can drain
//! them, with tiny queue bounds, and assert the backpressure design holds —
//! bounded queue memory, no deadlock, and eventual completion with every
//! event served exactly once — across seeds × shard counts × GNN worker
//! counts.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tgnn_core::{ModelConfig, OptimizationVariant, TgnModel};
use tgnn_data::{generate, tiny};
use tgnn_graph::TemporalGraph;
use tgnn_serve::{ServeConfig, StreamServer};
use tgnn_tensor::TensorRng;

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::NpMedium);
    let model = TgnModel::new(cfg, &mut TensorRng::new(seed ^ 0xbeef));
    (model, Arc::new(graph))
}

#[test]
fn sustained_overload_stays_bounded_and_completes() {
    let deadline = Instant::now() + Duration::from_secs(120);
    for seed in [5u64, 19] {
        let (model, graph) = setup(seed);
        let events = &graph.events()[..200.min(graph.num_events())];
        for num_shards in [1usize, 3] {
            for gnn_workers in [1usize, 2, 4] {
                let label = format!("seed={seed} shards={num_shards} gnn={gnn_workers}");
                // Tiny bounds everywhere: the admission queue holds 2
                // events, every stage holds 1 batch, and results hold 2 —
                // submission immediately outruns the drain, so the whole
                // run executes under backpressure.
                let config = ServeConfig {
                    max_batch: 3,
                    batch_deadline: Duration::from_secs(3600),
                    admission_capacity: 2,
                    stage_capacity: 1,
                    results_capacity: 2,
                    num_shards,
                    gnn_workers,
                    ..ServeConfig::default()
                };
                let mut server = StreamServer::new(model.clone(), graph.clone(), config);
                let mut served_events = 0usize;
                for &e in events {
                    server.submit(e).unwrap_or_else(|err| {
                        panic!("{label}: submit failed under overload: {err}")
                    });
                    // Poll without waiting — the producer never yields to
                    // the pipeline voluntarily.
                    while let Some(b) = server.poll() {
                        served_events += b.events.len();
                    }
                    assert!(
                        Instant::now() < deadline,
                        "{label}: overload run deadlocked"
                    );
                }
                let report = server.drain();
                while let Some(b) = server.poll() {
                    served_events += b.events.len();
                }
                // Eventual completion: nothing lost, nothing duplicated.
                assert_eq!(served_events, events.len(), "{label}");
                assert_eq!(report.num_events, events.len(), "{label}");
                assert!(report.commit_log_clean, "{label}");
                // Queue-accounting sanity: recorded depths respect the
                // configured capacities.  (This cannot fail while `send`
                // itself enforces the bound — the falsifiable boundedness
                // evidence is the blocked-send count below: if a regression
                // made any queue grow without blocking, an overloaded run
                // with these tiny bounds would record zero blocks.)
                for q in &report.queues {
                    assert!(
                        q.max_depth <= q.capacity,
                        "{label}: queue {} overflowed its bound ({} > {})",
                        q.name,
                        q.max_depth,
                        q.capacity
                    );
                }
                assert!(
                    report.backpressure_blocks > 0,
                    "{label}: overload never hit backpressure — either the \
                     pipeline outran a saturating producer on tiny bounds or \
                     a queue grew unboundedly instead of blocking"
                );
                assert!(
                    server.neighbor_table().check_invariants().is_ok(),
                    "{label}"
                );
            }
        }
    }
}
