//! Stress tests for the queue close/backpressure paths — many iterations of
//! a producer or consumer blocked on a full/empty queue racing the other
//! end's close.  Guards the lost-wakeup discipline (close flag + notify under
//! the queue mutex) on both the SPSC channels and the MPMC pool channels: a
//! regression shows up as a hung iteration, caught by the suite's timeout.
//!
//! Each test spawns its own racing threads; CI additionally runs this suite
//! in release (tighter race windows than debug codegen) with several test
//! functions concurrent for extra thread pressure.

use std::thread;
use std::time::Duration;
use tgnn_serve::queue::{channel, mpmc_channel};

const ITERS: usize = 10_000;

/// Producer blocked on a full SPSC queue races the receiver dropping: the
/// send must fail (item returned), never hang.
#[test]
fn spsc_close_races_blocked_push() {
    for i in 0..ITERS {
        let (tx, rx) = channel::<u32>("stress", 1);
        tx.send(0).unwrap(); // fill: the next send blocks
        thread::scope(|s| {
            let producer = s.spawn(move || tx.send(1));
            if i % 3 == 0 {
                thread::yield_now(); // vary interleaving across iterations
            }
            drop(rx);
            assert_eq!(producer.join().unwrap(), Err(1), "iteration {i}");
        });
    }
}

/// Consumer blocked on an empty SPSC queue races the sender dropping: the
/// recv must observe end of stream, never hang.
#[test]
fn spsc_close_races_blocked_pop() {
    for i in 0..ITERS {
        let (tx, rx) = channel::<u32>("stress", 1);
        thread::scope(|s| {
            let consumer = s.spawn(move || rx.recv());
            if i % 3 == 0 {
                thread::yield_now();
            }
            drop(tx);
            assert_eq!(consumer.join().unwrap(), None, "iteration {i}");
        });
    }
}

/// Last item sent right before the close must still be delivered — the
/// close/drain ordering half of the SPSC contract.
#[test]
fn spsc_item_sent_before_close_is_never_lost() {
    for i in 0..ITERS {
        let (tx, rx) = channel::<u32>("stress", 2);
        thread::scope(|s| {
            let consumer = s.spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = rx.recv() {
                    got.push(x);
                }
                got
            });
            tx.send(i as u32).unwrap();
            drop(tx);
            assert_eq!(consumer.join().unwrap(), vec![i as u32], "iteration {i}");
        });
    }
}

/// Producer blocked on a full MPMC queue races an explicit `close()` from
/// the consumer side: the send must fail, and the pre-close item must stay
/// poppable.
#[test]
fn mpmc_close_races_blocked_push() {
    for i in 0..ITERS {
        let (tx, rx) = mpmc_channel::<u32>("stress", 1);
        tx.send(0).unwrap();
        thread::scope(|s| {
            let tx2 = tx.clone();
            let producer = s.spawn(move || tx2.send(1));
            if i % 3 == 0 {
                thread::yield_now();
            }
            rx.close();
            assert_eq!(producer.join().unwrap(), Err(1), "iteration {i}");
            assert_eq!(rx.recv(), Some(0), "iteration {i}: pre-close item lost");
            assert_eq!(rx.recv(), None, "iteration {i}");
        });
    }
}

/// Consumer blocked on an empty MPMC queue races `close()` from the
/// producer side (and, every other iteration, the last sender dropping
/// instead): the recv must observe end of stream, never hang.
#[test]
fn mpmc_close_races_blocked_pop() {
    for i in 0..ITERS {
        let (tx, rx) = mpmc_channel::<u32>("stress", 1);
        thread::scope(|s| {
            let rx2 = rx.clone();
            let consumer = s.spawn(move || rx2.recv());
            if i % 3 == 0 {
                thread::yield_now();
            }
            if i % 2 == 0 {
                tx.close();
            } else {
                drop(tx);
            }
            assert_eq!(consumer.join().unwrap(), None, "iteration {i}");
        });
        // tx dropped here on even iterations; already gone on odd ones.
    }
}

/// Full pool shape: several blocked producers and consumers race one close.
/// Every producer must resolve to Ok or Err (no hang) and every item sent
/// successfully before the close must be delivered exactly once.
#[test]
fn mpmc_pool_close_resolves_every_blocked_end() {
    for i in 0..ITERS / 10 {
        let (tx, rx) = mpmc_channel::<u32>("stress", 2);
        thread::scope(|s| {
            let mut producers = Vec::new();
            for p in 0..3u32 {
                let tx = tx.clone();
                producers.push(s.spawn(move || tx.send(p).map_err(|_| p)));
            }
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let rx = rx.clone();
                consumers.push(s.spawn(move || {
                    let mut got = Vec::new();
                    while let Some(x) = rx.recv() {
                        got.push(x);
                    }
                    got
                }));
            }
            if i % 2 == 0 {
                thread::sleep(Duration::from_micros(50));
            }
            tx.close();
            let sent_ok: Vec<bool> = producers
                .into_iter()
                .map(|p| p.join().unwrap().is_ok())
                .collect();
            drop(rx);
            let mut delivered: Vec<u32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            delivered.sort_unstable();
            let ok_count = sent_ok.iter().filter(|&&b| b).count();
            assert_eq!(
                delivered.len(),
                ok_count,
                "iteration {i}: accepted items must be delivered exactly once"
            );
        });
    }
}
