//! Crash-recovery property tests for the durability subsystem: a durable
//! server killed at an arbitrary stage boundary (WAL fault in the batcher,
//! GNN-worker panic) and rebuilt with [`StreamServer::recover`] must resume
//! **bit-identically** — every admitted event served exactly once, never
//! twice, never lost, and every served embedding equal to what an
//! uninterrupted `ExecMode::Serial` replay of the same micro-batch sequence
//! produces — across seeds, shard counts, and GNN pool sizes.  Plus the
//! torn-tail contract: a WAL truncated at *every* byte offset of its final
//! record recovers cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{
    ExecMode, InferenceEngine, ModelConfig, OptimizationVariant, TgnModel, TimeEncoderKind,
};
use tgnn_data::{generate, tiny};
use tgnn_durable::{read_wal, repair_torn_tail, segment_name, AdmitDisposition, Wal, WalRecord};
use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};
use tgnn_serve::{
    wal_fault_hook, DurabilityConfig, FsyncPolicy, OverloadPolicy, ServeConfig, ServedBatch,
    StreamServer, SubmitError, TenantId, TenantSpec,
};
use tgnn_tensor::TensorRng;

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::NpMedium);
    let mut rng = TensorRng::new(seed ^ 0xd0_0d);
    let mut model = TgnModel::new(cfg, &mut rng);
    if model.config.time_encoder == TimeEncoderKind::Lut {
        let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
        model.calibrate_lut(&deltas);
    }
    (model, Arc::new(graph))
}

/// Self-cleaning scratch directory (the workspace is dependency-free, so no
/// tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let p = std::env::temp_dir().join(format!("tgnn-recovery-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Stable identity of an event for exactly-once accounting.
fn key(e: &InteractionEvent) -> (u32, u32, u32, u64) {
    (e.src, e.dst, e.edge_id, e.timestamp.to_bits())
}

fn multiset<'a>(events: impl Iterator<Item = &'a InteractionEvent>) -> Vec<(u32, u32, u32, u64)> {
    let mut v: Vec<_> = events.map(key).collect();
    v.sort_unstable();
    v
}

/// Replays the exact served micro-batch sequence through the serial
/// reference engine and asserts bitwise-equal embeddings — the recovered
/// stream must be indistinguishable from an uninterrupted run.
fn assert_matches_serial(
    model: TgnModel,
    graph: &TemporalGraph,
    warm: &[InteractionEvent],
    served: &[ServedBatch],
    label: &str,
) {
    let mut engine = InferenceEngine::new(model, graph.num_nodes()).with_mode(ExecMode::Serial);
    if !warm.is_empty() {
        engine.warm_up(warm, graph);
    }
    for batch in served {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), graph);
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "{label}: embeddings diverged from the serial reference in epoch {}",
            batch.epoch
        );
    }
    assert!(engine.commit_log().is_clean(), "{label}");
}

fn base_config(dir: &Path, fsync: FsyncPolicy) -> ServeConfig {
    ServeConfig {
        max_batch: 16,
        // Size-only sealing keeps micro-batch boundaries deterministic.
        batch_deadline: Duration::from_secs(3600),
        admission_capacity: 32,
        stage_capacity: 2,
        results_capacity: 4,
        durability: Some(
            DurabilityConfig::new(dir)
                .with_snapshot_every(4)
                .with_fsync(fsync),
        ),
        ..ServeConfig::default()
    }
}

enum Fault {
    /// Batcher freezes the WAL and panics before sealing this epoch.
    Wal(u64),
    /// A GNN worker panics on this epoch's first sub-job.
    Gnn(u64),
}

impl Fault {
    fn label(&self) -> String {
        match self {
            Fault::Wal(e) => format!("wal@{e}"),
            Fault::Gnn(e) => format!("gnn@{e}"),
        }
    }
}

/// First life: stream events into a durable server until the injected crash
/// closes admission (or the feed ends), then let `drain` propagate the
/// worker panic.  Returns the batches the client actually received and how
/// many events it submitted successfully.
fn run_first_life(
    model: TgnModel,
    graph: &Arc<TemporalGraph>,
    events: &[InteractionEvent],
    warm: &[InteractionEvent],
    mut config: ServeConfig,
    fault: &Fault,
) -> (Vec<ServedBatch>, usize) {
    match fault {
        Fault::Wal(epoch) => {
            let at = *epoch;
            let dcfg = config.durability.take().unwrap();
            config.durability = Some(dcfg.with_wal_fault(wal_fault_hook(move |e| e == at)));
        }
        Fault::Gnn(epoch) => {
            let at = *epoch;
            config.gnn_fault = Some(Arc::new(move |e, _part| e == at));
        }
    }
    let mut server = StreamServer::new(model, graph.clone(), config);
    if !warm.is_empty() {
        server.warm_up(warm);
    }
    let mut served = Vec::new();
    let mut submitted = 0usize;
    for &e in events {
        match server.submit(e) {
            Ok(()) => submitted += 1,
            Err(SubmitError::Closed) => break,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    while let Some(b) = server.poll() {
        served.push(b);
    }
    // drain flushes the WAL tail before propagating the worker panic — that
    // is what keeps a poisoned pipeline recoverable.
    let crashed = catch_unwind(AssertUnwindSafe(move || server.drain())).is_err();
    assert!(crashed, "the injected fault must surface as a drain panic");
    (served, submitted)
}

#[test]
fn crash_recovery_is_bit_identical_across_faults_shards_and_workers() {
    for seed in [3u64, 11] {
        let (model, graph) = setup(seed);
        let all = &graph.events()[..240.min(graph.num_events())];
        // Seed 11 exercises the warm-up floor snapshot as the recovery base.
        let warm_len = if seed == 11 { 48 } else { 0 };
        let (warm, events) = all.split_at(warm_len);
        for num_shards in [2usize, 3] {
            for gnn_workers in [1usize, 2] {
                for fault in [Fault::Wal(4), Fault::Gnn(3)] {
                    let label = format!(
                        "seed={seed} shards={num_shards} gnn={gnn_workers} fault={}",
                        fault.label()
                    );
                    let td = TempDir::new(&label.replace([' ', '='], "-"));
                    let mut config = base_config(td.path(), FsyncPolicy::Always);
                    config.num_shards = num_shards;
                    config.gnn_workers = gnn_workers;

                    let (mut served, submitted) =
                        run_first_life(model.clone(), &graph, events, warm, config.clone(), &fault);

                    // Second life: recover, collect the re-served epochs,
                    // resume the feed from the durable submit index, drain.
                    let (mut server, report) =
                        StreamServer::recover(model.clone(), graph.clone(), config)
                            .unwrap_or_else(|e| panic!("{label}: recover failed: {e}"));
                    let resume = report.resume_from[0] as usize;
                    match fault {
                        // The WAL froze at the crash point: submits that
                        // returned Ok afterwards are not durable, and the
                        // client re-sends them from the resume index.
                        Fault::Wal(_) => assert!(
                            resume <= submitted,
                            "{label}: resume index past the submit count"
                        ),
                        // The WAL outlived the fault: with fsync=always
                        // every Ok submit is durable.
                        Fault::Gnn(_) => assert_eq!(
                            resume, submitted,
                            "{label}: every Ok submit must be durable"
                        ),
                    }
                    let polled_epochs: Vec<u64> = served.iter().map(|b| b.epoch).collect();
                    let mut re_served = 0usize;
                    while let Some(b) = server.poll() {
                        assert!(
                            !polled_epochs.contains(&b.epoch),
                            "{label}: epoch {} served twice",
                            b.epoch
                        );
                        re_served += 1;
                        served.push(b);
                    }
                    assert_eq!(re_served, report.re_served_epochs, "{label}");
                    for &e in &events[resume..] {
                        server
                            .submit(e)
                            .unwrap_or_else(|err| panic!("{label}: resumed submit failed: {err}"));
                        while let Some(b) = server.poll() {
                            served.push(b);
                        }
                    }
                    let report2 = server.drain();
                    while let Some(b) = server.poll() {
                        served.push(b);
                    }
                    assert!(
                        server.neighbor_table().check_invariants().is_ok(),
                        "{label}"
                    );
                    assert!(report2.commit_log_clean, "{label}");
                    assert!(report2.durability.is_some(), "{label}");

                    // Exactly once: the union of both lives' deliveries is
                    // the whole feed, nothing duplicated, nothing lost.
                    assert_eq!(
                        multiset(served.iter().flat_map(|b| b.events.iter())),
                        multiset(events.iter()),
                        "{label}: served multiset != submitted multiset"
                    );
                    // Epoch order: contiguous across the crash.
                    served.sort_by_key(|b| b.epoch);
                    for (i, b) in served.iter().enumerate() {
                        assert_eq!(
                            b.epoch,
                            served[0].epoch + i as u64,
                            "{label}: epoch sequence has a gap or duplicate"
                        );
                    }
                    // Bit-identity: the recovered stream replays serially.
                    assert_matches_serial(model.clone(), &graph, warm, &served, &label);
                }
            }
        }
    }
}

#[test]
fn torn_wal_tail_is_recoverable_at_every_byte_offset() {
    // WAL layer, exhaustively: a log whose final record is cut at every
    // possible byte offset must scan as a torn tail (records before it
    // intact), repair by truncation, and accept a new writer afterwards.
    let ev = |t: f64| InteractionEvent::new(1, 2, 3, t);
    let records: Vec<WalRecord> = vec![
        WalRecord::Admit {
            tenant: 0,
            event: ev(1.0),
            disposition: AdmitDisposition::Admitted,
        },
        WalRecord::Admit {
            tenant: 0,
            event: ev(2.0),
            disposition: AdmitDisposition::Admitted,
        },
        WalRecord::Seal {
            epoch: 1,
            events: vec![(0, ev(1.0)), (0, ev(2.0))],
        },
        WalRecord::Ack { epoch: 1 },
        WalRecord::Admit {
            tenant: 0,
            event: ev(3.0),
            disposition: AdmitDisposition::Admitted,
        },
    ];
    let td = TempDir::new("torn-wal-layer");
    let seg = td.path().join(segment_name(1));
    let wal = Wal::open(td.path(), 0, 1 << 20, FsyncPolicy::Always).unwrap();
    for r in &records[..records.len() - 1] {
        wal.append(r).unwrap();
    }
    wal.flush(true).unwrap();
    let boundary = std::fs::metadata(&seg).unwrap().len();
    wal.append(records.last().unwrap()).unwrap();
    wal.flush(true).unwrap();
    drop(wal);
    let full_len = std::fs::metadata(&seg).unwrap().len();
    assert!(
        full_len > boundary + 8,
        "final frame must span several bytes"
    );

    for cut in boundary..full_len {
        let case = TempDir::new(&format!("torn-wal-cut-{cut}"));
        let seg2 = case.path().join(segment_name(1));
        std::fs::copy(&seg, &seg2).unwrap();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg2)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let scan = read_wal(case.path()).unwrap();
        assert_eq!(
            scan.records.len(),
            records.len() - 1,
            "cut={cut}: every record before the torn one survives"
        );
        if cut == boundary {
            assert!(scan.torn.is_none(), "cut={cut}: clean truncation");
        } else {
            let torn = scan
                .torn
                .as_ref()
                .unwrap_or_else(|| panic!("cut={cut}: mid-record cut must scan as torn"));
            assert_eq!(torn.valid_len, boundary, "cut={cut}");
            assert_eq!(torn.lost_bytes, cut - boundary, "cut={cut}");
            repair_torn_tail(torn).unwrap();
            let again = read_wal(case.path()).unwrap();
            assert!(again.torn.is_none(), "cut={cut}: repaired scan is clean");
            assert_eq!(again.records.len(), records.len() - 1, "cut={cut}");
        }
        // A recovering writer opens past the (possibly repaired) tail and
        // its appends land in a fresh segment.
        let wal2 = Wal::open(case.path(), scan.last_seq, 1 << 20, FsyncPolicy::Always).unwrap();
        wal2.append(&WalRecord::Ack { epoch: 7 }).unwrap();
        wal2.flush(true).unwrap();
        drop(wal2);
        let rescan = read_wal(case.path()).unwrap();
        assert!(rescan.torn.is_none(), "cut={cut}");
        assert_eq!(rescan.records.len(), records.len(), "cut={cut}");
        assert!(matches!(
            rescan.records.last(),
            Some(WalRecord::Ack { epoch: 7 })
        ));
    }
}

#[test]
fn server_recovers_from_torn_final_record_at_every_offset() {
    // End to end: a drained durable session whose log is then truncated at
    // every byte offset of the final record must still recover — the lost
    // record is the last `Ack`, so the affected epochs come back re-served.
    let (model, graph) = setup(7);
    let events = &graph.events()[..96.min(graph.num_events())];
    let td = TempDir::new("torn-serve-src");
    {
        let mut server = StreamServer::new(
            model.clone(),
            graph.clone(),
            base_config(td.path(), FsyncPolicy::Always),
        );
        for &e in events {
            server.submit(e).unwrap();
            while server.poll().is_some() {}
        }
        server.drain();
        while server.poll().is_some() {}
    }
    let scan = read_wal(td.path()).unwrap();
    assert!(scan.torn.is_none());
    let n_records = scan.records.len();
    assert!(matches!(scan.records.last(), Some(WalRecord::Ack { .. })));
    let seg = td.path().join(segment_name(scan.last_seq));
    let full_len = std::fs::metadata(&seg).unwrap().len();

    // Find the final frame's start: the largest truncation that still scans
    // clean with one fewer record.
    let probe = TempDir::new("torn-serve-probe");
    let probe_seg = probe.path().join(segment_name(scan.last_seq));
    let boundary = (0..full_len)
        .rev()
        .find(|&cut| {
            std::fs::copy(&seg, &probe_seg).unwrap();
            std::fs::OpenOptions::new()
                .write(true)
                .open(&probe_seg)
                .unwrap()
                .set_len(cut)
                .unwrap();
            let s = read_wal(probe.path()).unwrap();
            s.torn.is_none() && s.records.len() == n_records - 1
        })
        .expect("final frame boundary");

    for cut in boundary..full_len {
        let case = TempDir::new(&format!("torn-serve-cut-{cut}"));
        copy_dir(td.path(), case.path());
        std::fs::OpenOptions::new()
            .write(true)
            .open(case.path().join(segment_name(scan.last_seq)))
            .unwrap()
            .set_len(cut)
            .unwrap();

        let (mut server, report) = StreamServer::recover(
            model.clone(),
            graph.clone(),
            base_config(case.path(), FsyncPolicy::Always),
        )
        .unwrap_or_else(|e| panic!("cut={cut}: recover failed: {e}"));
        assert_eq!(report.torn_tail_repaired, cut > boundary, "cut={cut}");
        assert_eq!(report.readmitted_events, 0, "cut={cut}: everything sealed");
        // The truncated final Ack makes its epoch unacked again: it must be
        // re-served (never lost), and nothing else may be.
        let mut re_served = Vec::new();
        while let Some(b) = server.poll() {
            re_served.push(b);
        }
        assert_eq!(re_served.len(), report.re_served_epochs, "cut={cut}");
        assert_eq!(re_served.len(), 1, "cut={cut}: exactly the unacked epoch");
        server.drain();
        assert!(
            server.neighbor_table().check_invariants().is_ok(),
            "cut={cut}"
        );
    }
}

#[test]
fn poisoned_pipeline_under_onseal_leaves_wal_recoverable() {
    // Satellite (b): with the default OnSeal policy, seals and admits since
    // the last fsync sit in a user-space buffer — the drain path must flush
    // them *before* propagating a worker panic, so a poisoned pipeline still
    // recovers with nothing lost.
    let (model, graph) = setup(29);
    let events = &graph.events()[..160.min(graph.num_events())];
    let td = TempDir::new("poisoned-onseal");
    let config = base_config(td.path(), FsyncPolicy::OnSeal);
    let (served1, submitted) = run_first_life(
        model.clone(),
        &graph,
        events,
        &[],
        config.clone(),
        &Fault::Gnn(4),
    );
    assert!(submitted > 0, "the crash must happen mid-stream");

    let (mut server, report) = StreamServer::recover(model.clone(), graph.clone(), config)
        .expect("poisoned pipeline must leave a recoverable WAL");
    assert!(report.sealed_epochs > 0, "drain flushed the sealed tail");
    let mut served = served1;
    while let Some(b) = server.poll() {
        served.push(b);
    }
    // OnSeal may lose admits buffered after the last flush point — but drain
    // ran, so the flush covered everything: resume from the durable index.
    let resume = report.resume_from[0] as usize;
    assert_eq!(resume, submitted, "drain made every admit durable");
    for &e in &events[resume..] {
        server.submit(e).unwrap();
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    assert_eq!(
        multiset(served.iter().flat_map(|b| b.events.iter())),
        multiset(events.iter()),
        "no event lost or duplicated across the poisoned restart"
    );
    served.sort_by_key(|b| b.epoch);
    assert_matches_serial(model, &graph, &[], &served, "poisoned-onseal");
}

#[test]
fn drain_writes_floor_snapshot_making_recovery_replay_free() {
    // Satellite (b): an orderly drain + full poll leaves a clean final
    // snapshot; recovering from it replays nothing and re-serves nothing.
    let (model, graph) = setup(13);
    let events = &graph.events()[..128.min(graph.num_events())];
    let td = TempDir::new("drain-floor");
    let config = base_config(td.path(), FsyncPolicy::OnSeal);
    {
        let mut server = StreamServer::new(model.clone(), graph.clone(), config.clone());
        for &e in events {
            server.submit(e).unwrap();
            while server.poll().is_some() {}
        }
        let report = server.drain();
        while server.poll().is_some() {}
        let d = report.durability.expect("durable session reports stats");
        assert!(d.snapshots > 0, "drain must write a final snapshot");
        assert!(d.wal_fsyncs > 0, "drain must fsync the tail");
    }
    let (mut server, report) = StreamServer::recover(model.clone(), graph.clone(), config)
        .expect("recover after clean drain");
    assert_eq!(report.replayed_epochs, 0, "the drain snapshot is current");
    assert_eq!(report.re_served_epochs, 0);
    assert_eq!(report.readmitted_events, 0);
    assert!(report.snapshot_epoch > 0);
    assert!(server.poll().is_none(), "nothing owed to the client");
    // The recovered server keeps serving: the chronology floor carries over.
    let mut next = *events.last().unwrap();
    next.timestamp += 1.0;
    server.submit(next).unwrap();
    let report2 = server.drain();
    assert_eq!(report2.num_events, 1);
    assert!(report2.commit_log_clean);
}

#[test]
fn ingress_drops_are_durable_and_never_resurrected() {
    // Drop-policy outcomes are part of the durable contract: after a
    // restart, `resume_from` counts drops as consumed feed positions, and a
    // dropped event never reappears in any life's output.
    let (model, graph) = setup(17);
    let events = &graph.events()[..200.min(graph.num_events())];
    let td = TempDir::new("durable-drops");
    let mut config = base_config(td.path(), FsyncPolicy::Always);
    config.stage_capacity = 1;
    config.results_capacity = 2;
    config.max_batch = 5;
    config.tenants = (0..2)
        .map(|i| {
            TenantSpec::new(format!("t{i}"))
                .with_capacity(4)
                .with_policy(OverloadPolicy::DropNewest)
        })
        .collect();
    let mut dropped = Vec::new();
    let mut served = Vec::new();
    {
        let mut server = StreamServer::new(model.clone(), graph.clone(), config.clone());
        // No polling during submission: the tiny results/stage queues back
        // the pipeline up into the ingress bound so DropNewest actually
        // fires (DropNewest never blocks the submitter).
        for (i, &e) in events.iter().enumerate() {
            let outcome = server.submit_for(TenantId(i as u32 % 2), e).unwrap();
            if !outcome.is_admitted() {
                dropped.push(e);
            }
        }
        while let Some(b) = server.poll() {
            served.push(b);
        }
        server.drain();
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    assert!(!dropped.is_empty(), "capacity 4 under burst must drop");

    let (mut server, report) = StreamServer::recover(model.clone(), graph.clone(), config)
        .expect("recover after drained drop-policy session");
    let resumed: u64 = report.resume_from.iter().sum();
    assert_eq!(
        resumed as usize,
        events.len(),
        "resume_from counts drops as consumed submissions"
    );
    assert_eq!(report.readmitted_events, 0);
    while let Some(b) = server.poll() {
        served.push(b);
    }
    server.drain();
    let served_keys = multiset(served.iter().flat_map(|b| b.events.iter()));
    for d in &dropped {
        assert!(
            served_keys.binary_search(&key(d)).is_err(),
            "a dropped event was resurrected by recovery"
        );
    }
    let mut expected = multiset(events.iter());
    let drop_keys = multiset(dropped.iter());
    expected.retain(|k| drop_keys.binary_search(k).is_err());
    assert_eq!(served_keys, expected, "admitted events served exactly once");
}

#[test]
fn fresh_server_refuses_a_directory_with_an_existing_wal() {
    let (model, graph) = setup(5);
    let td = TempDir::new("refuse-existing");
    let config = base_config(td.path(), FsyncPolicy::OnSeal);
    {
        let mut server = StreamServer::new(model.clone(), graph.clone(), config.clone());
        server.submit(graph.events()[0]).unwrap();
        server.drain();
    }
    let result = catch_unwind(AssertUnwindSafe(move || {
        StreamServer::new(model, graph, config)
    }));
    assert!(
        result.is_err(),
        "StreamServer::new must refuse to append to an existing WAL"
    );
}
