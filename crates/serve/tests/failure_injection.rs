//! Failure-injection tests for the data-parallel GNN stage: a panicking GNN
//! worker (injected via the test-only [`GnnFaultHook`]) must poison the
//! epoch gates and unwind `submit`/`poll`/`drain` with an error or panic —
//! never hang the pipeline — for every pool size.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tgnn_core::{ModelConfig, OptimizationVariant, TgnModel};
use tgnn_data::{generate, tiny};
use tgnn_graph::TemporalGraph;
use tgnn_serve::{GnnFaultHook, ServeConfig, StreamServer, SubmitError};
use tgnn_tensor::TensorRng;

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::Baseline);
    let model = TgnModel::new(cfg, &mut TensorRng::new(seed));
    (model, Arc::new(graph))
}

/// A hook that fires exactly once, on the first sub-job of epoch >= 2.
fn panic_once_at_epoch_2() -> GnnFaultHook {
    let fired = AtomicBool::new(false);
    Arc::new(move |epoch, _part| epoch >= 2 && !fired.swap(true, Ordering::SeqCst))
}

#[test]
fn panicking_gnn_worker_poisons_gates_and_fails_submit_poll_drain() {
    for gnn_workers in [1usize, 2, 4] {
        let (model, graph) = setup(17);
        let config = ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            num_shards: 2,
            gnn_workers,
            gnn_fault: Some(panic_once_at_epoch_2()),
            ..ServeConfig::default()
        };
        let mut server = StreamServer::new(model, graph.clone(), config);

        // Keep submitting until the dead pipeline surfaces as a Closed
        // error; the admission queue is deep, so a hang here would mean the
        // poison never propagated back through the stages.  Repeating the
        // last event keeps the stream chronological (equal timestamps are
        // legal) while driving batches through the dying pipeline.
        let deadline = Instant::now() + Duration::from_secs(30);
        let events = &graph.events()[..64.min(graph.num_events())];
        let last = *events.last().unwrap();
        let mut stream = events.iter().copied().chain(std::iter::repeat(last));
        // The only way out of this loop is observing Closed (the deadline
        // assert below fails the test if the pipeline hangs instead).
        loop {
            match server.submit(stream.next().unwrap()) {
                Ok(()) => {}
                Err(SubmitError::Closed) => break,
                Err(other) => panic!("unexpected submit error: {other}"),
            }
            while server.poll().is_some() {}
            assert!(
                Instant::now() < deadline,
                "gnn_workers={gnn_workers}: submit never observed the dead pipeline"
            );
        }

        // poll must not hang either: the results queue is closed.
        while server.poll().is_some() {}

        // The epoch gates must be poisoned — that is what turned the dead
        // worker into a clean unwind instead of stages waiting forever.
        assert!(
            server.memory().gate().is_poisoned(),
            "gnn_workers={gnn_workers}: memory gate not poisoned"
        );
        assert!(
            server.neighbor_table().gate().is_poisoned(),
            "gnn_workers={gnn_workers}: neighbor-table gate not poisoned"
        );

        // drain must propagate the injected panic rather than hang.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || server.drain()));
        assert!(
            result.is_err(),
            "gnn_workers={gnn_workers}: drain must propagate the worker panic"
        );
    }
}

#[test]
fn fault_on_late_epoch_still_unwinds_after_successful_batches() {
    // The pipeline serves a few batches correctly, then a worker dies; the
    // already-served batches stay available and the shutdown still unwinds.
    let (model, graph) = setup(23);
    let config = ServeConfig {
        max_batch: 4,
        batch_deadline: Duration::from_secs(3600), // size-sealed only
        num_shards: 3,
        gnn_workers: 2,
        gnn_fault: Some(Arc::new(|epoch, _| epoch == 5)),
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    let mut served_events = 0usize;
    let deadline = Instant::now() + Duration::from_secs(30);
    for &e in &graph.events()[..64] {
        if server.submit(e).is_err() {
            break;
        }
        while let Some(b) = server.poll() {
            served_events += b.events.len();
        }
        assert!(
            Instant::now() < deadline,
            "pipeline hung after injected fault"
        );
    }
    while let Some(b) = server.poll() {
        served_events += b.events.len();
    }
    // Epochs 1..=4 (4 events each) complete before the epoch-5 fault; the
    // exact number polled depends on timing, but some must have been served
    // and none past the faulted epoch.
    assert!(served_events <= 16, "served past the faulted epoch");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || server.drain()));
    assert!(result.is_err(), "drain must propagate the worker panic");
}
