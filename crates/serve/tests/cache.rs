//! Cache-correctness property tests for the `ServeStale` degraded mode: a
//! stale answer must be **bit-identical** to the embedding the pipeline
//! originally served at the epoch the cache recorded (`cache_epochs`), its
//! age may never exceed the configured staleness bound, and the exactly-once
//! accounting of the admission layer must still balance — across seeds,
//! shard counts, GNN pool sizes, and staleness bounds, with tiny queue
//! bounds so every run executes at ≥ 2× overload.  Plus the durability
//! drill: a crashed-and-recovered server cold-starts the cache at the
//! recovered epoch floor, so a pre-crash entry can never be served beyond
//! the bound against the recovered timeline.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{
    Disposition, ModelConfig, OptimizationVariant, OverloadPolicy, TenantId, TgnModel,
};
use tgnn_data::{generate, tiny};
use tgnn_graph::{InteractionEvent, TemporalGraph};
use tgnn_serve::{
    CacheConfig, DurabilityConfig, FsyncPolicy, ServeConfig, ServedBatch, StreamServer,
    SubmitError, SubmitOutcome, TenantSpec,
};
use tgnn_tensor::{Float, TensorRng};

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::NpMedium);
    let model = TgnModel::new(cfg, &mut TensorRng::new(seed ^ 0xcac4e));
    (model, Arc::new(graph))
}

/// Stable identity of an event for exactly-once accounting.
fn key(e: &InteractionEvent) -> (u32, u32, u32, u64) {
    (e.src, e.dst, e.edge_id, e.timestamp.to_bits())
}

fn multiset<'a>(events: impl Iterator<Item = &'a InteractionEvent>) -> Vec<(u32, u32, u32, u64)> {
    let mut v: Vec<_> = events.map(key).collect();
    v.sort_unstable();
    v
}

/// A tiny-bounds ServeStale config: submission immediately outruns the
/// drain, so the ingress queue is full for most of the run and the stale
/// path actually executes.
fn overload_config(bound: u64, num_shards: usize, gnn_workers: usize) -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_secs(3600),
        admission_capacity: 4,
        stage_capacity: 1,
        results_capacity: 2,
        num_shards,
        gnn_workers,
        cache: Some(CacheConfig {
            capacity: 1024,
            staleness_bound_epochs: bound,
        }),
        tenants: vec![TenantSpec::new("stale-tenant")
            .with_capacity(4)
            .with_policy(OverloadPolicy::ServeStale)],
        ..ServeConfig::default()
    }
}

/// Per-outcome submission record: every `submit_for` call lands one entry in
/// exactly one bucket, so outcome counts always match delivery counts even
/// when the same event is retried (a retried event that was first answered
/// stale appears once in `stale` *and* once in `admitted` — matching its two
/// deliveries).
#[derive(Default)]
struct Outcomes {
    admitted: Vec<InteractionEvent>,
    stale: Vec<InteractionEvent>,
    dropped: Vec<InteractionEvent>,
}

impl Outcomes {
    fn total(&self) -> usize {
        self.admitted.len() + self.stale.len() + self.dropped.len()
    }
}

/// Submits one lap of `base`, polling after every event and **retrying each
/// event until it is admitted** — on a loaded machine even a polling
/// producer can momentarily outrun the scheduler, and the warm lap's job is
/// to push every vertex through the pipeline so the cache covers the whole
/// feed.  Retries that were answered stale or dropped are recorded in their
/// buckets (each produces its own delivery or non-delivery).
fn warm_lap(
    server: &mut StreamServer,
    base: &[InteractionEvent],
    lap: u64,
    span: f64,
    out: &mut Outcomes,
    served: &mut Vec<ServedBatch>,
) {
    for &e in base {
        let mut e = e;
        e.timestamp += lap as f64 * span;
        let mut tries = 0;
        loop {
            match server.submit_for(TenantId::DEFAULT, e).unwrap() {
                SubmitOutcome::Admitted => {
                    out.admitted.push(e);
                    break;
                }
                SubmitOutcome::ServedStale => out.stale.push(e),
                SubmitOutcome::Dropped => out.dropped.push(e),
            }
            tries += 1;
            assert!(tries < 10_000, "warm lap could not admit an event");
            while let Some(b) = server.poll() {
                served.push(b);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
}

/// The core contract: every stale batch (epoch 0) must be bit-identical to
/// the pipeline-served history at its recorded `cache_epochs`, carry a
/// `Disposition::Stale` age within `bound`, and own zero pipeline latency.
/// Returns the number of stale *embedding entries* verified against history.
fn verify_stale_batches(served: &[ServedBatch], bound: u64, label: &str) -> usize {
    // Epoch → vertex → embedding, from the pipeline-served batches.  A stale
    // answer can be polled before the pipeline batch it was copied from
    // (the reorder worker inserts into the cache before pushing to the
    // results queue), so history is built over the whole run first.
    let mut history: HashMap<u64, HashMap<u32, &[Float]>> = HashMap::new();
    for b in served.iter().filter(|b| b.epoch > 0) {
        let entry = history.entry(b.epoch).or_default();
        for (v, emb) in &b.embeddings {
            entry.insert(*v, emb.as_slice());
        }
    }
    let mut checked = 0usize;
    for b in served.iter().filter(|b| b.epoch == 0) {
        assert_eq!(
            b.latency,
            Duration::ZERO,
            "{label}: stale batch has pipeline latency"
        );
        assert_eq!(
            b.cache_epochs.len(),
            b.embeddings.len(),
            "{label}: cache_epochs not aligned with embeddings"
        );
        assert_eq!(b.events.len(), 1, "{label}: stale batches answer one event");
        assert_eq!(b.metas.len(), 1, "{label}");
        let age = match b.metas[0].disposition {
            Disposition::Stale { age_epochs } => age_epochs,
            other => panic!("{label}: stale batch carries disposition {other:?}"),
        };
        assert!(
            age <= bound,
            "{label}: stale answer aged {age} epochs exceeds the bound {bound}"
        );
        for ((v, emb), &epoch) in b.embeddings.iter().zip(&b.cache_epochs) {
            let original = history
                .get(&epoch)
                .and_then(|m| m.get(v))
                .unwrap_or_else(|| {
                    panic!(
                        "{label}: stale answer cites epoch {epoch} vertex {v}, \
                         which the pipeline never served"
                    )
                });
            assert_eq!(
                *original,
                emb.as_slice(),
                "{label}: stale embedding of vertex {v} diverged bitwise from \
                 the embedding served at epoch {epoch}"
            );
            checked += 1;
        }
    }
    checked
}

/// Submits one lap of `base` (timestamps shifted by `lap`) **without ever
/// polling**: the stages and results queue back up within a few epochs, the
/// ingress queue fills, and every later submission exercises the ServeStale
/// decision — deterministically, regardless of how fast the pipeline drains
/// relative to the submitting thread.
#[allow(clippy::type_complexity)]
fn burst_lap(
    server: &mut StreamServer,
    base: &[InteractionEvent],
    lap: u64,
    span: f64,
) -> (
    Vec<InteractionEvent>,
    Vec<InteractionEvent>,
    Vec<InteractionEvent>,
) {
    let mut admitted = Vec::new();
    let mut stale = Vec::new();
    let mut dropped = Vec::new();
    for &e in base {
        let mut e = e;
        e.timestamp += lap as f64 * span;
        match server.submit_for(TenantId::DEFAULT, e).unwrap() {
            SubmitOutcome::Admitted => admitted.push(e),
            SubmitOutcome::ServedStale => stale.push(e),
            SubmitOutcome::Dropped => dropped.push(e),
        }
    }
    (admitted, stale, dropped)
}

#[test]
fn stale_answers_are_bit_identical_to_served_history_under_overload() {
    for seed in [3u64, 23] {
        let (model, graph) = setup(seed);
        let base = &graph.events()[..200.min(graph.num_events())];
        let span = 1.0 + base.last().unwrap().timestamp - base[0].timestamp;
        for num_shards in [1usize, 3] {
            for gnn_workers in [1usize, 2] {
                let label = format!("seed={seed} shards={num_shards} gnn={gnn_workers}");
                // Bound 32 > the ~25 epochs one lap seals, so everything the
                // warm lap serves is still fresh during the burst.
                let config = overload_config(32, num_shards, gnn_workers);
                let mut server = StreamServer::new(model.clone(), graph.clone(), config);

                // Warm lap: every event eventually admitted, populating the
                // cache with every vertex the feed touches.
                let mut served = Vec::new();
                let mut out = Outcomes::default();
                warm_lap(&mut server, base, 0, span, &mut out, &mut served);
                let warm_submissions = out.total();
                // Burst lap: no polling, so the pipeline backs up and the
                // ingress queue is full for most of the lap — ≥ 2× the load
                // the run can drain.
                let (admitted2, stale2, dropped2) = burst_lap(&mut server, base, 1, span);
                out.admitted.extend(admitted2);
                out.stale.extend(stale2);
                out.dropped.extend(dropped2);
                server.drain();
                while let Some(b) = server.poll() {
                    served.push(b);
                }

                // Client-side and report-side accounting must agree, and
                // every submission lands in exactly one bucket.
                assert_eq!(out.total(), warm_submissions + base.len(), "{label}");
                let report = server.report();
                let t = &report.tenants[0];
                assert_eq!(t.counters.admitted as usize, out.admitted.len(), "{label}");
                assert_eq!(t.served_stale as usize, out.stale.len(), "{label}");
                assert_eq!(t.dropped() as usize, out.dropped.len(), "{label}");
                assert_eq!(
                    t.served as usize,
                    out.admitted.len() + out.stale.len(),
                    "{label}: served must count pipeline results plus stale answers"
                );

                // The run must actually exercise the degraded mode — a
                // vacuous pass here would hide a dead cache.
                assert!(
                    !out.stale.is_empty(),
                    "{label}: overload never produced a stale serve"
                );

                // Pipeline deliveries are exactly the admitted events; stale
                // answers are exactly the ServedStale events; the two never
                // overlap in delivery.
                let pipeline_events = multiset(
                    served
                        .iter()
                        .filter(|b| b.epoch > 0)
                        .flat_map(|b| b.events.iter()),
                );
                assert_eq!(pipeline_events, multiset(out.admitted.iter()), "{label}");
                let stale_events = multiset(
                    served
                        .iter()
                        .filter(|b| b.epoch == 0)
                        .flat_map(|b| b.events.iter()),
                );
                assert_eq!(stale_events, multiset(out.stale.iter()), "{label}");

                // Bit-identity + bound on every stale entry.
                let checked = verify_stale_batches(&served, 32, &label);
                assert!(checked > 0, "{label}: no stale embeddings verified");

                // The report's cache slice agrees.
                let cache = report
                    .cache
                    .as_ref()
                    .unwrap_or_else(|| panic!("{label}: ServeStale run must report cache stats"));
                assert_eq!(cache.staleness_bound_epochs, 32, "{label}");
                assert_eq!(cache.stale_age.count as usize, out.stale.len(), "{label}");
                assert!(cache.stale_age.max <= 32, "{label}");
                assert!(cache.stats.hits >= out.stale.len() as u64, "{label}");
                assert!(cache.hit_rate > 0.0, "{label}");
            }
        }
    }
}

#[test]
fn tight_staleness_bound_is_enforced_and_expires_entries() {
    // Bound of 2 epochs: most cache content is expired most of the time, so
    // this run exercises the refuse-at-get path and the epoch-barrier sweep
    // — and still, any stale answer that does get out respects the bound.
    let (model, graph) = setup(7);
    let base = &graph.events()[..200.min(graph.num_events())];
    let span = 1.0 + base.last().unwrap().timestamp - base[0].timestamp;
    let config = overload_config(2, 2, 2);
    let mut server = StreamServer::new(model.clone(), graph.clone(), config);
    // Warm lap (~25 sealed epochs ≫ the 2-epoch bound, so early entries age
    // out and the commit-barrier sweep runs for real), then a burst lap in
    // which almost every cached vertex is already beyond the bound.
    let mut served = Vec::new();
    let mut out = Outcomes::default();
    warm_lap(&mut server, base, 0, span, &mut out, &mut served);
    let (admitted2, stale2, dropped2) = burst_lap(&mut server, base, 1, span);
    out.admitted.extend(admitted2);
    out.stale.extend(stale2);
    out.dropped.extend(dropped2);
    server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    let report = server.report();
    let cache = report.cache.as_ref().unwrap();
    verify_stale_batches(&served, 2, "bound=2");
    assert!(cache.stale_age.max <= 2, "age beyond the bound escaped");
    // The tight bound must actually bite: entries age out (visible as
    // expiry sweeps or refused gets), and misses shed like DropNewest.
    assert!(
        cache.stats.expired > 0,
        "a 2-epoch bound over a {}-epoch run must expire entries (stats {:?})",
        report.num_batches,
        cache.stats
    );
    assert!(
        !out.dropped.is_empty(),
        "cache misses under overload must shed"
    );
    // served = pipeline + stale still balances.
    let t = &report.tenants[0];
    assert_eq!(t.served_stale as usize, out.stale.len());
    assert_eq!(t.served, t.counters.admitted + t.served_stale);
}

/// Self-cleaning scratch directory (the workspace is dependency-free, so no
/// tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let p = std::env::temp_dir().join(format!("tgnn-cache-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn recovery_cold_starts_the_cache_without_violating_the_bound() {
    // First life: a durable ServeStale server crashes on a GNN fault.
    // Second life: recover, then immediately push the recovered server back
    // into overload.  Every stale answer served after recovery must cite an
    // epoch the *second life* delivered (the cache cold-starts at the
    // recovered epoch floor — pre-crash entries are gone, so no answer can
    // be older against the recovered timeline than the bound allows), and
    // must still be bit-identical to that delivery.
    let (model, graph) = setup(11);
    let base = &graph.events()[..160.min(graph.num_events())];
    let td = TempDir::new("recovery");
    // Bound 32 > the ~25 epochs one lap seals: the re-warmed cache stays
    // fresh through the whole burst lap.
    let bound = 32u64;
    let mut config = overload_config(bound, 2, 2);
    // Durable, snapshot-eager, crash at epoch 6.
    config.durability = Some(
        DurabilityConfig::new(td.path())
            .with_snapshot_every(4)
            .with_fsync(FsyncPolicy::Always),
    );
    config.gnn_fault = Some(Arc::new(|epoch, _part| epoch == 6));

    // First life: submit until the crash closes admission.
    let mut server = StreamServer::new(model.clone(), graph.clone(), config.clone());
    let span = 1.0 + base.last().unwrap().timestamp - base[0].timestamp;
    let mut first_life_stale = 0usize;
    'feed: for lap in 0..2u64 {
        for &e in base {
            let mut e = e;
            e.timestamp += lap as f64 * span;
            match server.submit_for(TenantId::DEFAULT, e) {
                Ok(SubmitOutcome::ServedStale) => first_life_stale += 1,
                Ok(_) => {}
                Err(SubmitError::Closed) => break 'feed,
                Err(other) => panic!("unexpected submit error: {other}"),
            }
            while server.poll().is_some() {}
        }
    }
    let crashed = catch_unwind(AssertUnwindSafe(move || server.drain())).is_err();
    assert!(
        crashed,
        "the injected GNN fault must surface as a drain panic"
    );

    // Second life.
    config.gnn_fault = None;
    let (mut server, report) =
        StreamServer::recover(model.clone(), graph.clone(), config).expect("recover");
    assert_eq!(
        report.served_stale[0] as usize, first_life_stale,
        "recovery must account the first life's stale serves from the WAL"
    );
    let mut served = Vec::new();
    while let Some(b) = server.poll() {
        served.push(b); // re-served epochs — these seed the recovered cache
    }
    // Resume the feed past everything the first life admitted: lap 2 served
    // normally (re-warming the cold cache), lap 3 as an unpolled burst so
    // the recovered server deterministically re-enters overload.
    let mut out = Outcomes::default();
    warm_lap(&mut server, base, 2, span, &mut out, &mut served);
    let (_, stale3, _) = burst_lap(&mut server, base, 3, span);
    let stale = out.stale.len() + stale3.len();
    server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }

    // Stale answers in the second life verify against second-life history
    // only — verify_stale_batches panics if any answer cites an epoch the
    // recovered server never delivered (i.e. a pre-crash cache survivor).
    let checked = verify_stale_batches(&served, bound, "recovery");
    assert!(
        stale > 0,
        "the recovered server must re-enter degraded mode"
    );
    assert!(checked > 0, "no post-recovery stale embeddings verified");
    let final_report = server.report();
    let cache = final_report.cache.as_ref().unwrap();
    assert!(cache.stale_age.max <= bound);
}
