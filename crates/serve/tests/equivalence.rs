//! Chronology-equivalence property tests: randomized event streams driven
//! through the pipelined [`StreamServer`], with varying shard counts and
//! micro-batch sizes, must produce embeddings **bit-identical** to
//! `ExecMode::Serial` replaying exactly the micro-batch sequence the server
//! used.  This is the correctness contract of the whole sharded multi-queue
//! design: the epoch-barrier protocol may reorder *work*, never *semantics*.

use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{
    ExecMode, InferenceEngine, ModelConfig, OptimizationVariant, TgnModel, TimeEncoderKind,
};
use tgnn_data::{generate, tiny};
use tgnn_graph::{EventBatch, TemporalGraph};
use tgnn_serve::{ServeConfig, ServedBatch, StreamServer};
use tgnn_tensor::TensorRng;

fn setup(seed: u64, variant: OptimizationVariant) -> (TgnModel, TemporalGraph) {
    let graph = generate(&tiny(seed));
    let cfg =
        ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim()).with_variant(variant);
    let mut rng = TensorRng::new(seed ^ 0x5eed);
    let mut model = TgnModel::new(cfg, &mut rng);
    if model.config.time_encoder == TimeEncoderKind::Lut {
        let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
        model.calibrate_lut(&deltas);
    }
    (model, graph)
}

/// Streams `events` through a server, drains, and returns the served batches
/// in epoch order.
fn serve_stream(
    model: TgnModel,
    graph: &Arc<TemporalGraph>,
    events: &[tgnn_graph::InteractionEvent],
    warm: &[tgnn_graph::InteractionEvent],
    num_shards: usize,
    max_batch: usize,
    gnn_workers: usize,
) -> (Vec<ServedBatch>, tgnn_serve::ServeReport) {
    let config = ServeConfig {
        max_batch,
        // Effectively disable deadline sealing so micro-batch boundaries are
        // deterministic (size-only) for the replay comparison.
        batch_deadline: Duration::from_secs(3600),
        num_shards,
        gnn_workers,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    if !warm.is_empty() {
        server.warm_up(warm);
    }
    let mut served = Vec::new();
    for &e in events {
        server.submit(e).expect("chronological submit");
        // Interleave polling with submission, as a live client would.
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    assert!(server.neighbor_table().check_invariants().is_ok());
    (served, report)
}

/// Replays the server's exact micro-batch boundaries through the serial
/// reference engine and asserts bitwise-equal embeddings.
fn assert_matches_serial(
    model: TgnModel,
    graph: &TemporalGraph,
    warm: &[tgnn_graph::InteractionEvent],
    served: &[ServedBatch],
    label: &str,
) {
    let mut engine = InferenceEngine::new(model, graph.num_nodes()).with_mode(ExecMode::Serial);
    if !warm.is_empty() {
        engine.warm_up(warm, graph);
    }
    for batch in served {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), graph);
        assert_eq!(
            reference.embeddings.len(),
            batch.embeddings.len(),
            "{label}: embedding count diverged in epoch {}",
            batch.epoch
        );
        for ((v_ref, emb_ref), (v_srv, emb_srv)) in
            reference.embeddings.iter().zip(&batch.embeddings)
        {
            assert_eq!(v_ref, v_srv, "{label}: vertex order diverged");
            assert_eq!(
                emb_ref, emb_srv,
                "{label}: embedding of vertex {v_ref} diverged in epoch {}",
                batch.epoch
            );
        }
    }
    assert!(engine.commit_log().is_clean(), "{label}");
}

#[test]
fn pipelined_output_is_bit_identical_across_shards_and_batch_sizes() {
    for seed in [3u64, 11, 29] {
        let (model, graph) = setup(seed, OptimizationVariant::NpMedium);
        let graph = Arc::new(graph);
        let events = &graph.events()[..240.min(graph.num_events())];
        for gnn_workers in [1usize, 2, 4] {
            for num_shards in [1usize, 2, 4, 7] {
                for max_batch in [17usize, 64] {
                    let label = format!(
                        "seed={seed} shards={num_shards} batch={max_batch} gnn={gnn_workers}"
                    );
                    let (served, report) = serve_stream(
                        model.clone(),
                        &graph,
                        events,
                        &[],
                        num_shards,
                        max_batch,
                        gnn_workers,
                    );
                    let total: usize = served.iter().map(|b| b.events.len()).sum();
                    assert_eq!(total, events.len(), "{label}: events lost or duplicated");
                    assert!(report.commit_log_clean, "{label}");
                    assert_eq!(report.num_batches, served.len(), "{label}");
                    assert_eq!(report.num_shards, num_shards, "{label}");
                    assert_eq!(report.gnn_workers, gnn_workers, "{label}");
                    // Epochs arrive in order — for every worker count, the
                    // reorder stage must undo the pool's racing.
                    assert!(
                        served.windows(2).all(|w| w[0].epoch < w[1].epoch),
                        "{label}: epochs out of order"
                    );
                    assert_matches_serial(model.clone(), &graph, &[], &served, &label);
                }
            }
        }
    }
}

/// The int8 serve path: with a quantized weight set attached, the pipeline
/// runs the packed int8 kernels — and because every quantized stage is
/// row-independent exact integer math, the served embeddings must still be
/// **bit-identical** to `ExecMode::Quantized` replaying the same batches,
/// across shard counts and GNN worker counts.  Accuracy against the f32
/// serial reference is bounded separately (cosine agreement), mirroring the
/// accuracy-gated deployment contract.
#[test]
fn quantized_pipeline_is_bit_identical_to_quantized_engine() {
    use tgnn_core::quantized::quantize_model;
    use tgnn_quant::QuantConfig;
    use tgnn_tensor::stats::cosine_agreement;

    let (mut model, graph) = setup(17, OptimizationVariant::NpMedium);
    let graph = Arc::new(graph);
    let events = &graph.events()[..240.min(graph.num_events())];
    let calibration = &graph.events()[..400.min(graph.num_events())];
    let q = Arc::new(quantize_model(
        &model,
        &graph,
        &[],
        calibration,
        64,
        QuantConfig::default(),
    ));
    model.attach_quantized(q);

    for gnn_workers in [1usize, 2, 4] {
        for num_shards in [1usize, 4] {
            let label = format!("quantized shards={num_shards} gnn={gnn_workers}");
            let (served, report) = serve_stream(
                model.clone(),
                &graph,
                events,
                &[],
                num_shards,
                32,
                gnn_workers,
            );
            assert!(report.commit_log_clean, "{label}");
            let total: usize = served.iter().map(|b| b.events.len()).sum();
            assert_eq!(total, events.len(), "{label}: events lost or duplicated");

            // Bitwise identity vs the quantized engine on the same batches.
            let mut engine = InferenceEngine::new(model.clone(), graph.num_nodes())
                .with_mode(ExecMode::Quantized);
            // f32 serial reference for the accuracy bound.
            let mut f32_model = model.clone();
            f32_model.detach_quantized();
            let mut serial =
                InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Serial);
            for batch in &served {
                let events = EventBatch::new(batch.events.clone());
                let reference = engine.process_batch(&events, &graph);
                assert_eq!(
                    reference.embeddings, batch.embeddings,
                    "{label}: served embeddings diverged bitwise from the quantized engine in epoch {}",
                    batch.epoch
                );
                let f32_out = serial.process_batch(&events, &graph);
                for ((v_a, e_a), (v_b, e_b)) in f32_out.embeddings.iter().zip(&batch.embeddings) {
                    assert_eq!(v_a, v_b, "{label}: vertex order diverged");
                    // Sanity bound only — the tiny random test model has
                    // far coarser activations than the calibrated harness
                    // config the accuracy gate (quant_gate) measures.
                    let cos = cosine_agreement(e_a, e_b);
                    assert!(
                        cos >= 0.98,
                        "{label}: served int8 embedding of vertex {v_a} strayed from f32 (cosine {cos})"
                    );
                }
            }
        }
    }
}

#[test]
fn warmed_up_server_matches_warmed_up_serial_engine() {
    let (model, graph) = setup(7, OptimizationVariant::Sat);
    let graph = Arc::new(graph);
    let warm = graph.train_events().to_vec();
    let measure: Vec<_> = graph.events()[graph.train_end()..].to_vec();
    for gnn_workers in [1usize, 3] {
        let (served, report) =
            serve_stream(model.clone(), &graph, &measure, &warm, 4, 50, gnn_workers);
        assert!(report.commit_log_clean);
        assert!(report.num_embeddings > 0);
        let label = format!("warmed gnn={gnn_workers}");
        assert_matches_serial(model.clone(), &graph, &warm, &served, &label);
    }
}

#[test]
fn single_event_batches_preserve_chronology() {
    let (model, graph) = setup(13, OptimizationVariant::Baseline);
    let graph = Arc::new(graph);
    let events = &graph.events()[..60];
    // Workers exceed batch vertices: every batch degenerates to one sub-job.
    let (served, report) = serve_stream(model.clone(), &graph, events, &[], 3, 1, 4);
    assert_eq!(served.len(), 60, "one micro-batch per event");
    assert!(report.commit_log_clean);
    assert_matches_serial(model.clone(), &graph, &[], &served, "batch=1");
}

#[test]
fn deadline_seals_partial_batches() {
    let (model, graph) = setup(5, OptimizationVariant::Sat);
    let graph = Arc::new(graph);
    let config = ServeConfig {
        max_batch: 1000, // never reached
        batch_deadline: Duration::from_millis(10),
        num_shards: 2,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    for &e in &graph.events()[..25] {
        server.submit(e).unwrap();
    }
    // The deadline, not the size bound, must seal these events.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut got = 0;
    while got < 25 && std::time::Instant::now() < deadline {
        if let Some(b) = server.poll() {
            got += b.events.len();
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert_eq!(got, 25, "deadline-sealed batches never arrived");
    let report = server.drain();
    assert!(report.commit_log_clean);
}

#[test]
fn worker_panic_propagates_through_drain_instead_of_hanging() {
    let (model, graph) = setup(2, OptimizationVariant::Baseline);
    let graph = Arc::new(graph);
    let config = ServeConfig {
        max_batch: 4,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    // An event referencing a non-existent edge-feature row makes the memory
    // worker panic; the epoch gates must poison so drain() unwinds instead
    // of waiting forever on watermarks that will never advance.
    let mut bad = graph.events()[0];
    bad.edge_id = u32::MAX;
    server.submit(bad).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || server.drain()));
    assert!(result.is_err(), "drain must propagate the worker panic");
}

#[test]
fn out_of_order_submission_is_rejected() {
    let (model, graph) = setup(1, OptimizationVariant::Baseline);
    let graph = Arc::new(graph);
    let mut server = StreamServer::new(model, graph.clone(), ServeConfig::default());
    let e0 = graph.events()[5];
    let e1 = graph.events()[0];
    server.submit(e0).unwrap();
    let err = server.submit(e1).unwrap_err();
    assert!(matches!(err, tgnn_serve::SubmitError::OutOfOrder { .. }));
    let report = server.drain();
    assert!(report.commit_log_clean);
    assert!(
        server.submit(e0).is_err(),
        "submission after drain must fail"
    );
}
