//! Observability tests for the serve pipeline: the live metrics snapshot
//! (under load, after a drain, with durability on), the three renderers,
//! the JSONL sampler, the metrics-off no-op path, and the flight-recorder
//! drill — after an injected GNN panic the dump must still contain the
//! poisoned epoch's partial timeline.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{ModelConfig, OptimizationVariant, TgnModel};
use tgnn_data::{generate, tiny};
use tgnn_durable::{DurabilityConfig, FsyncPolicy};
use tgnn_graph::TemporalGraph;
use tgnn_serve::{render_flight_timeline, ServeConfig, SpanKind, StageId, StreamServer};
use tgnn_tensor::TensorRng;

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::Baseline);
    let model = TgnModel::new(cfg, &mut TensorRng::new(seed));
    (model, Arc::new(graph))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let p = std::env::temp_dir().join(format!("tgnn-metrics-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn metrics_snapshot_live_under_load_and_after_drain() {
    let (model, graph) = setup(11);
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        gnn_workers: 2,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);

    let mut polled = 0usize;
    let mut live_seen = false;
    for (i, &e) in graph.events().iter().enumerate() {
        server.submit(e).unwrap();
        while server.poll().is_some() {
            polled += 1;
        }
        if i == graph.num_events() / 2 {
            // Live snapshot mid-stream: epochs are flowing and the queue
            // list is fully registered from spawn.  The pipeline threads
            // run behind the submitter, so wait for the first seal rather
            // than assert an instantaneous race.
            let t0 = std::time::Instant::now();
            let mut m = server.metrics();
            while m.epochs == 0 && t0.elapsed() < Duration::from_secs(10) {
                std::thread::sleep(Duration::from_millis(1));
                m = server.metrics();
            }
            assert!(m.enabled);
            assert!(m.epochs > 0, "epochs must be sealed mid-stream");
            assert_eq!(m.queues.len(), 8);
            assert_eq!(m.queues[0].name, "scheduler→batcher");
            live_seen = true;
        }
    }
    assert!(live_seen);
    let report = server.drain();
    while server.poll().is_some() {
        polled += 1;
    }

    let m = server.metrics();
    assert_eq!(m.batches_served as usize, report.num_batches);
    assert_eq!(m.events_served as usize, graph.num_events());
    assert_eq!(m.embeddings as usize, report.num_embeddings);
    assert!(polled > 0, "batches must have been delivered");

    // Every worker stage saw work; the GNN pool reports both workers.
    for stage in [
        StageId::Scheduler,
        StageId::Batcher,
        StageId::Sampler,
        StageId::Memory,
        StageId::Gnn,
        StageId::Update,
        StageId::Reorder,
    ] {
        let s = m
            .stages
            .iter()
            .find(|s| s.stage == stage)
            .expect("stage present");
        assert!(s.batches > 0, "{} recorded no spans", stage.label());
        assert!(!s.busy.is_zero(), "{} recorded no busy time", stage.label());
    }
    let gnn = m.stages.iter().find(|s| s.stage == StageId::Gnn).unwrap();
    assert_eq!(gnn.workers, 2);

    // Satellite (b): the Table-I-shaped breakdown both in the snapshot and
    // in the drain report, fed from the same span counters.
    assert!(!report.stage_timings.total().is_zero());
    assert_eq!(report.stage_timings, m.stage_timings);
    for stage in tgnn_core::profiling::Stage::all() {
        assert!(
            !report.stage_timings.get(stage).is_zero(),
            "stage {} has no busy time in the report",
            stage.label()
        );
    }

    // Latency histogram answered (and within the log-linear error of the
    // exact report percentiles).
    assert!(m.batch_latency.p50_ms > 0.0);
    assert!(m.batch_latency.max_ms >= m.batch_latency.p50_ms);

    // Per-tenant served counters flow through.
    assert_eq!(m.tenants.len(), 1);
    assert_eq!(m.tenants[0].served as usize, graph.num_events());
    assert_eq!(m.admission.admitted as usize, graph.num_events());

    // Flight recorder saw roughly 2 events per stage per epoch plus
    // delivery marks.
    assert!(m.flight.recorded > 0);
    let dump = server.metrics_hub().flight_dump();
    assert!(!dump.is_empty());
    assert!(dump
        .iter()
        .any(|r| r.stage == StageId::Deliver && r.kind == SpanKind::Mark));
    let timeline = render_flight_timeline(&dump);
    assert!(timeline.contains("epoch"));
    assert!(timeline.contains("gnn["));

    // The renderers include their key markers.
    let table = m.render_table();
    assert!(table.contains("scheduler→batcher"));
    assert!(table.contains("batch latency"));
    let prom = m.to_prometheus();
    assert!(prom.contains("# TYPE tgnn_queue_depth gauge"));
    assert!(prom.contains("tgnn_stage_busy_seconds_total{stage=\"gnn\"}"));
    assert!(prom.contains("tgnn_batch_latency_ms{quantile=\"0.99\"}"));
    let json = m.to_json_line();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"stages\":["));
}

#[test]
fn durable_session_reports_fsync_latency_and_snapshot_lag() {
    let (model, graph) = setup(29);
    let td = TempDir::new("durable");
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        durability: Some(
            DurabilityConfig::new(td.path())
                .with_fsync(FsyncPolicy::OnSeal)
                .with_snapshot_every(4),
        ),
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    for &e in &graph.events()[..96] {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}

    let m = server.metrics();
    let d = m.durability.expect("durable session exposes durability");
    assert!(d.stats.wal_fsyncs > 0);
    assert!(
        d.fsync_p99_us >= d.fsync_p50_us,
        "p99 {} < p50 {}",
        d.fsync_p99_us,
        d.fsync_p50_us
    );
    assert!(d.stats.snapshots > 0, "interval snapshots must have run");
    // Post-drain a final snapshot covers every sealed epoch.
    assert_eq!(d.snapshot_lag_epochs, 0);
    // The WAL syncer and snapshot writer left spans in the flight recorder.
    let dump = server.metrics_hub().flight_dump();
    assert!(dump.iter().any(|r| r.stage == StageId::WalSync));
    assert!(dump.iter().any(|r| r.stage == StageId::SnapWriter));
    let prom = m.to_prometheus();
    assert!(prom.contains("tgnn_wal_fsyncs_total"));
    assert!(prom.contains("tgnn_snapshot_lag_epochs"));
}

#[test]
fn jsonl_sampler_appends_parseable_lines() {
    let (model, graph) = setup(41);
    let td = TempDir::new("jsonl");
    let path = td.path().join("metrics.jsonl");
    let mut server = StreamServer::new(
        model,
        graph.clone(),
        ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let logger = server
        .metrics_hub()
        .spawn_jsonl_sampler(&path, Duration::from_millis(5))
        .expect("sampler starts");
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}
    logger.stop();

    let text = std::fs::read_to_string(&path).expect("sampler wrote the file");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "sampler wrote no lines");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad JSONL: {line}"
        );
        assert!(line.contains("\"epochs\":"));
        assert!(line.contains("\"queues\":["));
    }
    // The final (stop-time) line reflects the drained totals.
    assert!(lines
        .last()
        .unwrap()
        .contains(&format!("\"events\":{}", graph.num_events())));
}

#[test]
fn metrics_off_disables_spans_histograms_and_flight_recorder() {
    let (model, graph) = setup(53);
    let mut server = StreamServer::new(
        model,
        graph.clone(),
        ServeConfig {
            max_batch: 8,
            batch_deadline: Duration::from_millis(1),
            metrics: false,
            ..ServeConfig::default()
        },
    );
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    let report = server.drain();
    while server.poll().is_some() {}

    let m = server.metrics();
    assert!(!m.enabled);
    // Queue stats and tenant counters are structural — they stay live.
    assert_eq!(m.queues.len(), 8);
    assert_eq!(m.tenants[0].served as usize, graph.num_events());
    // Everything the recording path feeds stays empty.
    assert_eq!(m.flight.recorded, 0);
    assert!(server.metrics_hub().flight_dump().is_empty());
    for s in &m.stages {
        assert_eq!(
            s.batches,
            0,
            "{} recorded with metrics off",
            s.stage.label()
        );
        assert!(s.busy.is_zero());
    }
    assert_eq!(m.batch_latency.p50_ms, 0.0);
    assert!(report.stage_timings.total().is_zero());
    // The report itself is unaffected.
    assert_eq!(report.num_events, graph.num_events());
    assert!(report.commit_log_clean);
}

/// The flight-recorder drill: inject a GNN worker panic, let the pipeline
/// poison itself, and assert the dump still yields the poisoned epoch's
/// partial timeline — an `Enter` on the GNN stage with no matching `Exit`.
#[test]
fn flight_recorder_dump_survives_gnn_panic() {
    let (model, graph) = setup(17);
    let fired = Arc::new(AtomicBool::new(false));
    let hook = {
        let fired = fired.clone();
        Arc::new(move |epoch: u64, _part: usize| epoch >= 2 && !fired.swap(true, Ordering::SeqCst))
    };
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        num_shards: 2,
        gnn_workers: 2,
        gnn_fault: Some(hook),
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    // Keep the hub alive across the drain panic — exactly how a harness
    // would hold it for a post-mortem.
    let hub = server.metrics_hub();

    let last = *graph.events().last().unwrap();
    let mut stream = graph
        .events()
        .iter()
        .copied()
        .chain(std::iter::repeat(last));
    loop {
        if server.submit(stream.next().unwrap()).is_err() {
            break;
        }
        while server.poll().is_some() {}
    }
    while server.poll().is_some() {}
    assert!(
        server.memory().gate().is_poisoned(),
        "worker death must poison the gates"
    );
    let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || server.drain()));
    assert!(drained.is_err(), "drain must propagate the worker panic");

    // The dump works after the panic, and some GNN worker entered an epoch
    // it never exited — the poisoned epoch's partial timeline.
    let dump = hub.flight_dump();
    assert!(!dump.is_empty(), "flight dump empty after panic");
    let poisoned = (0u16..2).any(|w| {
        let enters = dump
            .iter()
            .filter(|r| r.stage == StageId::Gnn && r.worker == w && r.kind == SpanKind::Enter)
            .count();
        let exits = dump
            .iter()
            .filter(|r| r.stage == StageId::Gnn && r.worker == w && r.kind == SpanKind::Exit)
            .count();
        enters > exits
    });
    assert!(poisoned, "no GNN worker shows an Enter without an Exit");
    // The rendered timeline marks the dangling span as open.
    let timeline = render_flight_timeline(&dump);
    assert!(
        timeline.contains("→…"),
        "timeline must show the open segment:\n{timeline}"
    );
    // The snapshot is also still answerable from the poisoned pipeline.
    let m = hub.snapshot();
    assert!(m.epochs >= 2);
}

/// Satellite: `metrics_sampling: 1` must record *every* scheduler burst in
/// the flight ring — the sampled-span count equals the stage's burst
/// counter, which accumulates regardless of sampling.
#[test]
fn sampling_rate_one_records_every_scheduler_span() {
    let (model, graph) = setup(61);
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        metrics_sampling: 1,
        // Large enough that nothing is evicted: the full-rate scheduler
        // traffic plus the per-epoch stage spans must all survive.
        flight_capacity: 1 << 17,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    for &e in graph.events() {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}

    let m = server.metrics();
    assert_eq!(m.flight.dropped, 0, "ring must not have wrapped");
    let sched = m
        .stages
        .iter()
        .find(|s| s.stage == StageId::Scheduler)
        .unwrap();
    let dump = server.metrics_hub().flight_dump();
    let enters = dump
        .iter()
        .filter(|r| r.stage == StageId::Scheduler && r.kind == SpanKind::Enter)
        .count() as u64;
    assert!(sched.batches > 0);
    assert_eq!(
        enters, sched.batches,
        "rate 1 must put every burst in the ring"
    );
}

/// Satellite: the timeline renderer prints duration-so-far on open spans
/// and breaks `at` ties by sequence number — checked on a synthetic,
/// unbalanced ring rather than a live pipeline.
#[test]
fn timeline_renders_open_spans_and_sorts_ties_by_seq() {
    let ms = Duration::from_millis;
    let rec = |seq: u64, at: Duration, stage: StageId, kind: SpanKind| tgnn_serve::SpanRecord {
        seq,
        at,
        stage,
        worker: 0,
        epoch: 7,
        kind,
    };
    // Deliberately shuffled: two records share `at` (the exit must close
    // the enter, not precede it), and the sampler span never exits.
    let records = vec![
        rec(3, ms(5), StageId::Batcher, SpanKind::Exit),
        rec(2, ms(5), StageId::Batcher, SpanKind::Enter),
        rec(4, ms(6), StageId::Sampler, SpanKind::Enter),
        rec(5, ms(9), StageId::Deliver, SpanKind::Mark),
    ];
    let timeline = render_flight_timeline(&records);
    assert!(timeline.contains("epoch     7"), "timeline:\n{timeline}");
    // The tied enter/exit pair renders closed (5.000→5.000), not half-open.
    assert!(
        timeline.contains("batcher 5.000→5.000"),
        "tie must sort by seq:\n{timeline}"
    );
    // The open sampler span reports duration-so-far against the horizon
    // (the last tick in the dump, the 9 ms mark).
    assert!(
        timeline.contains("sampler 6.000→… 3.000ms so far"),
        "open span must show elapsed time:\n{timeline}"
    );
    assert!(timeline.contains("deliver @9.000"));
}

/// Satellite: a durable session exposes a wall-clock snapshot-writer lag
/// gauge alongside the epoch-based one.
#[test]
fn snapshot_lag_seconds_tracks_the_last_completed_snapshot() {
    let (model, graph) = setup(67);
    let td = TempDir::new("lag-seconds");
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(1),
        durability: Some(
            DurabilityConfig::new(td.path())
                .with_fsync(FsyncPolicy::OnSeal)
                .with_snapshot_every(4),
        ),
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    for &e in &graph.events()[..64] {
        server.submit(e).unwrap();
        while server.poll().is_some() {}
    }
    server.drain();
    while server.poll().is_some() {}

    let m = server.metrics();
    let d = m.durability.expect("durable session exposes durability");
    assert!(d.stats.snapshots > 0);
    // The drain-time snapshot just completed: the lag is fresh wall-clock,
    // not the session age.
    assert!(d.snapshot_lag_seconds >= 0.0);
    assert!(
        d.snapshot_lag_seconds < 5.0,
        "lag {}s after a drain-time snapshot",
        d.snapshot_lag_seconds
    );
    // And it keeps growing while no snapshot runs.
    std::thread::sleep(Duration::from_millis(20));
    let again = server.metrics().durability.unwrap().snapshot_lag_seconds;
    assert!(
        again > d.snapshot_lag_seconds,
        "lag must advance with wall time: {again} vs {}",
        d.snapshot_lag_seconds
    );
    assert!(m.to_prometheus().contains("tgnn_snapshot_lag_seconds"));
}
