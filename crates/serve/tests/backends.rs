//! Backend-equivalence property suite for heterogeneous per-tenant routing:
//! a tenant declared on a compute backend must be served **bit-identically**
//! to the standalone engine running that backend's `ExecMode`
//! (`Batched` for f32, `Quantized` for int8; the hwsim backend runs the f32
//! kernels and only *models* latency, so it verifies against the f32
//! engine).  The suite also pins the routing contract itself: every result's
//! disposition backend matches its tenant's declared backend, per-tenant
//! accounting conserves events under overload, the modeled-latency stream of
//! the hwsim backend is deterministic, and per-tenant staleness bounds
//! tighten the shared cache's global bound.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::quantized::quantize_model;
use tgnn_core::{
    BackendKind, Disposition, ExecMode, InferenceEngine, ModelConfig, OptimizationVariant,
    OverloadPolicy, TenantId, TgnModel, TimeEncoderKind,
};
use tgnn_data::{generate, tiny};
use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};
use tgnn_quant::QuantConfig;
use tgnn_serve::{
    CacheConfig, ServeConfig, ServeReport, ServedBatch, StreamServer, SubmitOutcome, TenantSpec,
};
use tgnn_tensor::{Float, TensorRng};

fn setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let graph = generate(&tiny(seed));
    let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::NpMedium);
    let mut rng = TensorRng::new(seed ^ 0xbac4e27d);
    let mut model = TgnModel::new(cfg, &mut rng);
    if model.config.time_encoder == TimeEncoderKind::Lut {
        let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
        model.calibrate_lut(&deltas);
    }
    (model, Arc::new(graph))
}

/// A model with an attached int8 weight set whose **memory path stays f32**
/// (`quantize_gru: false`): heterogeneous servers run the shared memory
/// stage on the detached f32 clone, so the standalone `Quantized` reference
/// engine must walk the identical f32 state trajectory for the per-batch
/// comparison to be bitwise.
fn quantized_setup(seed: u64) -> (TgnModel, Arc<TemporalGraph>) {
    let (mut model, graph) = setup(seed);
    let calibration = &graph.events()[..400.min(graph.num_events())];
    let q = Arc::new(quantize_model(
        &model,
        &graph,
        &[],
        calibration,
        64,
        QuantConfig {
            quantize_gru: false,
            ..QuantConfig::default()
        },
    ));
    model.attach_quantized(q);
    (model, graph)
}

/// Size-only sealing (the deadline never fires) so micro-batch boundaries —
/// and therefore the replay comparison — are deterministic.
fn routed_config(tenants: Vec<TenantSpec>, num_shards: usize, gnn_workers: usize) -> ServeConfig {
    ServeConfig {
        max_batch: 32,
        batch_deadline: Duration::from_secs(3600),
        num_shards,
        gnn_workers,
        tenants,
        ..ServeConfig::default()
    }
}

/// Streams `events` through a server, assigning event *i* to tenant
/// `assign(i)`, polling as a live client would; returns the served batches
/// in poll order plus the drain report.  `check_table` asserts the neighbor
/// table's per-vertex FIFO chronology afterwards — valid for single-tenant
/// feeds, but a multi-tenant heterogeneous feed legitimately violates it:
/// per-backend partition sealing (like the weighted-fair interleave it
/// extends) orders *batches*, not global timestamps, so a vertex shared
/// across tenants can see a cross-epoch regression.
fn serve_routed(
    model: TgnModel,
    graph: &Arc<TemporalGraph>,
    events: &[InteractionEvent],
    assign: impl Fn(usize) -> TenantId,
    config: ServeConfig,
    check_table: bool,
) -> (Vec<ServedBatch>, ServeReport) {
    let mut server = StreamServer::new(model, graph.clone(), config);
    let mut served = Vec::new();
    for (i, &e) in events.iter().enumerate() {
        let outcome = server
            .submit_for(assign(i), e)
            .expect("chronological submit");
        assert_eq!(outcome, SubmitOutcome::Admitted, "Block tenants never shed");
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    if check_table {
        assert!(server.neighbor_table().check_invariants().is_ok());
    }
    (served, report)
}

/// Asserts the routing stamp on every served batch: the batch-level backend,
/// every meta's backend (tenant-resolved), and tenant membership.
fn assert_routing(served: &[ServedBatch], declared: &[BackendKind], label: &str) {
    for b in served {
        for m in &b.metas {
            let expect = declared[m.tenant.index()];
            assert_eq!(
                m.backend,
                expect,
                "{label}: epoch {} result for tenant {} stamped {} but the tenant declared {}",
                b.epoch,
                m.tenant.index(),
                m.backend,
                expect
            );
            assert_eq!(
                m.backend, b.backend,
                "{label}: epoch {} mixes backends inside one sealed batch",
                b.epoch
            );
        }
    }
}

/// Replays the served batch sequence through a standalone engine in epoch
/// order and bit-compares the embeddings of every batch the predicate
/// selects.  The engine replays **every** batch (selected or not) so its
/// memory trajectory stays in lockstep with the server's shared state.
fn assert_matches_engine(
    mut engine: InferenceEngine,
    graph: &TemporalGraph,
    served: &[ServedBatch],
    select: impl Fn(&ServedBatch) -> bool,
    label: &str,
) -> usize {
    let mut compared = 0;
    for batch in served.iter().filter(|b| b.epoch > 0) {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), graph);
        if !select(batch) {
            continue;
        }
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "{label}: embeddings diverged bitwise in epoch {}",
            batch.epoch
        );
        compared += 1;
    }
    compared
}

/// The f32 backend row of a report, with basic shape checks.
fn backend_row<'a>(
    report: &'a ServeReport,
    kind: BackendKind,
    label: &str,
) -> &'a tgnn_serve::BackendStats {
    report
        .backends
        .iter()
        .find(|b| b.kind == kind)
        .unwrap_or_else(|| panic!("{label}: report has no {kind} backend row"))
}

#[test]
fn f32_routed_tenant_is_bit_identical_to_batched_engine() {
    for seed in [3u64, 11] {
        let (model, graph) = setup(seed);
        let events = &graph.events()[..200.min(graph.num_events())];
        for gnn_workers in [1usize, 2, 4] {
            for num_shards in [1usize, 4] {
                let label = format!("f32 seed={seed} shards={num_shards} gnn={gnn_workers}");
                let tenants = vec![TenantSpec::new("f32").with_backend(BackendKind::F32)];
                let (served, report) = serve_routed(
                    model.clone(),
                    &graph,
                    events,
                    |_| TenantId::DEFAULT,
                    routed_config(tenants, num_shards, gnn_workers),
                    true,
                );
                let total: usize = served.iter().map(|b| b.events.len()).sum();
                assert_eq!(total, events.len(), "{label}: events lost or duplicated");
                assert!(report.commit_log_clean, "{label}");
                assert_routing(&served, &[BackendKind::F32], &label);
                assert!(
                    served.iter().all(|b| b.modeled_latency.is_none()),
                    "{label}: a real backend must not model latency"
                );
                assert_eq!(report.tenants[0].backend, BackendKind::F32, "{label}");
                let row = backend_row(&report, BackendKind::F32, &label);
                assert_eq!(report.backends.len(), 1, "{label}: one active backend");
                assert_eq!(row.served_events as usize, events.len(), "{label}");
                assert_eq!(row.served_batches as usize, served.len(), "{label}");
                assert!(row.modeled_latency.is_none(), "{label}");
                let engine = InferenceEngine::new(model.clone(), graph.num_nodes())
                    .with_mode(ExecMode::Batched);
                let compared = assert_matches_engine(engine, &graph, &served, |_| true, &label);
                assert_eq!(compared, served.len(), "{label}: batches skipped");
            }
        }
    }
}

#[test]
fn int8_routed_tenant_is_bit_identical_to_quantized_engine() {
    for seed in [3u64, 11] {
        let (model, graph) = quantized_setup(seed);
        let events = &graph.events()[..200.min(graph.num_events())];
        for gnn_workers in [1usize, 2, 4] {
            for num_shards in [1usize, 4] {
                let label = format!("int8 seed={seed} shards={num_shards} gnn={gnn_workers}");
                let tenants = vec![TenantSpec::new("int8").with_backend(BackendKind::Int8)];
                let (served, report) = serve_routed(
                    model.clone(),
                    &graph,
                    events,
                    |_| TenantId::DEFAULT,
                    routed_config(tenants, num_shards, gnn_workers),
                    true,
                );
                let total: usize = served.iter().map(|b| b.events.len()).sum();
                assert_eq!(total, events.len(), "{label}: events lost or duplicated");
                assert_routing(&served, &[BackendKind::Int8], &label);
                assert_eq!(report.tenants[0].backend, BackendKind::Int8, "{label}");
                let row = backend_row(&report, BackendKind::Int8, &label);
                assert_eq!(report.backends.len(), 1, "{label}: one active backend");
                assert_eq!(row.served_events as usize, events.len(), "{label}");
                assert!(row.modeled_latency.is_none(), "{label}");
                let engine = InferenceEngine::new(model.clone(), graph.num_nodes())
                    .with_mode(ExecMode::Quantized);
                let compared = assert_matches_engine(engine, &graph, &served, |_| true, &label);
                assert_eq!(compared, served.len(), "{label}: batches skipped");
            }
        }
    }
}

/// The heterogeneous flagship: three tenants declared on three different
/// backends share one feed (event *i* → tenant *i* mod 3) and one temporal
/// state, and **each** tenant's batches must be bit-identical to the
/// standalone engine of its backend replaying the server's exact batch
/// sequence.  Both reference engines replay *every* batch — the shared f32
/// memory trajectory advances identically in both (the int8 weight set
/// leaves the GRU in f32) — and the comparison selects per batch which
/// engine is authoritative.  `commit_log_clean` is deliberately *not*
/// asserted: per-backend partition sealing orders batches by backend code
/// within an admission round, so cross-batch timestamp regressions between
/// tenants are expected (exactly as with weighted-fair multi-tenant
/// interleave).
#[test]
fn mixed_backend_tenants_match_their_per_backend_engine_replays() {
    let declared = [BackendKind::F32, BackendKind::Int8, BackendKind::HwSim];
    for seed in [5u64, 19] {
        let (model, graph) = quantized_setup(seed);
        let events = &graph.events()[..240.min(graph.num_events())];
        for gnn_workers in [1usize, 2] {
            for num_shards in [1usize, 3] {
                let label = format!("mixed seed={seed} shards={num_shards} gnn={gnn_workers}");
                let tenants = vec![
                    TenantSpec::new("prod-f32").with_backend(BackendKind::F32),
                    TenantSpec::new("batch-int8").with_backend(BackendKind::Int8),
                    TenantSpec::new("canary-hwsim").with_backend(BackendKind::HwSim),
                ];
                let (served, report) = serve_routed(
                    model.clone(),
                    &graph,
                    events,
                    |i| TenantId(i as u32 % 3),
                    routed_config(tenants, num_shards, gnn_workers),
                    false,
                );
                let total: usize = served.iter().map(|b| b.events.len()).sum();
                assert_eq!(total, events.len(), "{label}: events lost or duplicated");
                assert!(
                    served.windows(2).all(|w| w[0].epoch < w[1].epoch),
                    "{label}: epochs out of order"
                );
                assert_routing(&served, &declared, &label);

                // Modeled latency appears exactly on the modeled backend.
                for b in &served {
                    assert_eq!(
                        b.modeled_latency.is_some(),
                        b.backend == BackendKind::HwSim,
                        "{label}: epoch {} modeled-latency stamp is wrong for {}",
                        b.epoch,
                        b.backend
                    );
                }

                // Per-tenant engine replays.  f32 and hwsim both verify
                // against the f32 engine (hwsim computes with the same f32
                // kernels; only its latency is simulated).
                let mut f32_model = model.clone();
                f32_model.detach_quantized();
                let f32_engine =
                    InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Batched);
                let f32_compared = assert_matches_engine(
                    f32_engine,
                    &graph,
                    &served,
                    |b| b.backend != BackendKind::Int8,
                    &label,
                );
                let int8_engine = InferenceEngine::new(model.clone(), graph.num_nodes())
                    .with_mode(ExecMode::Quantized);
                let int8_compared = assert_matches_engine(
                    int8_engine,
                    &graph,
                    &served,
                    |b| b.backend == BackendKind::Int8,
                    &label,
                );
                assert_eq!(f32_compared + int8_compared, served.len(), "{label}");
                assert!(int8_compared > 0, "{label}: int8 tenant never served");

                // Report: three active backends, all of them exercised, and
                // the modeled row carries a latency summary.
                assert_eq!(report.backends.len(), 3, "{label}");
                let mut events_by_backend = 0usize;
                for &kind in &declared {
                    let row = backend_row(&report, kind, &label);
                    assert!(row.served_batches > 0, "{label}: {kind} row never served");
                    assert_eq!(
                        row.modeled_latency.is_some(),
                        kind == BackendKind::HwSim,
                        "{label}: {kind} modeled-latency row is wrong"
                    );
                    events_by_backend += row.served_events as usize;
                }
                assert_eq!(events_by_backend, events.len(), "{label}");
                for (i, &kind) in declared.iter().enumerate() {
                    assert_eq!(report.tenants[i].backend, kind, "{label}");
                    assert_eq!(
                        report.tenants[i].served as usize,
                        events.len() / 3 + usize::from(i < events.len() % 3),
                        "{label}: tenant {i} served count"
                    );
                }
            }
        }
    }
}

/// Routing conservation under real overload: three drop-policy tenants on
/// three backends, tiny queue bounds, submission bursts that outrun the
/// drain.  Per tenant, `submitted == served + dropped()` must balance
/// (stale answers count as served), and every delivered result — pipeline
/// or cache — must still carry its tenant's declared backend.
#[test]
fn overloaded_heterogeneous_routing_conserves_events_per_tenant() {
    let declared = [BackendKind::F32, BackendKind::Int8, BackendKind::HwSim];
    let (model, graph) = quantized_setup(13);
    let base = &graph.events()[..240.min(graph.num_events())];
    let span = 1.0 + base.last().unwrap().timestamp - base[0].timestamp;
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_secs(3600),
        admission_capacity: 4,
        stage_capacity: 1,
        results_capacity: 2,
        num_shards: 2,
        gnn_workers: 2,
        cache: Some(CacheConfig {
            capacity: 1024,
            staleness_bound_epochs: 64,
        }),
        tenants: vec![
            TenantSpec::new("f32-dropnew")
                .with_backend(BackendKind::F32)
                .with_capacity(4)
                .with_policy(OverloadPolicy::DropNewest),
            TenantSpec::new("int8-dropold")
                .with_backend(BackendKind::Int8)
                .with_capacity(4)
                .with_policy(OverloadPolicy::DropOldest),
            TenantSpec::new("hwsim-stale")
                .with_backend(BackendKind::HwSim)
                .with_capacity(4)
                .with_policy(OverloadPolicy::ServeStale),
        ],
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    let mut served = Vec::new();
    // Lap 0 polls (populating pipeline history and the cache); lap 1 never
    // polls, so the stages back up and every policy path executes.
    for lap in 0..2u64 {
        for (i, &e) in base.iter().enumerate() {
            let mut e = e;
            e.timestamp += lap as f64 * span;
            server
                .submit_for(TenantId(i as u32 % 3), e)
                .expect("drop-policy submits never error");
            if lap == 0 {
                while let Some(b) = server.poll() {
                    served.push(b);
                }
            }
        }
    }
    server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }

    assert_routing(&served, &declared, "overload");
    let report = server.report();
    let mut dropped_total = 0;
    for (i, t) in report.tenants.iter().enumerate() {
        assert_eq!(t.backend, declared[i], "tenant {i} backend");
        assert_eq!(
            t.counters.submitted,
            t.served + t.dropped(),
            "tenant {i} ({}) leaked events: {:?}",
            t.name,
            t.counters
        );
        // `admitted` counts events that *entered* the queue — DropOldest
        // evicts already-admitted events, so the decomposition only holds
        // for policies that never evict.
        if t.policy != OverloadPolicy::DropOldest {
            assert_eq!(
                t.served,
                t.counters.admitted + t.served_stale,
                "tenant {i} served must be pipeline results plus stale answers"
            );
        }
        dropped_total += t.dropped();
    }
    assert!(
        dropped_total > 0,
        "the burst lap must actually shed load, or this test is vacuous"
    );
    // Delivered events per tenant match the report's accounting.
    let mut delivered = [0u64; 3];
    for b in &served {
        for m in &b.metas {
            delivered[m.tenant.index()] += 1;
        }
    }
    for (i, t) in report.tenants.iter().enumerate() {
        assert_eq!(delivered[i], t.served, "tenant {i} delivery count");
    }
}

/// The modeled backend is a simulator: same seed, same feed, same sealing →
/// the same batch composition, the same modeled-latency stream, and
/// bit-identical embeddings, run to run.
#[test]
fn hwsim_backend_is_deterministic_run_to_run() {
    let (model, graph) = setup(29);
    let events = &graph.events()[..160.min(graph.num_events())];
    let run = || {
        let tenants = vec![TenantSpec::new("hwsim").with_backend(BackendKind::HwSim)];
        serve_routed(
            model.clone(),
            &graph,
            events,
            |_| TenantId::DEFAULT,
            routed_config(tenants, 2, 2),
            true,
        )
    };
    let (served_a, report_a) = run();
    let (served_b, report_b) = run();
    assert_eq!(served_a.len(), served_b.len(), "batch count diverged");
    for (a, b) in served_a.iter().zip(&served_b) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.events, b.events, "epoch {} batch composition", a.epoch);
        assert_eq!(
            a.modeled_latency, b.modeled_latency,
            "epoch {} modeled latency diverged between identical runs",
            a.epoch
        );
        assert!(a.modeled_latency.is_some(), "hwsim must model every batch");
        assert!(a.modeled_latency.unwrap() > Duration::ZERO);
        assert_eq!(a.embeddings, b.embeddings, "epoch {} embeddings", a.epoch);
    }
    let row_a = backend_row(&report_a, BackendKind::HwSim, "hwsim run A");
    let row_b = backend_row(&report_b, BackendKind::HwSim, "hwsim run B");
    assert_eq!(row_a.served_events, row_b.served_events);
    let (ml_a, ml_b) = (
        row_a.modeled_latency.as_ref().unwrap(),
        row_b.modeled_latency.as_ref().unwrap(),
    );
    assert_eq!(ml_a.p50_ms, ml_b.p50_ms, "modeled p50 diverged");
    assert_eq!(ml_a.max_ms, ml_b.max_ms, "modeled max diverged");
}

/// Per-tenant staleness bounds over one shared cache: the tight tenant's
/// stale answers never age past its own bound even though the cache keeps
/// (and serves the loose tenant) entries up to the global bound.
#[test]
fn per_tenant_staleness_bounds_tighten_the_shared_cache() {
    let global_bound = 32u64;
    let tight_bound = 2u64;
    let (model, graph) = setup(23);
    let base = &graph.events()[..200.min(graph.num_events())];
    let span = 1.0 + base.last().unwrap().timestamp - base[0].timestamp;
    let config = ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_secs(3600),
        admission_capacity: 4,
        stage_capacity: 1,
        results_capacity: 2,
        num_shards: 2,
        gnn_workers: 2,
        cache: Some(CacheConfig {
            capacity: 1024,
            staleness_bound_epochs: global_bound,
        }),
        tenants: vec![
            TenantSpec::new("tight")
                .with_capacity(4)
                .with_policy(OverloadPolicy::ServeStale)
                .with_staleness_bound(tight_bound),
            TenantSpec::new("loose")
                .with_capacity(4)
                .with_policy(OverloadPolicy::ServeStale),
        ],
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), config);
    let mut served = Vec::new();
    // Warm lap: retry every event until it is *admitted* (polling between
    // tries), so the pipeline serves the whole feed and the cache covers
    // every vertex across ~25 sealed epochs — most entries age beyond the
    // tight bound but stay inside the global one.
    for (i, &e) in base.iter().enumerate() {
        let mut tries = 0;
        while server.submit_for(TenantId(i as u32 % 2), e).unwrap() != SubmitOutcome::Admitted {
            tries += 1;
            assert!(tries < 10_000, "warm lap could not admit an event");
            while let Some(b) = server.poll() {
                served.push(b);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    // Burst lap: no polling, so the stages back up and later submissions
    // deterministically exercise each tenant's stale path.
    for (i, &e) in base.iter().enumerate() {
        let mut e = e;
        e.timestamp += span;
        server.submit_for(TenantId(i as u32 % 2), e).unwrap();
    }
    server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }

    // Served history: epoch → vertex → embedding, for stale bit-identity.
    let mut history: HashMap<u64, HashMap<u32, &[Float]>> = HashMap::new();
    for b in served.iter().filter(|b| b.epoch > 0) {
        let entry = history.entry(b.epoch).or_default();
        for (v, emb) in &b.embeddings {
            entry.insert(*v, emb.as_slice());
        }
    }
    let bounds = [tight_bound, global_bound];
    let mut max_age = [0u64; 2];
    let mut stale_counts = [0usize; 2];
    for b in served.iter().filter(|b| b.epoch == 0) {
        assert_eq!(b.events.len(), 1, "stale batches answer one event");
        let tenant = b.metas[0].tenant.index();
        let age = match b.metas[0].disposition {
            Disposition::Stale { age_epochs } => age_epochs,
            other => panic!("stale batch carries disposition {other:?}"),
        };
        assert!(
            age <= bounds[tenant],
            "tenant {tenant} got a stale answer aged {age} epochs past its bound {}",
            bounds[tenant]
        );
        max_age[tenant] = max_age[tenant].max(age);
        stale_counts[tenant] += 1;
        for ((v, emb), &epoch) in b.embeddings.iter().zip(&b.cache_epochs) {
            let original = history
                .get(&epoch)
                .and_then(|m| m.get(v))
                .unwrap_or_else(|| panic!("stale answer cites unserved epoch {epoch}"));
            assert_eq!(*original, emb.as_slice(), "stale embedding diverged");
        }
    }
    assert!(
        stale_counts[1] > 0,
        "the loose tenant never exercised the stale path"
    );
    // The bounds must actually differ in effect: the loose tenant (global
    // bound) serves ages the tight tenant's own bound forbids — over a
    // ~25-epoch warm history, some of its hits are bound to be older.
    assert!(
        max_age[1] > tight_bound,
        "loose tenant max stale age {} never exceeded the tight bound {tight_bound} — \
         the per-tenant override was not observable",
        max_age[1]
    );
    let report = server.report();
    let cache = report.cache.as_ref().expect("ServeStale run reports cache");
    assert_eq!(cache.staleness_bound_epochs, global_bound);
    assert!(cache.stale_age.max <= global_bound);
}
