//! # tgnn-durable — checksummed snapshots + write-ahead log for tgnn-serve
//!
//! The serving stack keeps all temporal-graph state — node memory, mailbox,
//! neighbor tables, tenant ingress queues — in RAM; this crate makes that
//! state survive a crash or restart **bit-identically**.  Two mechanisms:
//!
//! * **Snapshots** ([`snapshot`]): per-shard, CRC-checked images of
//!   `ShardedMemory` and `ShardedNeighborTable`, captured at epoch barriers
//!   (each shard under its own lock, just before its gate bump — the
//!   `EpochGate` commit protocol is the consistency point, so no global
//!   pause is needed) and committed by a manifest written last.
//!
//! * **A write-ahead log** ([`wal`]): length-prefixed, CRC-framed records of
//!   every admission outcome, eviction, sealed micro-batch, and delivered
//!   epoch, in rotating segments, flushed before each batch seal.  Replaying
//!   the tail over the latest valid snapshot reproduces the exact pipeline
//!   state — including drops-at-ingress semantics — at the crash point.
//!
//! [`recovery`] derives the restart plan (ack watermark, sealed epochs to
//! replay, per-tenant ingress tails to readmit) from a WAL scan; the serve
//! crate drives the actual replay through its normal stage entry points.
//!
//! The crate is deliberately storage-only: it knows byte formats and
//! invariants, not pipeline scheduling.  Everything is hand-rolled
//! little-endian codec + CRC-32 because the workspace is dependency-free.

#![warn(missing_docs)]

pub(crate) mod codec;
pub mod crc;
pub mod recovery;
pub mod snapshot;
pub mod wal;

use std::path::PathBuf;
use std::sync::Arc;

pub use crc::crc32;
pub use recovery::{plan_recovery, RecoveryPlan, SealedEpoch};
pub use snapshot::{
    decode_memory_shard, decode_neighbor_shard, encode_memory_shard, encode_neighbor_shard,
    list_snapshots, load_snapshot, write_snapshot, LoadedSnapshot, SnapshotEntry, SnapshotMeta,
};
pub use wal::{
    read_wal, repair_torn_tail, segment_name, AdmitDisposition, TornTail, Wal, WalFaultHook,
    WalRecord, WalScan, WalStats,
};

/// When the WAL writer calls `fsync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush + fsync after every record: no acknowledged write is ever lost,
    /// at a per-event syscall cost.  What the recovery property tests use so
    /// a simulated crash loses nothing that was admitted.
    Always,
    /// Buffer in user space; flush + fsync at each batch seal (and at
    /// snapshots and drain).  The default: a crash can lose events admitted
    /// after the last seal — exactly the events the client would learn to
    /// resubmit from the recovered resume index.
    OnSeal,
    /// Flush (`write`) at seal but never fsync: the OS decides when bytes
    /// reach the disk.  Survives process death, not power loss.
    Never,
}

impl FsyncPolicy {
    /// Stable CLI/config label.
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnSeal => "onseal",
            FsyncPolicy::Never => "never",
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Ok(FsyncPolicy::Always),
            "onseal" | "on-seal" | "seal" => Ok(FsyncPolicy::OnSeal),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy '{other}' (expected always|onseal|never)"
            )),
        }
    }
}

/// Opt-in durability settings, carried in `ServeConfig::durability`.
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Root directory: WAL segments live directly in it, snapshots in
    /// `snap-{epoch:08}/` subdirectories.
    pub dir: PathBuf,
    /// Snapshot every `n` committed epochs (plus the warm-up floor snapshot
    /// and the final drain snapshot).  `0` disables interval snapshots.
    /// The default (256) trades recovery time for serving throughput: a
    /// snapshot encodes and fsyncs the entire sharded state, so it should
    /// be rare next to WAL appends, and the WAL tail it leaves for replay
    /// (≤ 256 epochs) recovers in well under a second.
    pub snapshot_every: u64,
    /// When the WAL fsyncs.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Test-only crash injection: called with the epoch before its `Seal`
    /// record is appended; returning `true` freezes the WAL (losing buffered
    /// records, as a real crash would) and panics the batcher so the
    /// pipeline unwinds through the normal poison machinery.
    pub wal_fault: Option<WalFaultHook>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with default interval/policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 256,
            fsync: FsyncPolicy::OnSeal,
            segment_bytes: 8 << 20,
            wal_fault: None,
        }
    }

    /// Sets the snapshot interval (epochs).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Installs a WAL crash-injection hook (tests only).
    pub fn with_wal_fault(mut self, hook: WalFaultHook) -> Self {
        self.wal_fault = Some(hook);
        self
    }
}

impl std::fmt::Debug for DurabilityConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityConfig")
            .field("dir", &self.dir)
            .field("snapshot_every", &self.snapshot_every)
            .field("fsync", &self.fsync)
            .field("segment_bytes", &self.segment_bytes)
            .field("wal_fault", &self.wal_fault.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// Errors surfaced by scans, loads, and recovery planning.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// Bytes on disk violate a format or causal invariant.
    Corrupt(String),
}

impl DurableError {
    /// Convenience constructor for [`DurableError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        DurableError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurableError::Corrupt(msg) => write!(f, "durable state corrupt: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// Convenience: wraps a closure as a [`WalFaultHook`].
pub fn wal_fault_hook(f: impl Fn(u64) -> bool + Send + Sync + 'static) -> WalFaultHook {
    Arc::new(f)
}
