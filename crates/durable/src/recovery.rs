//! Turning a WAL scan into a recovery plan: the acked watermark, the sealed
//! epochs to replay, and the per-tenant ingress tails to readmit.
//!
//! ## Why this is sound
//!
//! The WAL is a single append-ordered stream and every flush is an in-order
//! prefix, so a torn tail (or frozen user-space buffer) only ever truncates
//! a *suffix*.  Records are appended in causal order:
//!
//! * an event's `Admit` precedes any `Seal` containing it (the admit is
//!   written under the admission lock before the event is enqueued);
//! * a batch's `Seal` is made durable before the batch's results are
//!   *delivered* (group commit: the serve layer gates delivery on the seal
//!   fsync watermark), hence before its `Ack` (written at delivery) can
//!   exist.
//!
//! Therefore in any durable prefix: every sealed event has a durable admit,
//! every acked epoch has a durable seal, and `max(Ack) <= max(Seal)`.  The
//! planner treats violations of these invariants as corruption.
//!
//! ## Tail reconstruction
//!
//! A tenant's ingress tail — events admitted but not yet sealed — is
//! rebuilt by replaying the history: push each `Admit{Admitted}`, then
//! remove sealed and evicted events *by identity* (first match from the
//! front).  Identity matters for `Evict`: a `DropOldest` eviction discards
//! the queue head *at eviction time*, which is not necessarily the oldest
//! unsealed admit — earlier admits may already sit in the scheduler or
//! batcher, outside the ingress queue but not yet in any seal.

use crate::wal::{AdmitDisposition, WalRecord, WalScan};
use crate::DurableError;
use tgnn_graph::InteractionEvent;

/// One sealed micro-batch recovered from the WAL.
#[derive(Clone, Debug, PartialEq)]
pub struct SealedEpoch {
    /// The 1-based pipeline epoch.
    pub epoch: u64,
    /// `(tenant, event)` in batch order — the authoritative batch content.
    pub events: Vec<(u32, InteractionEvent)>,
}

/// Everything a restart needs, derived from the durable WAL prefix.
#[derive(Debug, Default)]
pub struct RecoveryPlan {
    /// Highest epoch whose results were delivered to the client (`A`).
    pub acked: u64,
    /// Highest durable sealed epoch (`N`); the recovered server resumes
    /// sealing at `N + 1`.
    pub max_sealed: u64,
    /// First durable sealed epoch, or 0 when the WAL has no seals.  The base
    /// is not necessarily 1: warm-up consumes epochs before the first
    /// streamed seal.  Subsequent seals must be gap-free from here.
    pub first_sealed: u64,
    /// Sealed epochs `first_sealed..=N`, ascending, gap-free.
    pub sealed: Vec<SealedEpoch>,
    /// Per-tenant admitted-but-unsealed events, in admit order, to put back
    /// into the ingress queues.
    pub tails: Vec<Vec<InteractionEvent>>,
    /// Per-tenant count of durable submit outcomes (admits *and* drops) —
    /// the index from which a client should resume submission.
    pub admits: Vec<u64>,
    /// Per-tenant drops at the bound (`DropNewest`).
    pub dropped_newest: Vec<u64>,
    /// Per-tenant drops by the token-bucket rate limit.
    pub dropped_throttled: Vec<u64>,
    /// Per-tenant events answered from the embedding cache (`ServeStale`).
    /// Counted like drops for tail purposes — the event never queued — but
    /// reported separately because the client did receive a (stale) result.
    pub served_stale: Vec<u64>,
    /// Per-tenant `DropOldest` evictions.
    pub evicted: Vec<u64>,
    /// Per-tenant largest durable submitted timestamp
    /// (`f64::NEG_INFINITY` when the tenant never submitted) — the
    /// chronology floor to reimpose after restart.
    pub max_timestamp: Vec<f64>,
}

fn remove_by_identity(
    queue: &mut Vec<InteractionEvent>,
    event: &InteractionEvent,
    what: &str,
) -> Result<(), DurableError> {
    match queue.iter().position(|e| e == event) {
        Some(i) => {
            queue.remove(i);
            Ok(())
        }
        None => Err(DurableError::corrupt(format!(
            "{what} references event (src {}, dst {}, edge {}, t {}) with no durable unsealed admit",
            event.src, event.dst, event.edge_id, event.timestamp
        ))),
    }
}

/// Builds a [`RecoveryPlan`] from a WAL scan.  `num_tenants` is the size of
/// the restarting server's tenant table; a record referencing a tenant
/// outside it fails the plan (the tenant configuration must not shrink
/// across a restart).
pub fn plan_recovery(scan: &WalScan, num_tenants: usize) -> Result<RecoveryPlan, DurableError> {
    let mut plan = RecoveryPlan {
        tails: vec![Vec::new(); num_tenants],
        admits: vec![0; num_tenants],
        dropped_newest: vec![0; num_tenants],
        dropped_throttled: vec![0; num_tenants],
        served_stale: vec![0; num_tenants],
        evicted: vec![0; num_tenants],
        max_timestamp: vec![f64::NEG_INFINITY; num_tenants],
        ..RecoveryPlan::default()
    };
    let tenant = |t: u32| -> Result<usize, DurableError> {
        let t = t as usize;
        if t < num_tenants {
            Ok(t)
        } else {
            Err(DurableError::corrupt(format!(
                "WAL references tenant {t} but the server has {num_tenants} tenants"
            )))
        }
    };
    for rec in &scan.records {
        match rec {
            WalRecord::Admit {
                tenant: t,
                event,
                disposition,
            } => {
                let t = tenant(*t)?;
                plan.admits[t] += 1;
                if event.timestamp > plan.max_timestamp[t] {
                    plan.max_timestamp[t] = event.timestamp;
                }
                match disposition {
                    AdmitDisposition::Admitted => plan.tails[t].push(*event),
                    AdmitDisposition::DroppedNewest => plan.dropped_newest[t] += 1,
                    AdmitDisposition::DroppedThrottled => plan.dropped_throttled[t] += 1,
                    AdmitDisposition::ServedStale => plan.served_stale[t] += 1,
                }
            }
            WalRecord::Evict { tenant: t, event } => {
                let t = tenant(*t)?;
                plan.evicted[t] += 1;
                remove_by_identity(&mut plan.tails[t], event, "Evict")?;
            }
            WalRecord::Seal { epoch, events } => {
                if plan.first_sealed == 0 {
                    if *epoch == 0 {
                        return Err(DurableError::corrupt("Seal epoch 0 is invalid"));
                    }
                    plan.first_sealed = *epoch;
                } else if *epoch != plan.max_sealed + 1 {
                    return Err(DurableError::corrupt(format!(
                        "Seal epoch {epoch} after {} — the seal sequence must be gap-free",
                        plan.max_sealed
                    )));
                }
                for (t, event) in events {
                    remove_by_identity(&mut plan.tails[tenant(*t)?], event, "Seal")?;
                }
                plan.max_sealed = *epoch;
                plan.sealed.push(SealedEpoch {
                    epoch: *epoch,
                    events: events.clone(),
                });
            }
            WalRecord::Ack { epoch } => {
                if *epoch > plan.max_sealed {
                    return Err(DurableError::corrupt(format!(
                        "Ack for epoch {epoch} precedes its seal (max sealed {})",
                        plan.max_sealed
                    )));
                }
                if *epoch > plan.acked {
                    plan.acked = *epoch;
                }
            }
            WalRecord::SnapshotMark { .. } => {}
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, t: f64) -> InteractionEvent {
        InteractionEvent::new(src, src + 1, src, t)
    }

    fn admit(tenant: u32, event: InteractionEvent) -> WalRecord {
        WalRecord::Admit {
            tenant,
            event,
            disposition: AdmitDisposition::Admitted,
        }
    }

    fn scan_of(records: Vec<WalRecord>) -> WalScan {
        WalScan {
            records,
            ..WalScan::default()
        }
    }

    #[test]
    fn tails_exclude_sealed_and_evicted_events() {
        // Tenant 0 admits e0..e3; e0 and e2 seal (scheduler had drained e2
        // past e1), e1 is evicted by DropOldest, e3 remains in the tail.
        let (e0, e1, e2, e3) = (ev(0, 1.0), ev(1, 2.0), ev(2, 3.0), ev(3, 4.0));
        let plan = plan_recovery(
            &scan_of(vec![
                admit(0, e0),
                admit(0, e1),
                admit(0, e2),
                WalRecord::Seal {
                    epoch: 1,
                    events: vec![(0, e0), (0, e2)],
                },
                WalRecord::Evict {
                    tenant: 0,
                    event: e1,
                },
                admit(0, e3),
                WalRecord::Ack { epoch: 1 },
            ]),
            1,
        )
        .unwrap();
        assert_eq!(plan.tails[0], vec![e3]);
        assert_eq!(plan.acked, 1);
        assert_eq!(plan.max_sealed, 1);
        assert_eq!(plan.admits[0], 4);
        assert_eq!(plan.evicted[0], 1);
        assert_eq!(plan.max_timestamp[0], 4.0);
    }

    #[test]
    fn drops_are_counted_not_queued() {
        let plan = plan_recovery(
            &scan_of(vec![
                WalRecord::Admit {
                    tenant: 0,
                    event: ev(0, 1.0),
                    disposition: AdmitDisposition::DroppedNewest,
                },
                WalRecord::Admit {
                    tenant: 0,
                    event: ev(1, 2.0),
                    disposition: AdmitDisposition::DroppedThrottled,
                },
                WalRecord::Admit {
                    tenant: 0,
                    event: ev(2, 3.0),
                    disposition: AdmitDisposition::ServedStale,
                },
            ]),
            1,
        )
        .unwrap();
        assert!(plan.tails[0].is_empty());
        assert_eq!(plan.admits[0], 3);
        assert_eq!(plan.dropped_newest[0], 1);
        assert_eq!(plan.dropped_throttled[0], 1);
        assert_eq!(plan.served_stale[0], 1);
        assert_eq!(plan.max_timestamp[0], 3.0);
    }

    #[test]
    fn invariant_violations_are_corruption() {
        // Seal gap (the base epoch is free — warm-up consumes epochs — but
        // subsequent seals must be contiguous).
        assert!(plan_recovery(
            &scan_of(vec![
                WalRecord::Seal {
                    epoch: 3,
                    events: vec![],
                },
                WalRecord::Seal {
                    epoch: 5,
                    events: vec![],
                },
            ]),
            1,
        )
        .is_err());
        // Seal of an event with no durable admit.
        assert!(plan_recovery(
            &scan_of(vec![WalRecord::Seal {
                epoch: 1,
                events: vec![(0, ev(0, 1.0))],
            }]),
            1,
        )
        .is_err());
        // Ack beyond the sealed watermark.
        assert!(plan_recovery(&scan_of(vec![WalRecord::Ack { epoch: 1 }]), 1).is_err());
        // Tenant outside the table.
        assert!(plan_recovery(&scan_of(vec![admit(3, ev(0, 1.0))]), 1).is_err());
    }
}
