//! Checksummed, versioned snapshots of the sharded serving state.
//!
//! A snapshot is a directory `snap-{epoch:08}/` under the durability root:
//!
//! ```text
//! snap-00000040/
//!   shard-0000.mem    NodeMemory of shard 0   (magic "TGNM")
//!   shard-0000.nbr    NeighborTable of shard 0 (magic "TGNN")
//!   ...
//!   MANIFEST          written + fsynced last   (magic "TGNS")
//! ```
//!
//! Every shard file is `[magic 4][version u32][epoch u64][shard u32]
//! [payload_len u64][crc32(payload) u32][payload]`; the manifest repeats the
//! per-shard CRC/length pairs and is itself CRC-framed.  **The manifest is
//! the commit point**: a crash mid-snapshot leaves a directory without a
//! valid manifest, which [`list_snapshots`] silently skips and a later
//! snapshot at the same epoch overwrites.
//!
//! ## Consistency
//!
//! Shard payloads are captured by the update worker *under each shard's
//! lock, before that shard's epoch gate is bumped* (the `commit_epoch_with`
//! observers in `tgnn-core`/`tgnn-graph`).  Because downstream stages wait on
//! the full shard mask of the next epoch before touching state, each
//! captured shard is exactly the post-batch state of the snapshot's epoch —
//! the epoch barrier is the consistency point, with no global pause.
//!
//! ## The `floor` flag
//!
//! Recovery normally requires `snapshot.epoch <= acked(WAL)` so that every
//! sealed-but-unacked epoch can be *re-served* from the snapshot forward.
//! Two snapshots are exempt and marked `floor = true`: the warm-up snapshot
//! (warm events are not in the WAL, so no earlier state is reconstructible)
//! and the drain snapshot when everything sealed was already delivered.

use crate::codec::{put_float_vec, put_floats, Cursor};
use crate::crc::crc32;
use crate::DurableError;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use tgnn_core::{Message, NodeMemory};
use tgnn_graph::{NeighborEntry, NeighborTable};

/// Format version of shard files and manifests.
pub const SNAPSHOT_VERSION: u32 = 1;

const MAGIC_MEM: &[u8; 4] = b"TGNM";
const MAGIC_NBR: &[u8; 4] = b"TGNN";
const MAGIC_MANIFEST: &[u8; 4] = b"TGNS";

/// Snapshot-wide metadata recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotMeta {
    /// The epoch barrier the state corresponds to (0 = post-warm-up,
    /// pre-stream).
    pub epoch: u64,
    /// The ack watermark at capture time (results delivered to the client).
    pub acked: u64,
    /// `true` for snapshots that are valid recovery floors even when
    /// `epoch > acked` of the recovered WAL (warm-up / clean drain).
    pub floor: bool,
    /// Number of shards (files) in the snapshot.
    pub num_shards: u32,
    /// Events absorbed into the state so far (warm-up + sealed), for
    /// reporting.
    pub events_total: u64,
    /// Largest event timestamp absorbed (the chronology floor on restart).
    pub max_timestamp: f64,
    /// End timestamp of the warm-up stream (`f64::NEG_INFINITY` when the
    /// server never warmed up).  Warm events are not in the WAL, so this is
    /// the only durable record of the global chronology floor every tenant
    /// starts from.
    pub warm_timestamp: f64,
}

struct ShardSums {
    mem_crc: u32,
    mem_len: u64,
    nbr_crc: u32,
    nbr_len: u64,
}

/// A discovered snapshot: its directory plus the decoded manifest.
pub struct SnapshotEntry {
    /// The `snap-{epoch:08}` directory.
    pub dir: PathBuf,
    /// Decoded manifest metadata.
    pub meta: SnapshotMeta,
    sums: Vec<ShardSums>,
}

impl std::fmt::Debug for SnapshotEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotEntry")
            .field("dir", &self.dir)
            .field("meta", &self.meta)
            .finish()
    }
}

/// A fully loaded, checksum-verified snapshot.
pub struct LoadedSnapshot {
    /// Manifest metadata.
    pub meta: SnapshotMeta,
    /// Per-shard node memory, index = shard.
    pub memory: Vec<NodeMemory>,
    /// Per-shard neighbor tables, index = shard.
    pub tables: Vec<NeighborTable>,
}

// ---------------------------------------------------------------------------
// Shard payload codecs
// ---------------------------------------------------------------------------

/// Encodes one shard's [`NodeMemory`] (rows, clocks, mailbox) into `buf`.
pub fn encode_memory_shard(mem: &NodeMemory, buf: &mut Vec<u8>) {
    let n = mem.num_nodes();
    let dim = mem.memory_dim();
    buf.extend_from_slice(&(n as u32).to_le_bytes());
    buf.extend_from_slice(&(dim as u32).to_le_bytes());
    for v in 0..n {
        put_floats(buf, mem.memory_of(v as u32));
    }
    for v in 0..n {
        buf.extend_from_slice(&mem.last_update(v as u32).to_le_bytes());
    }
    for v in 0..n {
        match mem.cached_message(v as u32) {
            None => buf.push(0),
            Some(m) => {
                buf.push(1);
                put_float_vec(buf, &m.self_memory);
                put_float_vec(buf, &m.other_memory);
                put_float_vec(buf, &m.edge_feature);
                buf.extend_from_slice(&m.event_time.to_le_bytes());
            }
        }
    }
}

/// Decodes a payload produced by [`encode_memory_shard`].
pub fn decode_memory_shard(payload: &[u8]) -> Result<NodeMemory, DurableError> {
    let mut c = Cursor::new(payload);
    let n = c.u32()? as usize;
    let dim = c.u32()? as usize;
    if n.saturating_mul(dim) > payload.len() / 4 + 1 {
        return Err(DurableError::corrupt("memory shard dimensions implausible"));
    }
    let mut mem = NodeMemory::new(n, dim);
    let rows: Vec<Vec<f32>> = (0..n).map(|_| c.floats(dim)).collect::<Result<_, _>>()?;
    for (v, row) in rows.iter().enumerate() {
        let t = c.f64()?;
        mem.set_memory(v as u32, row, t);
    }
    for v in 0..n {
        if c.u8()? == 1 {
            mem.store_message(
                v as u32,
                Message {
                    self_memory: c.float_vec()?,
                    other_memory: c.float_vec()?,
                    edge_feature: c.float_vec()?,
                    event_time: c.f64()?,
                },
            );
        }
    }
    c.done()?;
    Ok(mem)
}

/// Encodes one shard's [`NeighborTable`] (per-vertex FIFOs, oldest first).
pub fn encode_neighbor_shard(table: &NeighborTable, buf: &mut Vec<u8>) {
    let n = table.num_nodes();
    buf.extend_from_slice(&(n as u32).to_le_bytes());
    buf.extend_from_slice(&(table.capacity() as u32).to_le_bytes());
    let mut entries = Vec::new();
    for v in 0..n {
        entries.clear();
        table.neighbors_into(v as u32, &mut entries);
        buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in &entries {
            buf.extend_from_slice(&e.neighbor.to_le_bytes());
            buf.extend_from_slice(&e.edge_id.to_le_bytes());
            buf.extend_from_slice(&e.timestamp.to_le_bytes());
        }
    }
}

/// Decodes a payload produced by [`encode_neighbor_shard`].
pub fn decode_neighbor_shard(payload: &[u8]) -> Result<NeighborTable, DurableError> {
    let mut c = Cursor::new(payload);
    let n = c.u32()? as usize;
    let capacity = c.u32()? as usize;
    if capacity == 0 {
        return Err(DurableError::corrupt("neighbor shard capacity is zero"));
    }
    if n > payload.len() / 4 + 1 {
        return Err(DurableError::corrupt(
            "neighbor shard node count implausible",
        ));
    }
    let mut table = NeighborTable::new(n, capacity);
    for v in 0..n {
        let degree = c.u32()? as usize;
        if degree > capacity {
            return Err(DurableError::corrupt("neighbor degree exceeds capacity"));
        }
        for _ in 0..degree {
            table.push(
                v as u32,
                NeighborEntry {
                    neighbor: c.u32()?,
                    edge_id: c.u32()?,
                    timestamp: c.f64()?,
                },
            );
        }
    }
    c.done()?;
    Ok(table)
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

fn shard_header(magic: &[u8; 4], epoch: u64, shard: u32, payload: &[u8]) -> Vec<u8> {
    let mut h = Vec::with_capacity(32);
    h.extend_from_slice(magic);
    h.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    h.extend_from_slice(&epoch.to_le_bytes());
    h.extend_from_slice(&shard.to_le_bytes());
    h.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    h.extend_from_slice(&crc32(payload).to_le_bytes());
    h
}

fn write_file_synced(path: &Path, parts: &[&[u8]]) -> std::io::Result<u64> {
    let mut f = File::create(path)?;
    let mut total = 0u64;
    for p in parts {
        f.write_all(p)?;
        total += p.len() as u64;
    }
    f.sync_data()?;
    Ok(total)
}

fn read_shard_file(
    path: &Path,
    magic: &[u8; 4],
    epoch: u64,
    shard: u32,
    want_crc: u32,
    want_len: u64,
) -> Result<Vec<u8>, DurableError> {
    let data = std::fs::read(path).map_err(DurableError::Io)?;
    let mut c = Cursor::new(&data);
    if c.take(4)? != magic {
        return Err(DurableError::corrupt(format!(
            "{}: bad magic",
            path.display()
        )));
    }
    let version = c.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(DurableError::corrupt(format!(
            "{}: unsupported version {version}",
            path.display()
        )));
    }
    if c.u64()? != epoch || c.u32()? != shard {
        return Err(DurableError::corrupt(format!(
            "{}: epoch/shard header mismatch",
            path.display()
        )));
    }
    let len = c.u64()?;
    let crc = c.u32()?;
    if len != want_len || crc != want_crc {
        return Err(DurableError::corrupt(format!(
            "{}: header disagrees with manifest",
            path.display()
        )));
    }
    let payload = c.take(len as usize)?.to_vec();
    c.done()?;
    if crc32(&payload) != crc {
        return Err(DurableError::corrupt(format!(
            "{}: payload checksum mismatch",
            path.display()
        )));
    }
    Ok(payload)
}

/// Name of the snapshot directory for an epoch.
pub fn snapshot_dir_name(epoch: u64) -> String {
    format!("snap-{epoch:08}")
}

fn mem_name(shard: usize) -> String {
    format!("shard-{shard:04}.mem")
}

fn nbr_name(shard: usize) -> String {
    format!("shard-{shard:04}.nbr")
}

fn encode_manifest(meta: &SnapshotMeta, sums: &[ShardSums]) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&meta.epoch.to_le_bytes());
    p.extend_from_slice(&meta.num_shards.to_le_bytes());
    p.extend_from_slice(&meta.acked.to_le_bytes());
    p.push(meta.floor as u8);
    p.extend_from_slice(&meta.events_total.to_le_bytes());
    p.extend_from_slice(&meta.max_timestamp.to_le_bytes());
    p.extend_from_slice(&meta.warm_timestamp.to_le_bytes());
    for s in sums {
        p.extend_from_slice(&s.mem_crc.to_le_bytes());
        p.extend_from_slice(&s.mem_len.to_le_bytes());
        p.extend_from_slice(&s.nbr_crc.to_le_bytes());
        p.extend_from_slice(&s.nbr_len.to_le_bytes());
    }
    p
}

fn decode_manifest(data: &[u8]) -> Result<(SnapshotMeta, Vec<ShardSums>), DurableError> {
    let mut c = Cursor::new(data);
    if c.take(4)? != MAGIC_MANIFEST {
        return Err(DurableError::corrupt("manifest: bad magic"));
    }
    let version = c.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(DurableError::corrupt(format!(
            "manifest: unsupported version {version}"
        )));
    }
    let len = c.u32()? as usize;
    let crc = c.u32()?;
    let payload = c.take(len)?;
    c.done()?;
    if crc32(payload) != crc {
        return Err(DurableError::corrupt("manifest: checksum mismatch"));
    }
    let mut c = Cursor::new(payload);
    let epoch = c.u64()?;
    let num_shards = c.u32()?;
    let acked = c.u64()?;
    let floor = c.u8()? != 0;
    let events_total = c.u64()?;
    let max_timestamp = c.f64()?;
    let warm_timestamp = c.f64()?;
    let mut sums = Vec::with_capacity(num_shards as usize);
    for _ in 0..num_shards {
        sums.push(ShardSums {
            mem_crc: c.u32()?,
            mem_len: c.u64()?,
            nbr_crc: c.u32()?,
            nbr_len: c.u64()?,
        });
    }
    c.done()?;
    Ok((
        SnapshotMeta {
            epoch,
            acked,
            floor,
            num_shards,
            events_total,
            max_timestamp,
            warm_timestamp,
        },
        sums,
    ))
}

/// Writes a snapshot from pre-captured shard payloads (`mem[i]` / `nbr[i]`
/// produced by the encode functions under shard `i`'s lock).  Every shard
/// file is fsynced before the manifest — the commit point — is written and
/// fsynced.  Returns the directory and total bytes written.
///
/// A pre-existing directory for the same epoch (a crashed earlier attempt)
/// is removed first.
pub fn write_snapshot(
    base: &Path,
    meta: &SnapshotMeta,
    mem: &[Vec<u8>],
    nbr: &[Vec<u8>],
) -> std::io::Result<(PathBuf, u64)> {
    assert_eq!(mem.len(), meta.num_shards as usize);
    assert_eq!(nbr.len(), meta.num_shards as usize);
    let dir = base.join(snapshot_dir_name(meta.epoch));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    let mut bytes = 0u64;
    let mut sums = Vec::with_capacity(mem.len());
    for (i, (m, t)) in mem.iter().zip(nbr).enumerate() {
        let mh = shard_header(MAGIC_MEM, meta.epoch, i as u32, m);
        bytes += write_file_synced(&dir.join(mem_name(i)), &[&mh, m])?;
        let th = shard_header(MAGIC_NBR, meta.epoch, i as u32, t);
        bytes += write_file_synced(&dir.join(nbr_name(i)), &[&th, t])?;
        sums.push(ShardSums {
            mem_crc: crc32(m),
            mem_len: m.len() as u64,
            nbr_crc: crc32(t),
            nbr_len: t.len() as u64,
        });
    }
    let payload = encode_manifest(meta, &sums);
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(MAGIC_MANIFEST);
    header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    header.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes += write_file_synced(&dir.join("MANIFEST"), &[&header, &payload])?;
    // Persist the directory entries themselves (best-effort: directory
    // fsync is not supported everywhere).
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    if let Ok(d) = File::open(base) {
        let _ = d.sync_all();
    }
    Ok((dir, bytes))
}

/// Scans the durability root for snapshot directories with a valid manifest,
/// sorted by ascending epoch.  Directories without one (crashed mid-write)
/// are skipped, not errors.
pub fn list_snapshots(base: &Path) -> Result<Vec<SnapshotEntry>, DurableError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(base) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(DurableError::Io(e)),
    };
    for entry in entries {
        let entry = entry.map_err(DurableError::Io)?;
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with("snap-") {
            continue;
        }
        let dir = entry.path();
        let Ok(data) = std::fs::read(dir.join("MANIFEST")) else {
            continue; // no committed manifest — crashed attempt
        };
        let Ok((meta, sums)) = decode_manifest(&data) else {
            continue; // torn manifest — crashed attempt
        };
        out.push(SnapshotEntry { dir, meta, sums });
    }
    out.sort_by_key(|e| e.meta.epoch);
    Ok(out)
}

/// Loads and checksum-verifies every shard of a snapshot.
pub fn load_snapshot(entry: &SnapshotEntry) -> Result<LoadedSnapshot, DurableError> {
    let mut memory = Vec::with_capacity(entry.sums.len());
    let mut tables = Vec::with_capacity(entry.sums.len());
    for (i, sums) in entry.sums.iter().enumerate() {
        let m = read_shard_file(
            &entry.dir.join(mem_name(i)),
            MAGIC_MEM,
            entry.meta.epoch,
            i as u32,
            sums.mem_crc,
            sums.mem_len,
        )?;
        memory.push(decode_memory_shard(&m)?);
        let t = read_shard_file(
            &entry.dir.join(nbr_name(i)),
            MAGIC_NBR,
            entry.meta.epoch,
            i as u32,
            sums.nbr_crc,
            sums.nbr_len,
        )?;
        tables.push(decode_neighbor_shard(&t)?);
    }
    Ok(LoadedSnapshot {
        meta: entry.meta,
        memory,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_memory() -> NodeMemory {
        let mut mem = NodeMemory::new(3, 2);
        mem.set_memory(0, &[1.5, -2.25], 3.0);
        mem.set_memory(2, &[0.125, 7.0], 9.5);
        mem.store_message(
            1,
            Message {
                self_memory: vec![1.0, 2.0],
                other_memory: vec![3.0, 4.0],
                edge_feature: vec![0.5],
                event_time: 8.25,
            },
        );
        mem
    }

    fn sample_table() -> NeighborTable {
        let mut t = NeighborTable::new(3, 2);
        t.push(
            0,
            NeighborEntry {
                neighbor: 2,
                edge_id: 5,
                timestamp: 1.0,
            },
        );
        t.push(
            0,
            NeighborEntry {
                neighbor: 1,
                edge_id: 6,
                timestamp: 2.0,
            },
        );
        t.push(
            2,
            NeighborEntry {
                neighbor: 0,
                edge_id: 5,
                timestamp: 1.0,
            },
        );
        t
    }

    fn assert_memory_eq(a: &NodeMemory, b: &NodeMemory) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.memory_dim(), b.memory_dim());
        for v in 0..a.num_nodes() as u32 {
            assert_eq!(a.memory_of(v), b.memory_of(v), "row {v}");
            assert_eq!(a.last_update(v), b.last_update(v), "clock {v}");
            assert_eq!(a.cached_message(v), b.cached_message(v), "mailbox {v}");
        }
    }

    fn assert_table_eq(a: &NeighborTable, b: &NeighborTable) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.capacity(), b.capacity());
        for v in 0..a.num_nodes() as u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn memory_shard_roundtrip() {
        let mem = sample_memory();
        let mut buf = Vec::new();
        encode_memory_shard(&mem, &mut buf);
        assert_memory_eq(&decode_memory_shard(&buf).unwrap(), &mem);
        assert!(decode_memory_shard(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn neighbor_shard_roundtrip() {
        let t = sample_table();
        let mut buf = Vec::new();
        encode_neighbor_shard(&t, &mut buf);
        assert_table_eq(&decode_neighbor_shard(&buf).unwrap(), &t);
        assert!(decode_neighbor_shard(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn snapshot_write_list_load_roundtrip() {
        let base = std::env::temp_dir().join(format!("tgnn-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mem = sample_memory();
        let table = sample_table();
        let mut mbuf = Vec::new();
        encode_memory_shard(&mem, &mut mbuf);
        let mut tbuf = Vec::new();
        encode_neighbor_shard(&table, &mut tbuf);
        let meta = SnapshotMeta {
            epoch: 40,
            acked: 38,
            floor: false,
            num_shards: 1,
            events_total: 123,
            max_timestamp: 55.5,
            warm_timestamp: 12.0,
        };
        let (dir, bytes) = write_snapshot(&base, &meta, &[mbuf], &[tbuf]).unwrap();
        assert!(bytes > 0);
        assert!(dir.ends_with("snap-00000040"));

        let listed = list_snapshots(&base).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].meta, meta);
        let loaded = load_snapshot(&listed[0]).unwrap();
        assert_memory_eq(&loaded.memory[0], &mem);
        assert_table_eq(&loaded.tables[0], &table);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn corrupt_shard_fails_load_and_missing_manifest_is_skipped() {
        let base = std::env::temp_dir().join(format!("tgnn-snap-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut mbuf = Vec::new();
        encode_memory_shard(&sample_memory(), &mut mbuf);
        let mut tbuf = Vec::new();
        encode_neighbor_shard(&sample_table(), &mut tbuf);
        let meta = SnapshotMeta {
            epoch: 7,
            acked: 7,
            floor: true,
            num_shards: 1,
            events_total: 9,
            max_timestamp: 1.0,
            warm_timestamp: f64::NEG_INFINITY,
        };
        let (dir, _) = write_snapshot(&base, &meta, &[mbuf], &[tbuf]).unwrap();

        // Flip one payload byte in the memory shard: load must fail loudly.
        let mem_path = dir.join("shard-0000.mem");
        let mut data = std::fs::read(&mem_path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&mem_path, &data).unwrap();
        let listed = list_snapshots(&base).unwrap();
        assert!(load_snapshot(&listed[0]).is_err());

        // A directory without a manifest (crashed mid-write) is skipped.
        std::fs::remove_file(dir.join("MANIFEST")).unwrap();
        assert!(list_snapshots(&base).unwrap().is_empty());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
