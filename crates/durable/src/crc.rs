//! CRC-32 (IEEE 802.3 polynomial, reflected) — the frame checksum of the
//! WAL and the payload checksum of snapshot shard files.
//!
//! Hand-rolled because the workspace is dependency-free by policy.  The
//! slice-by-8 form processes 8 bytes per step (one table lookup per byte,
//! but only one loop iteration and no serial dependency between the 8
//! lookups), which matters on the hot append path: every admitted event is
//! CRC-framed, so the checksum runs at stream rate.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = crc of byte b followed by k zero bytes: extend each
    // entry one zero byte at a time.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`) — the
/// same value `cksum`-style tools call "crc32".
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
