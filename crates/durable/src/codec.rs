//! Shared little-endian byte codec for WAL payloads and snapshot shards.

use crate::DurableError;
use tgnn_graph::InteractionEvent;
use tgnn_tensor::Float;

/// A bounds-checked read cursor over an encoded payload.
pub(crate) struct Cursor<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        if n > self.data.len() - self.pos {
            return Err(DurableError::corrupt("payload truncated"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DurableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DurableError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, DurableError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn floats(&mut self, n: usize) -> Result<Vec<Float>, DurableError> {
        if n > self.data.len() / 4 + 1 {
            return Err(DurableError::corrupt("float vector length implausible"));
        }
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| Float::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub(crate) fn float_vec(&mut self) -> Result<Vec<Float>, DurableError> {
        let n = self.u32()? as usize;
        self.floats(n)
    }

    pub(crate) fn event(&mut self) -> Result<InteractionEvent, DurableError> {
        Ok(InteractionEvent {
            src: self.u32()?,
            dst: self.u32()?,
            edge_id: self.u32()?,
            timestamp: self.f64()?,
        })
    }

    pub(crate) fn done(&self) -> Result<(), DurableError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(DurableError::corrupt("trailing bytes in payload"))
        }
    }
}

pub(crate) fn put_floats(buf: &mut Vec<u8>, xs: &[Float]) {
    for x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn put_float_vec(buf: &mut Vec<u8>, xs: &[Float]) {
    buf.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    put_floats(buf, xs);
}
