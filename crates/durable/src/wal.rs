//! The write-ahead log: length-prefixed, CRC-framed records in rotating
//! segment files.
//!
//! ## Frame format
//!
//! Every record is one frame, all integers little-endian:
//!
//! ```text
//! [len: u32] [crc32(payload): u32] [payload: len bytes]
//! ```
//!
//! The payload starts with a one-byte tag followed by the record body (see
//! [`WalRecord`]).  A reader walks frames front to back and stops at the
//! first frame that does not validate — a short header, an implausible
//! length, a short payload, or a CRC mismatch.  In the **last** segment that
//! prefix-stop is the normal torn-tail case after a crash (the record was
//! being written when the process died) and the scan reports it as
//! [`TornTail`]; in any earlier segment it is corruption and the scan fails,
//! because a healthy log only ever tears at its very end.
//!
//! ## Segments
//!
//! Records append to `wal-{seq:08}.seg`; when the current segment would
//! exceed the configured byte budget the writer flushes and rotates to
//! `seq + 1`.  Segments are never pruned automatically: the ingress tail of
//! a tenant can contain arbitrarily old admitted-but-unsealed events, and
//! recovery reconstructs those tails by replaying the full admit/evict/seal
//! history (see `recovery`).
//!
//! ## Durability model
//!
//! The writer buffers frames in user space; `flush` moves them to the OS
//! (`write`), and `sync` additionally `fsync`s the file.  The configured
//! [`FsyncPolicy`] decides what each append does; a crash loses exactly the
//! user-space buffered suffix (that is also how the crash-injection tests
//! simulate process death in-process: a [`WalFaultHook`] freezes the writer
//! so buffered bytes are never flushed, then panics the hosting worker).

use crate::crc::crc32;
use crate::{DurableError, FsyncPolicy};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tgnn_graph::InteractionEvent;

/// Largest frame payload the reader accepts; a length above this is treated
/// as an invalid frame (torn tail / corruption), not an allocation request.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Test-only fault hook: called with the epoch before a `Seal` record is
/// appended; returning `true` freezes the WAL (buffered, unflushed records
/// are lost — simulating process death) and makes the caller panic so the
/// pipeline unwinds through the same poison machinery a real worker death
/// uses.
pub type WalFaultHook = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// What admission did with a submitted event — the disposition recorded in
/// its [`WalRecord::Admit`] entry so drops-at-ingress survive a restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitDisposition {
    /// Entered the tenant's ingress queue (will be served unless evicted).
    Admitted,
    /// Rejected at the bound by `DropNewest`.
    DroppedNewest,
    /// Rejected by the tenant's token-bucket rate limit (drop policies only;
    /// blocking policies wait for tokens instead).
    DroppedThrottled,
    /// Answered from the embedding cache at the bound (`ServeStale` policy).
    /// Drop-like for recovery: the event never entered an ingress queue, so
    /// it contributes no tail entry — but it *was* a durable submit outcome,
    /// so it counts toward the tenant's resume index.
    ServedStale,
}

impl AdmitDisposition {
    fn to_byte(self) -> u8 {
        match self {
            AdmitDisposition::Admitted => 0,
            AdmitDisposition::DroppedNewest => 1,
            AdmitDisposition::DroppedThrottled => 2,
            AdmitDisposition::ServedStale => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, DurableError> {
        match b {
            0 => Ok(AdmitDisposition::Admitted),
            1 => Ok(AdmitDisposition::DroppedNewest),
            2 => Ok(AdmitDisposition::DroppedThrottled),
            3 => Ok(AdmitDisposition::ServedStale),
            other => Err(DurableError::corrupt(format!(
                "unknown admit disposition byte {other}"
            ))),
        }
    }
}

/// One durable event of the serving session.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A `submit_for` outcome, written under the admission lock *before* the
    /// event becomes visible to the scheduler, so an event can never be
    /// sealed (or served) without a durable admit preceding it in the log.
    Admit {
        /// Tenant-table index of the submitting tenant.
        tenant: u32,
        /// The submitted event.
        event: InteractionEvent,
        /// Whether the event entered the queue or was dropped at ingress.
        disposition: AdmitDisposition,
    },
    /// A `DropOldest` eviction: `event` (the queue head at the time) was
    /// discarded to admit a newer one.  Carries the full event identity
    /// because the evicted head is not necessarily the oldest *admitted*
    /// event — earlier admits may already sit in the scheduler/batcher.
    Evict {
        /// Tenant-table index.
        tenant: u32,
        /// The evicted event.
        event: InteractionEvent,
    },
    /// A sealed micro-batch: the authoritative content and order of pipeline
    /// epoch `epoch`.  Written and flushed *before* the batch is handed to
    /// the sampler, so every served batch has a durable seal.  Events carry
    /// their tenant because the weighted-fair scheduler interleaves tenants
    /// nondeterministically — admit order alone cannot reproduce a batch.
    Seal {
        /// 1-based pipeline epoch of the batch.
        epoch: u64,
        /// `(tenant, event)` in batch order.
        events: Vec<(u32, InteractionEvent)>,
    },
    /// Epoch `epoch`'s results were delivered to the client (`poll`).
    /// Recovery re-serves every sealed epoch above the acked watermark.
    Ack {
        /// The delivered epoch.
        epoch: u64,
    },
    /// A snapshot at `epoch` was written and its manifest committed
    /// (informational; recovery trusts snapshot manifests, not marks).
    SnapshotMark {
        /// The snapshot's epoch barrier.
        epoch: u64,
    },
}

const TAG_ADMIT: u8 = 1;
const TAG_EVICT: u8 = 2;
const TAG_SEAL: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_SNAPSHOT_MARK: u8 = 5;

fn put_event(buf: &mut Vec<u8>, e: &InteractionEvent) {
    buf.extend_from_slice(&e.src.to_le_bytes());
    buf.extend_from_slice(&e.dst.to_le_bytes());
    buf.extend_from_slice(&e.edge_id.to_le_bytes());
    buf.extend_from_slice(&e.timestamp.to_le_bytes());
}

use crate::codec::Cursor;

impl WalRecord {
    /// Encodes the record's payload (tag + body, without the frame header).
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Admit {
                tenant,
                event,
                disposition,
            } => {
                buf.push(TAG_ADMIT);
                buf.extend_from_slice(&tenant.to_le_bytes());
                put_event(buf, event);
                buf.push(disposition.to_byte());
            }
            WalRecord::Evict { tenant, event } => {
                buf.push(TAG_EVICT);
                buf.extend_from_slice(&tenant.to_le_bytes());
                put_event(buf, event);
            }
            WalRecord::Seal { epoch, events } => {
                buf.push(TAG_SEAL);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for (tenant, e) in events {
                    buf.extend_from_slice(&tenant.to_le_bytes());
                    put_event(buf, e);
                }
            }
            WalRecord::Ack { epoch } => {
                buf.push(TAG_ACK);
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            WalRecord::SnapshotMark { epoch } => {
                buf.push(TAG_SNAPSHOT_MARK);
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
        }
    }

    /// Decodes one payload produced by [`Self::encode_payload`].
    pub fn decode_payload(payload: &[u8]) -> Result<Self, DurableError> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            TAG_ADMIT => WalRecord::Admit {
                tenant: c.u32()?,
                event: c.event()?,
                disposition: AdmitDisposition::from_byte(c.u8()?)?,
            },
            TAG_EVICT => WalRecord::Evict {
                tenant: c.u32()?,
                event: c.event()?,
            },
            TAG_SEAL => {
                let epoch = c.u64()?;
                let n = c.u32()? as usize;
                if n > MAX_PAYLOAD as usize / 24 {
                    return Err(DurableError::corrupt("seal event count implausible"));
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    let tenant = c.u32()?;
                    events.push((tenant, c.event()?));
                }
                WalRecord::Seal { epoch, events }
            }
            TAG_ACK => WalRecord::Ack { epoch: c.u64()? },
            TAG_SNAPSHOT_MARK => WalRecord::SnapshotMark { epoch: c.u64()? },
            tag => return Err(DurableError::corrupt(format!("unknown record tag {tag}"))),
        };
        c.done()?;
        Ok(rec)
    }
}

/// Running totals of the WAL writer, readable without the writer lock.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended.
    pub records: AtomicU64,
    /// Frame bytes appended (headers + payloads).
    pub bytes: AtomicU64,
    /// `fsync` calls issued.
    pub fsyncs: AtomicU64,
    /// Segment rotations performed.
    pub rotations: AtomicU64,
}

struct WalWriter {
    dir: PathBuf,
    segment_bytes: u64,
    seq: u64,
    file: Arc<File>,
    /// Bytes already `write`n into the current segment.
    file_bytes: u64,
    /// User-space buffered frames not yet handed to the OS.
    buf: Vec<u8>,
    /// Set by the crash-injection hook: every subsequent append/flush is a
    /// silent no-op, so buffered records are lost exactly as they would be
    /// if the process had died.
    frozen: bool,
    /// Segments retired by rotation whose tails were `write`n but not yet
    /// `fsync`ed.  The next sync point drains this list along with the
    /// current segment — without it, a rotation would strand the old
    /// segment's tail in the page cache forever while every later fsync
    /// targets only the new file, and the synced watermark could mark seals
    /// durable that a power loss would erase.
    pending_sync: Vec<Arc<File>>,
}

/// Segment file name for a sequence number.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

impl WalWriter {
    fn open_segment(dir: &Path, seq: u64) -> std::io::Result<Arc<File>> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(segment_name(seq)))
            .map(Arc::new)
    }

    /// Pushes buffered frames to the OS and hands back the segment handle so
    /// the caller can `fsync` it **after releasing the writer lock** — the
    /// disk wait must never stall concurrent appenders (the admission path
    /// logs admits under its own lock while the batcher syncs seals; holding
    /// the writer lock across the fsync would serialize ingress with the
    /// disk and cost half the pipeline's throughput).  Syncing a handle
    /// outside the lock is sound: the bytes this flush made visible to the
    /// OS are written before the lock is released, and `sync_data` persists
    /// at least those — concurrent writes landing in the same segment are
    /// synced early, which is harmless.
    fn flush_os(&mut self) -> std::io::Result<Option<Arc<File>>> {
        if self.frozen {
            return Ok(None);
        }
        if !self.buf.is_empty() {
            (&*self.file).write_all(&self.buf)?;
            self.file_bytes += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(Some(Arc::clone(&self.file)))
    }

    /// Flushes and collects *every* handle the caller must fsync to make all
    /// flushed frames durable: segments retired since the last sync point
    /// (their tails were written at rotation but not yet synced), then the
    /// current segment.  Returns an empty list when frozen.
    fn flush_for_sync(&mut self) -> std::io::Result<Vec<Arc<File>>> {
        match self.flush_os()? {
            Some(current) => {
                let mut handles = std::mem::take(&mut self.pending_sync);
                handles.push(current);
                Ok(handles)
            }
            None => Ok(Vec::new()),
        }
    }
}

/// A shared handle to the write-ahead log: thread-safe appends with the
/// configured [`FsyncPolicy`] applied at the caller's chosen flush points.
pub struct Wal {
    inner: Mutex<WalWriter>,
    policy: FsyncPolicy,
    stats: WalStats,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Wal {
    /// Opens the log for writing, continuing after segment `last_seq`
    /// (`0` for a fresh log → the first segment is `wal-00000001.seg`).
    /// A recovering server never appends to an existing segment — the old
    /// tail may have been repaired — it always starts `last_seq + 1`.
    pub fn open(
        dir: &Path,
        last_seq: u64,
        segment_bytes: u64,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let seq = last_seq + 1;
        let file = WalWriter::open_segment(dir, seq)?;
        Ok(Self {
            inner: Mutex::new(WalWriter {
                dir: dir.to_path_buf(),
                segment_bytes: segment_bytes.max(4096),
                seq,
                file,
                file_bytes: 0,
                buf: Vec::with_capacity(64 << 10),
                frozen: false,
                pending_sync: Vec::new(),
            }),
            policy,
            stats: WalStats::default(),
        })
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Running writer statistics.
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// Appends one record (buffered).  Under [`FsyncPolicy::Always`] the
    /// record is flushed and fsynced before returning; under the other
    /// policies it becomes durable at the next [`Self::flush`] point.
    pub fn append(&self, rec: &WalRecord) -> std::io::Result<()> {
        let handles = {
            let mut w = self.inner.lock().unwrap();
            if w.frozen {
                return Ok(());
            }
            // Encode straight into the writer buffer — a placeholder header
            // patched after the payload lands — so the hot append path (one
            // per submitted event) allocates nothing.
            let start = w.buf.len();
            w.buf.extend_from_slice(&[0u8; 8]);
            rec.encode_payload(&mut w.buf);
            let len = (w.buf.len() - start - 8) as u32;
            let crc = crc32(&w.buf[start + 8..]);
            w.buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
            w.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
            let frame_bytes = (w.buf.len() - start) as u64;
            self.stats.records.fetch_add(1, Ordering::Relaxed);
            self.stats.bytes.fetch_add(frame_bytes, Ordering::Relaxed);
            // Rotate once the segment (including what is buffered for it)
            // would exceed its budget.  The whole buffer still lands in the
            // *current* segment — frames never split across files.  The
            // retiring segment's handle joins the pending-sync list: its
            // just-written tail is only in the page cache, and the next sync
            // point must fsync it too, or the synced watermark would cover
            // bytes a power loss could erase.
            if w.file_bytes + w.buf.len() as u64 >= w.segment_bytes {
                if let Some(retired) = w.flush_os()? {
                    w.pending_sync.push(retired);
                }
                w.seq += 1;
                w.file = WalWriter::open_segment(&w.dir, w.seq)?;
                w.file_bytes = 0;
                self.stats.rotations.fetch_add(1, Ordering::Relaxed);
            }
            if self.policy == FsyncPolicy::Always {
                w.flush_for_sync()?
            } else {
                Vec::new()
            }
        };
        self.sync_handles(handles)
    }

    /// Flushes buffered frames to the OS; with `sync` also fsyncs.  The
    /// caller picks the flush points (batch seal, snapshot, drain) and maps
    /// the configured policy to the `sync` argument.  The fsync itself runs
    /// outside the writer lock (see `WalWriter::flush_os`), so appenders
    /// on other threads proceed while this call waits on the disk.
    pub fn flush(&self, sync: bool) -> std::io::Result<()> {
        if sync {
            let handles = self.inner.lock().unwrap().flush_for_sync()?;
            self.sync_handles(handles)?;
        } else {
            self.inner.lock().unwrap().flush_os()?;
        }
        Ok(())
    }

    /// `fsync`s segment handles collected by `flush_for_sync` (outside the
    /// lock): rotation-retired segments first, then the current one.
    fn sync_handles(&self, handles: Vec<Arc<File>>) -> std::io::Result<()> {
        for f in handles {
            f.sync_data()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Flush at a batch-seal boundary, applying the configured policy:
    /// `Always`/`OnSeal` flush + fsync, `Never` flushes without fsync (the
    /// OS decides when bytes hit the disk; a *process* crash still loses
    /// nothing that was flushed).
    pub fn flush_seal(&self) -> std::io::Result<()> {
        self.flush(self.policy != FsyncPolicy::Never)
    }

    /// Test-only: freezes the writer — every subsequent append/flush becomes
    /// a no-op, so user-space buffered records are lost exactly as in a
    /// process crash.  Irreversible.
    pub fn freeze(&self) {
        self.inner.lock().unwrap().frozen = true;
    }
}

/// A torn (partially written) frame at the end of the final segment.
#[derive(Clone, Debug)]
pub struct TornTail {
    /// The segment holding the torn frame.
    pub path: PathBuf,
    /// Length of the valid frame prefix; bytes past this are garbage.
    pub valid_len: u64,
    /// Bytes past the valid prefix.
    pub lost_bytes: u64,
}

/// Everything a full scan of the log recovered.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every valid record, in append order across all segments.
    pub records: Vec<WalRecord>,
    /// Number of segment files read.
    pub segments: usize,
    /// Highest segment sequence number present (0 when the log is empty);
    /// a recovering writer continues at `last_seq + 1`.
    pub last_seq: u64,
    /// Total valid frame bytes.
    pub valid_bytes: u64,
    /// The torn tail of the final segment, if any.
    pub torn: Option<TornTail>,
}

/// Reads every `wal-*.seg` under `dir` in sequence order and decodes the
/// records.  An invalid frame in the final segment is reported as a torn
/// tail (the crash case); an invalid frame in any earlier segment fails the
/// scan — a healthy log only tears at its end.
pub fn read_wal(dir: &Path) -> Result<WalScan, DurableError> {
    let mut segs: Vec<(u64, PathBuf)> = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry.map_err(DurableError::Io)?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(seq) = name
                    .strip_prefix("wal-")
                    .and_then(|s| s.strip_suffix(".seg"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    segs.push((seq, entry.path()));
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(DurableError::Io(e)),
    }
    segs.sort();
    let mut scan = WalScan {
        segments: segs.len(),
        last_seq: segs.last().map(|(s, _)| *s).unwrap_or(0),
        ..WalScan::default()
    };
    let last_idx = segs.len().wrapping_sub(1);
    for (i, (_, path)) in segs.iter().enumerate() {
        let data = std::fs::read(path).map_err(DurableError::Io)?;
        let mut pos = 0usize;
        loop {
            if pos == data.len() {
                break;
            }
            let valid = (|| -> Option<(WalRecord, usize)> {
                let header = data.get(pos..pos + 8)?;
                let len = u32::from_le_bytes(header[..4].try_into().unwrap());
                let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
                if len == 0 || len > MAX_PAYLOAD {
                    return None;
                }
                let payload = data.get(pos + 8..pos + 8 + len as usize)?;
                if crc32(payload) != crc {
                    return None;
                }
                let rec = WalRecord::decode_payload(payload).ok()?;
                Some((rec, pos + 8 + len as usize))
            })();
            match valid {
                Some((rec, next)) => {
                    scan.records.push(rec);
                    scan.valid_bytes += (next - pos) as u64;
                    pos = next;
                }
                None if i == last_idx => {
                    scan.torn = Some(TornTail {
                        path: path.clone(),
                        valid_len: pos as u64,
                        lost_bytes: (data.len() - pos) as u64,
                    });
                    break;
                }
                None => {
                    return Err(DurableError::corrupt(format!(
                        "invalid frame at byte {pos} of non-final segment {}",
                        path.display()
                    )))
                }
            }
        }
    }
    Ok(scan)
}

/// Truncates a torn tail off its segment, restoring the "frames only" file
/// invariant so future scans (which only tolerate tears in the final
/// segment) stay sound after the recovered server rotates onward.
pub fn repair_torn_tail(torn: &TornTail) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(&torn.path)?;
    f.set_len(torn.valid_len)?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> InteractionEvent {
        InteractionEvent::new(1, 2, 3, t)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Admit {
                tenant: 0,
                event: ev(1.0),
                disposition: AdmitDisposition::Admitted,
            },
            WalRecord::Admit {
                tenant: 1,
                event: ev(1.5),
                disposition: AdmitDisposition::DroppedNewest,
            },
            WalRecord::Admit {
                tenant: 0,
                event: ev(1.75),
                disposition: AdmitDisposition::ServedStale,
            },
            WalRecord::Evict {
                tenant: 1,
                event: ev(0.5),
            },
            WalRecord::Seal {
                epoch: 7,
                events: vec![(0, ev(1.0)), (1, ev(1.25))],
            },
            WalRecord::Ack { epoch: 7 },
            WalRecord::SnapshotMark { epoch: 7 },
        ]
    }

    #[test]
    fn payload_roundtrip() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode_payload(&mut buf);
            assert_eq!(WalRecord::decode_payload(&buf).unwrap(), rec);
        }
        assert!(WalRecord::decode_payload(&[99]).is_err());
        assert!(WalRecord::decode_payload(&[]).is_err());
    }

    #[test]
    fn write_read_roundtrip_with_rotation() {
        let dir = std::env::temp_dir().join(format!("tgnn-wal-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Wal::open(&dir, 0, 4096, FsyncPolicy::OnSeal).unwrap();
        let mut want = Vec::new();
        for i in 0..400u64 {
            let rec = WalRecord::Seal {
                epoch: i,
                events: vec![(0, ev(i as f64)); 4],
            };
            wal.append(&rec).unwrap();
            want.push(rec);
        }
        wal.flush_seal().unwrap();
        assert!(
            wal.stats().rotations.load(Ordering::Relaxed) > 1,
            "4 KiB segments must rotate"
        );
        let scan = read_wal(&dir).unwrap();
        assert!(scan.torn.is_none());
        assert!(scan.segments > 2);
        assert_eq!(scan.records, want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_repairable() {
        let dir = std::env::temp_dir().join(format!("tgnn-wal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Wal::open(&dir, 0, 1 << 20, FsyncPolicy::Never).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.flush(false).unwrap();
        drop(wal);
        // Append garbage: a torn half-written frame.
        let seg = dir.join(segment_name(1));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.records, sample_records());
        let torn = scan.torn.clone().expect("torn tail detected");
        assert_eq!(torn.lost_bytes, 3);
        repair_torn_tail(&torn).unwrap();
        let rescanned = read_wal(&dir).unwrap();
        assert!(rescanned.torn.is_none());
        assert_eq!(rescanned.records, sample_records());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_retired_segments_are_fsynced_at_the_next_sync_point() {
        // Regression: rotation used to discard the retiring segment's handle
        // after write(), so its tail was never fsynced — later syncs hit only
        // the new segment and the group-commit watermark could mark seals
        // durable whose bytes sat in a retired segment's page cache.  Every
        // sync point must drain the retired handles too: after R rotations
        // with no intervening sync, one flush(true) issues exactly R+1
        // fsyncs (each retired segment, then the current one).
        let dir = std::env::temp_dir().join(format!("tgnn-wal-rotsync-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Wal::open(&dir, 0, 4096, FsyncPolicy::OnSeal).unwrap();
        for i in 0..400u64 {
            wal.append(&WalRecord::Seal {
                epoch: i,
                events: vec![(0, ev(i as f64)); 4],
            })
            .unwrap();
        }
        let rotations = wal.stats().rotations.load(Ordering::Relaxed);
        assert!(rotations > 1, "4 KiB segments must rotate");
        assert_eq!(
            wal.stats().fsyncs.load(Ordering::Relaxed),
            0,
            "OnSeal appends must not fsync on their own"
        );
        wal.flush(true).unwrap();
        assert_eq!(
            wal.stats().fsyncs.load(Ordering::Relaxed),
            rotations + 1,
            "one sync point must fsync every retired segment plus the current one"
        );
        // The pending list is drained, not re-synced: another sync touches
        // only the current segment.
        wal.flush(true).unwrap();
        assert_eq!(wal.stats().fsyncs.load(Ordering::Relaxed), rotations + 2);

        // Under Always, the rotating append itself syncs both files.
        let dir2 = std::env::temp_dir().join(format!("tgnn-wal-rotsync-a-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir2);
        let wal2 = Wal::open(&dir2, 0, 4096, FsyncPolicy::Always).unwrap();
        let mut appends = 0u64;
        while wal2.stats().rotations.load(Ordering::Relaxed) == 0 {
            wal2.append(&WalRecord::Seal {
                epoch: appends,
                events: vec![(0, ev(appends as f64)); 4],
            })
            .unwrap();
            appends += 1;
        }
        assert_eq!(
            wal2.stats().fsyncs.load(Ordering::Relaxed),
            appends + 1,
            "the rotating append must fsync the retired segment and the new one"
        );
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn frozen_writer_loses_buffered_records() {
        let dir = std::env::temp_dir().join(format!("tgnn-wal-freeze-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Wal::open(&dir, 0, 1 << 20, FsyncPolicy::OnSeal).unwrap();
        wal.append(&WalRecord::Ack { epoch: 1 }).unwrap();
        wal.flush(false).unwrap();
        wal.append(&WalRecord::Ack { epoch: 2 }).unwrap();
        wal.freeze();
        wal.flush(true).unwrap(); // no-op: the buffered Ack{2} is gone
        wal.append(&WalRecord::Ack { epoch: 3 }).unwrap();
        drop(wal);
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.records, vec![WalRecord::Ack { epoch: 1 }]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_scans_clean() {
        let dir = std::env::temp_dir().join(format!("tgnn-wal-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scan = read_wal(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.last_seq, 0);
    }
}
